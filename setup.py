"""Packaging for the FS-NewTOP reproduction.

Plain ``setup.py`` metadata (no build-system requirements beyond
setuptools) so that ``pip install -e .`` works in offline environments
lacking the ``wheel`` package -- pip then falls back to
``setup.py develop``.
"""

import pathlib

from setuptools import find_packages, setup

HERE = pathlib.Path(__file__).parent

version = {}
exec((HERE / "src" / "repro" / "_version.py").read_text(), version)

readme = HERE / "README.md"
long_description = readme.read_text() if readme.exists() else ""

setup(
    name="repro-fsnewtop",
    version=version["__version__"],
    description=(
        "Reproduction of 'From Crash Tolerance to Authenticated Byzantine "
        "Tolerance' (DSN 2003): FS-NewTOP vs NewTOP, with a declarative "
        "scenario registry and parallel campaign runner"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    extras_require={
        # The stdlib HTTP/SSE server needs none of these; the extra
        # only feeds the optional FastAPI adapter (repro.service.app)
        # and its test client.  See docs/SERVICE.md.
        "service": [
            "fastapi",
            "uvicorn",
            "httpx",
        ],
        # The C-backed ed25519 signature provider (repro.crypto.ed25519);
        # everything degrades gracefully to the pure-python schemes when
        # this is absent.  See docs/CRYPTO.md.
        "fastcrypto": [
            "cryptography",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: System :: Distributed Computing",
    ],
)
