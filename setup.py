"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments lacking
the ``wheel`` package (pip then falls back to ``setup.py develop``).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
