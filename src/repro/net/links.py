"""The synchronous LAN link between the two nodes of an FS pair.

Assumption A2: *"the nodes are connected by a reliable, synchronous
communication link (LAN) that delivers messages within a known bound δ"*.
This class makes δ a checked invariant: the configured delay model must
state a bound, the bound must not exceed δ, and any attempt to deliver a
message later than δ (via fault injection) must be explicit.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.net.delay import ConstantDelay, DelayModel
from repro.net.errors import SynchronyViolation
from repro.net.message import Envelope, wire_size
from repro.net.network import Endpoint, NetworkStats
if TYPE_CHECKING:
    from repro.transport.base import Clock


class SynchronousLink:
    """Reliable, FIFO, bounded-delay link between exactly two endpoints.

    Parameters
    ----------
    delta:
        The delivery bound δ in milliseconds.
    delay:
        Delay model for individual messages; defaults to constant δ/2.
        Its :meth:`~repro.net.delay.DelayModel.bound` must be ≤ δ.
    """

    def __init__(
        self,
        sim: Clock,
        name: str,
        delta: float,
        delay: DelayModel | None = None,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be > 0, got {delta}")
        self.sim = sim
        self.name = name
        self.delta = delta
        self.delay = delay if delay is not None else ConstantDelay(delta / 2)
        bound = self.delay.bound()
        if bound is None:
            raise SynchronyViolation(
                f"link {name!r}: delay model has no bound; a synchronous link "
                f"requires one (assumption A2)"
            )
        if bound > delta:
            raise SynchronyViolation(
                f"link {name!r}: delay bound {bound} exceeds delta {delta}"
            )
        self.stats = NetworkStats()
        self._endpoints: dict[str, Endpoint] = {}
        self._last_delivery: dict[str, float] = {}
        self._next_msg_id = 0
        self._rng = sim.rng(f"link/{name}")
        # Fault injection: extra delay added to deliveries from a given
        # side, deliberately breaking A2 for the timeout ablation.
        self._injected_extra: dict[str, float] = {}
        self._severed = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, address: str, endpoint: Endpoint) -> None:
        if len(self._endpoints) >= 2 and address not in self._endpoints:
            raise ValueError(f"link {self.name!r} already joins two endpoints")
        self._endpoints[address] = endpoint

    def peer_of(self, address: str) -> str:
        others = [a for a in self._endpoints if a != address]
        if len(others) != 1:
            raise ValueError(f"link {self.name!r} is not fully wired")
        return others[0]

    # ------------------------------------------------------------------
    # fault injection (explicit A2 violations, for ablations only)
    # ------------------------------------------------------------------
    def inject_extra_delay(self, src: str, extra_ms: float) -> None:
        """All subsequent messages *from* ``src`` take ``extra_ms``
        longer, potentially past δ.  Models LAN congestion/failure."""
        self._injected_extra[src] = extra_ms

    def clear_injected_delay(self, src: str) -> None:
        self._injected_extra.pop(src, None)

    def sever(self) -> None:
        """Cut the link entirely (both directions)."""
        self._severed = True

    def restore(self) -> None:
        self._severed = False

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def send(self, src: str, payload: Any, size: int | None = None) -> None:
        """Send from ``src`` to the other endpoint."""
        dst = self.peer_of(src)
        msg_size = size if size is not None else wire_size(payload)
        envelope = Envelope(src, dst, payload, msg_size, self.sim.now, self._next_msg_id)
        self._next_msg_id += 1
        self.stats.messages_sent += 1
        self.stats.bytes_sent += msg_size
        if self._severed:
            self.stats.messages_dropped += 1
            return
        delay = self.delay.sample(self._rng)
        extra = self._injected_extra.get(src, 0.0)
        if delay > self.delta and extra == 0.0:
            # Defensive: a buggy delay model must not silently break A2.
            raise SynchronyViolation(
                f"link {self.name!r} sampled delay {delay} > delta {self.delta}"
            )
        deliver_at = self.sim.now + delay + extra
        last = self._last_delivery.get(dst, 0.0)
        if last > deliver_at:
            deliver_at = last
        self._last_delivery[dst] = deliver_at
        self.sim.schedule_at(deliver_at, self._deliver, envelope)

    def _deliver(self, envelope: Envelope) -> None:
        endpoint = self._endpoints.get(envelope.dst)
        if endpoint is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        endpoint.deliver(envelope)
