"""Message envelopes and wire-size accounting."""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.crypto.canonical import (
    CanonicalEncodingError,
    canonical_encode,
    is_identity_cacheable,
)
from repro.perf import wire_size_cache

#: Fixed per-message header overhead charged on top of the payload, in
#: bytes.  Roughly an IIOP + TCP/IP header.
HEADER_BYTES = 64


def _wire_size_uncached(payload: Any) -> int:
    explicit = getattr(payload, "wire_size", None)
    if explicit is not None:
        return int(explicit) + HEADER_BYTES
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload) + HEADER_BYTES
    try:
        return len(canonical_encode(payload)) + HEADER_BYTES
    except CanonicalEncodingError:
        return HEADER_BYTES


def wire_size(payload: Any) -> int:
    """Estimate the on-wire size of a payload, in bytes.

    Priority order: an explicit ``wire_size`` attribute (protocol message
    classes precompute theirs, which also lets them account for payload
    bodies carried by reference), raw byte length, then the canonical
    encoding length.  Objects that cannot be sized are charged the header
    only.

    Immutable messages (frozen dataclasses without lazy memo fields) are
    sized once and memoised by identity: the multicast fan-out and the
    nested ``wire_size`` property chains re-size the same object once per
    destination otherwise.
    """
    if is_identity_cacheable(payload):
        cached = wire_size_cache.get(payload)
        if cached is None:
            cached = _wire_size_uncached(payload)
            wire_size_cache.put(payload, cached)
        return cached
    return _wire_size_uncached(payload)


@dataclasses.dataclass(frozen=True, slots=True)
class Envelope:
    """What an endpoint receives: payload plus routing metadata."""

    src: str
    dst: str
    payload: Any
    size: int
    sent_at: float
    msg_id: int

    def __repr__(self) -> str:
        return (
            f"<Envelope #{self.msg_id} {self.src}->{self.dst} "
            f"{self.size}B sent={self.sent_at:.3f}>"
        )
