"""Network substrate.

Two kinds of communication fabric appear in the paper:

* a **reliable asynchronous network** between group members -- no bound
  on message delay (the Internet model of section 1), modelled by
  :class:`Network` with an arbitrary :class:`DelayModel`;
* a **reliable synchronous LAN** joining the two nodes of each FS pair --
  delivery within a known bound δ (assumption A2), modelled by
  :class:`SynchronousLink`.

Both are deterministic given the simulator seed; partitions, drops and
delay spikes are first-class fault hooks rather than afterthoughts,
because the evaluation of suspicion-based membership (NewTOP) versus
fail-signal membership (FS-NewTOP) hinges on them.
"""

from repro.net.delay import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    SpikeDelay,
    UniformDelay,
)
from repro.net.errors import AddressUnknown, NetworkError, SynchronyViolation
from repro.net.links import SynchronousLink
from repro.net.message import Envelope, wire_size
from repro.net.network import Network, NetworkStats

__all__ = [
    "AddressUnknown",
    "ConstantDelay",
    "DelayModel",
    "Envelope",
    "ExponentialDelay",
    "Network",
    "NetworkError",
    "NetworkStats",
    "SpikeDelay",
    "SynchronousLink",
    "SynchronyViolation",
    "UniformDelay",
    "wire_size",
]
