"""The reliable asynchronous network connecting group members."""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Protocol, TYPE_CHECKING

from repro.net.delay import DelayModel, UniformDelay
from repro.net.errors import AddressUnknown
from repro.net.message import Envelope, wire_size
if TYPE_CHECKING:
    from repro.transport.base import Clock


class Endpoint(Protocol):
    """Anything that can receive envelopes (e.g. :class:`repro.sim.Process`)."""

    def deliver(self, message: Any) -> None: ...


@dataclasses.dataclass
class NetworkStats:
    """Aggregate traffic counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0


class Network:
    """Point-to-point message fabric with per-pair delay, FIFO channels,
    partitions, and drop/fault hooks.

    Reliability is the default (the paper assumes a *reliable*
    asynchronous network); loss happens only through explicit partitions,
    a configured drop rate, or an installed fault filter.

    FIFO: with ``fifo=True`` (default) each ordered pair behaves like a
    TCP connection -- deliveries never overtake each other.  The ORB the
    paper runs on (IIOP over TCP) gives exactly this.
    """

    def __init__(
        self,
        sim: Clock,
        default_delay: DelayModel | None = None,
        fifo: bool = True,
        name: str = "net",
    ) -> None:
        self.sim = sim
        self.name = name
        self.fifo = fifo
        self.default_delay = default_delay if default_delay is not None else UniformDelay(0.2, 1.0)
        self.stats = NetworkStats()
        self._endpoints: dict[str, Endpoint] = {}
        self._pair_delay: dict[tuple[str, str], DelayModel] = {}
        self._last_delivery: dict[tuple[str, str], float] = {}
        self._blocked_pairs: set[tuple[str, str]] = set()
        self._drop_rate = 0.0
        self._fault_filter: Callable[[Envelope], bool] | None = None
        self._next_msg_id = 0
        self._rng = sim.rng(f"net/{name}")

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def register(self, address: str, endpoint: Endpoint) -> None:
        """Attach an endpoint; re-registering replaces (node restart)."""
        self._endpoints[address] = endpoint

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def knows(self, address: str) -> bool:
        return address in self._endpoints

    def addresses(self) -> list[str]:
        return sorted(self._endpoints)

    def set_pair_delay(self, src: str, dst: str, model: DelayModel) -> None:
        """Override the delay model for one ordered pair."""
        self._pair_delay[(src, dst)] = model

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def set_drop_rate(self, rate: float) -> None:
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must be in [0,1], got {rate}")
        self._drop_rate = rate

    def set_fault_filter(self, fault_filter: Callable[[Envelope], bool] | None) -> None:
        """Install a predicate; returning ``False`` drops the envelope.
        Used by fault injection to target specific flows."""
        self._fault_filter = fault_filter

    def block(self, a: str, b: str) -> None:
        """Sever both directions between two addresses."""
        self._blocked_pairs.add((a, b))
        self._blocked_pairs.add((b, a))

    def unblock(self, a: str, b: str) -> None:
        self._blocked_pairs.discard((a, b))
        self._blocked_pairs.discard((b, a))

    def partition(self, *groups: list[str]) -> None:
        """Split the network into disjoint groups; traffic between
        different groups is dropped until :meth:`heal`."""
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1 :]:
                for a in group_a:
                    for b in group_b:
                        self.block(a, b)

    def heal(self) -> None:
        """Remove every partition/block."""
        self._blocked_pairs.clear()

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked_pairs

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any, size: int | None = None) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        Unknown destinations raise: protocol code addressing a process
        that was never registered is a bug, not a tolerable fault
        (crashed processes stay registered and silently ignore messages).
        """
        if src not in self._endpoints:
            raise AddressUnknown(f"unknown source {src!r}")
        if dst not in self._endpoints:
            raise AddressUnknown(f"unknown destination {dst!r}")
        msg_size = size if size is not None else wire_size(payload)
        envelope = Envelope(src, dst, payload, msg_size, self.sim.now, self._next_msg_id)
        self._next_msg_id += 1
        self.stats.messages_sent += 1
        self.stats.bytes_sent += msg_size

        if self._should_drop(envelope):
            self.stats.messages_dropped += 1
            self.sim.trace.record(self.sim.now, "net", self.name, "drop", src=src, dst=dst)
            return

        model = self._pair_delay.get((src, dst), self.default_delay)
        delay = model.sample(self._rng)
        deliver_at = self.sim.now + delay
        if self.fifo:
            last = self._last_delivery.get((src, dst), 0.0)
            if last > deliver_at:
                deliver_at = last
            self._last_delivery[(src, dst)] = deliver_at
        self.sim.schedule_at(deliver_at, self._deliver, envelope)

    def _should_drop(self, envelope: Envelope) -> bool:
        if (envelope.src, envelope.dst) in self._blocked_pairs:
            return True
        if self._drop_rate > 0 and self._rng.random() < self._drop_rate:
            return True
        if self._fault_filter is not None and not self._fault_filter(envelope):
            return True
        return False

    def _deliver(self, envelope: Envelope) -> None:
        endpoint = self._endpoints.get(envelope.dst)
        if endpoint is None:
            # Destination unregistered while in flight; message is lost.
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        endpoint.deliver(envelope)
