"""Network-layer exceptions."""


class NetworkError(Exception):
    """Base class for network substrate failures."""


class AddressUnknown(NetworkError):
    """A message was sent to or from an unregistered address."""


class SynchronyViolation(NetworkError):
    """A synchronous link was asked to exceed its delivery bound δ
    without fault injection being enabled (assumption A2 would be
    silently broken -- that must never happen by accident)."""
