"""Message delay models.

Delay models are sampled per message from a named RNG stream, so a given
network's delay sequence is independent of unrelated protocol decisions.
"""

from __future__ import annotations

import abc
import random


class DelayModel(abc.ABC):
    """Samples one-way message delays, in milliseconds."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw the next delay."""

    def bound(self) -> float | None:
        """Known upper bound on delays, or ``None`` if unbounded.

        :class:`SynchronousLink` refuses delay models that cannot state a
        bound -- that is exactly what makes it synchronous.
        """
        return None


class ConstantDelay(DelayModel):
    """Every message takes exactly ``value`` ms."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"delay must be >= 0, got {value}")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value

    def bound(self) -> float:
        return self.value


class UniformDelay(DelayModel):
    """Delays uniform in [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def bound(self) -> float:
        return self.high


class ExponentialDelay(DelayModel):
    """Shifted exponential: ``floor + Exp(mean)``, optionally capped.

    The long tail is what makes timeout choice hard on asynchronous
    networks; an uncapped instance has no bound, which is the honest
    model of the paper's "asynchronous communication network".
    """

    def __init__(self, floor: float, mean: float, cap: float | None = None) -> None:
        if floor < 0 or mean <= 0:
            raise ValueError(f"need floor >= 0 and mean > 0, got {floor}, {mean}")
        if cap is not None and cap < floor:
            raise ValueError(f"cap {cap} below floor {floor}")
        self.floor = floor
        self.mean = mean
        self.cap = cap

    def sample(self, rng: random.Random) -> float:
        value = self.floor + rng.expovariate(1.0 / self.mean)
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def bound(self) -> float | None:
        return self.cap


class SpikeDelay(DelayModel):
    """A base model plus rare large spikes.

    Models transient congestion: with probability ``spike_probability`` a
    message is delayed by an extra ``spike_ms``.  This is the adversary
    of timeout-based failure suspectors -- a spike longer than the
    suspicion timeout produces a *false* suspicion and (in partitionable
    NewTOP) a group split with no actual failure.
    """

    def __init__(self, base: DelayModel, spike_probability: float, spike_ms: float) -> None:
        if not 0 <= spike_probability <= 1:
            raise ValueError(f"probability must be in [0,1], got {spike_probability}")
        if spike_ms < 0:
            raise ValueError(f"spike_ms must be >= 0, got {spike_ms}")
        self.base = base
        self.spike_probability = spike_probability
        self.spike_ms = spike_ms

    def sample(self, rng: random.Random) -> float:
        delay = self.base.sample(rng)
        if rng.random() < self.spike_probability:
            delay += self.spike_ms
        return delay

    def bound(self) -> float | None:
        base_bound = self.base.bound()
        if base_bound is None:
            return None
        return base_bound + self.spike_ms
