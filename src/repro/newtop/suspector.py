"""The timeout-based failure suspector of crash-tolerant NewTOP.

"The NewTOP group membership object ... makes use of a failure suspector
module which periodically 'pings' remote NSO GCs and generates suspicions
based on a timeout mechanism" (section 3.1).

Because message delay over an asynchronous network has no known bound,
these suspicions can be *false*; a false suspicion splits the group even
though nobody failed.  This module is deliberately timeout-parameterised
so the experiments can demonstrate exactly that (experiment E5).

The suspector lives *outside* the GC state machine: it owns timers, and
feeds the GC only through ``submit_suspicion`` inputs.
"""

from __future__ import annotations

from repro.corba.orb import ObjectRef, Servant
from repro.sim.process import Process
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.transport.base import Clock


class PingSuspector(Process, Servant):
    """Ping/timeout failure suspector for one member of one group.

    Parameters
    ----------
    interval:
        Gap between ping rounds, ms.
    timeout:
        How long after a ping round the pong must have arrived, ms.
        Must be below ``interval`` so rounds do not overlap.
    max_misses:
        Consecutive missed pongs tolerated before suspecting.  The
        paper's experiments use "large timeouts" to avoid any false
        suspicion; small values here reproduce false-suspicion splits.
    """

    def __init__(
        self,
        sim: Clock,
        member_id: str,
        group: str,
        interval: float = 200.0,
        timeout: float = 100.0,
        max_misses: int = 2,
    ) -> None:
        if timeout >= interval:
            raise ValueError(f"timeout {timeout} must be < interval {interval}")
        Process.__init__(self, sim, f"{member_id}/suspector")
        self.member_id = member_id
        self.group = group
        self.interval = interval
        self.timeout = timeout
        self.max_misses = max_misses
        self._peers: dict[str, ObjectRef] = {}
        self._gc_ref: ObjectRef | None = None
        self._round = 0
        self._last_pong_round: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self.suspected: set[str] = set()
        self.suspicions_raised: list[str] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def configure(self, gc_ref: ObjectRef, peer_suspectors: dict[str, ObjectRef]) -> None:
        self._gc_ref = gc_ref
        self._peers = {m: ref for m, ref in peer_suspectors.items() if m != self.member_id}

    def start(self) -> None:
        self.set_timer("round", self.interval)

    def stop(self) -> None:
        self.cancel_timer("round")
        self.cancel_timer("check")

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def on_timer(self, tag: str, *args) -> None:
        if tag == "round":
            self._round += 1
            for member, ref in self._peers.items():
                if member not in self.suspected:
                    self.orb.oneway(ref, "ping", self.member_id, self._round)
            self.set_timer("check", self.timeout, self._round)
            self.set_timer("round", self.interval)
        elif tag == "check":
            self._check_round(args[0])

    def _check_round(self, round_no: int) -> None:
        for member in self._peers:
            if member in self.suspected:
                continue
            if self._last_pong_round.get(member, 0) >= round_no:
                self._misses[member] = 0
                continue
            self._misses[member] = self._misses.get(member, 0) + 1
            if self._misses[member] >= self.max_misses:
                self._suspect(member)

    def _suspect(self, member: str) -> None:
        self.suspected.add(member)
        self.suspicions_raised.append(member)
        self.trace("suspector", "suspect", member=member, round=self._round)
        self.orb.oneway(self._gc_ref, "submit_suspicion", self.group, member)

    # ------------------------------------------------------------------
    # servant methods (invoked by peers' ORBs)
    # ------------------------------------------------------------------
    def ping(self, from_member: str, round_no: int) -> None:
        peer = self._peers.get(from_member)
        if peer is not None:
            self.orb.oneway(peer, "pong", self.member_id, round_no)

    def pong(self, from_member: str, round_no: int) -> None:
        previous = self._last_pong_round.get(from_member, 0)
        if round_no > previous:
            self._last_pong_round[from_member] = round_no

    # Process API (unused -- the suspector talks via the ORB).
    def on_message(self, message) -> None:  # pragma: no cover - defensive
        raise NotImplementedError("PingSuspector communicates via ORB invocations")
