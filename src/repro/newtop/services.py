"""The service types NewTOP offers to applications."""

from __future__ import annotations

import enum


class ServiceType(str, enum.Enum):
    """Multicast qualities of service (section 3 of the paper)."""

    #: Symmetric total order: ordered after logical acknowledgement by
    #: all members.  Message-intensive; the paper benchmarks this one.
    SYMMETRIC_TOTAL = "symmetric_total"
    #: Asymmetric total order: a sequencer member assigns the order.
    ASYMMETRIC_TOTAL = "asymmetric_total"
    #: Causal order (vector clocks).
    CAUSAL = "causal"
    #: Reliable FIFO multicast (gap detection + retransmission).
    RELIABLE = "reliable"
    #: Simple multicast: no ordering, no delivery guarantee beyond the
    #: underlying network's.
    UNRELIABLE = "unreliable"
