"""The NewTOP group communication middleware (the paper's baseline).

NewTOP (Newcastle Total Order Protocol) is a CORBA-compliant,
crash-tolerant, *partitionable* middleware system.  Each application
process is allocated a NewTOP Service Object (NSO) made of two
subsystems:

* the **Invocation service**, which marshals application messages into
  the CORBA ``any`` type and selects the requested service;
* the **Group Communication (GC) service**, which implements symmetric
  total order, asymmetric (sequencer) total order, causal order,
  reliable multicast, unreliable multicast and partitionable group
  membership.

The GC service is a single-threaded, *deterministic* state machine: all
behaviour is a function of the sequence of inputs it is given.  That is
requirement R1 of the paper -- the property that later allows GC to be
replicated inside a fail-signal wrapper without modification.  The only
timeout-driven component, the failure suspector, therefore lives outside
the GC object and communicates with it by submitting suspicion *inputs*.
"""

from repro.newtop.invocation import DeliveredMessage, InvocationService
from repro.newtop.nso import Nso
from repro.newtop.services import ServiceType
from repro.newtop.suspector import PingSuspector
from repro.newtop.system import CrashTolerantGroup
from repro.newtop.views import View

__all__ = [
    "CrashTolerantGroup",
    "DeliveredMessage",
    "InvocationService",
    "Nso",
    "PingSuspector",
    "ServiceType",
    "View",
]
