"""GC protocol messages.

All messages are frozen dataclasses (canonically encodable, hence
signable by the FS layer without modification).  ``wire_size`` charges
the carried application payload at its declared size plus a small
protocol header, so Figure 8's message-size sweep costs what it should.
"""

from __future__ import annotations

import dataclasses

from repro.corba.anytype import Any as CorbaAny

#: Protocol-header bytes charged per GC message on top of any payload.
GC_HEADER = 48


@dataclasses.dataclass(frozen=True, slots=True)
class DataMsg:
    """A multicast's payload-carrying message (symmetric total order,
    and the member->sequencer leg of asymmetric order)."""

    group: str
    view_id: int
    sender: str
    seq: int
    lamport: int
    service: str
    payload: CorbaAny

    @property
    def wire_size(self) -> int:
        return GC_HEADER + self.payload.wire_size


@dataclasses.dataclass(frozen=True, slots=True)
class AckMsg:
    """Logical acknowledgement of a DataMsg, sent to *all* members --
    the n-squared traffic that makes symmetric order message-intensive."""

    group: str
    view_id: int
    acker: str
    data_sender: str
    data_seq: int
    lamport: int

    @property
    def wire_size(self) -> int:
        return GC_HEADER


@dataclasses.dataclass(frozen=True, slots=True)
class OrderMsg:
    """Sequencer's ordering decision (asymmetric total order)."""

    group: str
    view_id: int
    order_seq: int
    data: DataMsg

    @property
    def wire_size(self) -> int:
        return GC_HEADER + self.data.wire_size


@dataclasses.dataclass(frozen=True, slots=True)
class CausalMsg:
    """Causal-order multicast carrying the sender's vector clock.

    The vector clock travels as a tuple of (member, count) pairs sorted
    by member, which encodes canonically."""

    group: str
    sender: str
    seq: int
    vclock: tuple[tuple[str, int], ...]
    payload: CorbaAny

    @property
    def wire_size(self) -> int:
        return GC_HEADER + 8 * len(self.vclock) + self.payload.wire_size


@dataclasses.dataclass(frozen=True, slots=True)
class ReliableMsg:
    """Reliable FIFO multicast data message."""

    group: str
    sender: str
    seq: int
    payload: CorbaAny

    @property
    def wire_size(self) -> int:
        return GC_HEADER + self.payload.wire_size


@dataclasses.dataclass(frozen=True, slots=True)
class NackMsg:
    """Gap report: asks ``data_sender`` to retransmit a missing seq."""

    group: str
    requester: str
    data_sender: str
    missing_seq: int

    @property
    def wire_size(self) -> int:
        return GC_HEADER


@dataclasses.dataclass(frozen=True, slots=True)
class UnreliableMsg:
    """Simple multicast: best effort, no ordering."""

    group: str
    sender: str
    payload: CorbaAny

    @property
    def wire_size(self) -> int:
        return GC_HEADER + self.payload.wire_size


@dataclasses.dataclass(frozen=True, slots=True)
class ViewProposeMsg:
    """Membership proposal: install ``view_id`` with ``members``.

    A view installs at a member once matching proposals from every
    member of the proposed set have been received."""

    group: str
    proposer: str
    view_id: int
    members: tuple[str, ...]

    @property
    def wire_size(self) -> int:
        return GC_HEADER + 16 * len(self.members)


GcMsg = (
    DataMsg
    | AckMsg
    | OrderMsg
    | CausalMsg
    | ReliableMsg
    | NackMsg
    | UnreliableMsg
    | ViewProposeMsg
)
