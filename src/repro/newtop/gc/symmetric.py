"""Symmetric total order.

The paper singles this service out for its evaluation because it "is
known to be significantly message intensive (it orders a message only
after the message is logically acknowledged by all members in the
group)".

The protocol is Lamport-clock total order with explicit all-to-all
acknowledgements:

* a multicast is timestamped with the sender's Lamport clock and sent to
  every view member;
* every receiver immediately acknowledges *to every member* with its own
  (updated) clock -- n*(n-1) acks per multicast;
* a buffered message is **stable** once every current member has been
  heard from with a Lamport time greater than the message's timestamp
  (an ack or any later message qualifies);
* stable messages deliver in (timestamp, sender) order, which is total
  and identical at all members.

FIFO channels (the ORB runs over TCP) make "heard from with a greater
time" a sound stability test.
"""

from __future__ import annotations

import dataclasses

from repro.corba.anytype import Any as CorbaAny
from repro.newtop.gc.context import ProtocolContext
from repro.newtop.gc.messages import AckMsg, DataMsg
from repro.newtop.services import ServiceType
from repro.newtop.views import View


@dataclasses.dataclass(slots=True)
class _Pending:
    msg: DataMsg
    received_at_order: int  # arrival tiebreak for deterministic traces


class SymmetricOrder:
    """Per-(member, group) symmetric total order engine."""

    def __init__(self, ctx: ProtocolContext, group: str) -> None:
        self.ctx = ctx
        self.group = group
        self.lamport = 0
        self.own_seq = 0
        self._arrivals = 0
        # Buffered, undelivered messages keyed by (sender, seq).
        self._pending: dict[tuple[str, int], _Pending] = {}
        # Highest Lamport time heard from each member.
        self._heard: dict[str, int] = {}
        self.delivered_count = 0

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def submit(self, payload: CorbaAny) -> None:
        """Multicast ``payload`` with symmetric total order."""
        self.own_seq += 1
        self.lamport += 1
        msg = DataMsg(
            group=self.group,
            view_id=self.ctx.view().view_id,
            sender=self.ctx.member_id,
            seq=self.own_seq,
            lamport=self.lamport,
            service=ServiceType.SYMMETRIC_TOTAL.value,
            payload=payload,
        )
        self.ctx.trace("sym-mcast", seq=self.own_seq, ts=self.lamport)
        self.ctx.broadcast(msg, include_self=True)

    def on_data(self, msg: DataMsg) -> None:
        self.lamport = max(self.lamport, msg.lamport) + 1
        self._note_heard(msg.sender, msg.lamport)
        key = (msg.sender, msg.seq)
        if key not in self._pending:
            self._arrivals += 1
            self._pending[key] = _Pending(msg=msg, received_at_order=self._arrivals)
        ack = AckMsg(
            group=self.group,
            view_id=self.ctx.view().view_id,
            acker=self.ctx.member_id,
            data_sender=msg.sender,
            data_seq=msg.seq,
            lamport=self.lamport,
        )
        self.ctx.broadcast(ack, include_self=True)
        self._try_deliver()

    def on_ack(self, msg: AckMsg) -> None:
        self.lamport = max(self.lamport, msg.lamport) + 1
        self._note_heard(msg.acker, msg.lamport)
        self._try_deliver()

    def on_view_change(self, view: View) -> None:
        """Stability is now quantified over the new (smaller) membership;
        re-evaluate everything buffered."""
        self._try_deliver()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _note_heard(self, member: str, lamport: int) -> None:
        previous = self._heard.get(member, 0)
        if lamport > previous:
            self._heard[member] = lamport

    def _stable(self, msg: DataMsg, members: tuple[str, ...]) -> bool:
        for member in members:
            if member == self.ctx.member_id:
                if self.lamport <= msg.lamport:
                    return False
            elif self._heard.get(member, 0) <= msg.lamport:
                return False
        return True

    def _try_deliver(self) -> None:
        members = self.ctx.view().members
        while self._pending:
            key = min(
                self._pending,
                key=lambda k: (self._pending[k].msg.lamport, k[0], k[1]),
            )
            head = self._pending[key].msg
            if not self._stable(head, members):
                return
            del self._pending[key]
            self.delivered_count += 1
            self.ctx.trace("sym-deliver", sender=head.sender, seq=head.seq, ts=head.lamport)
            self.ctx.deliver(
                sender=head.sender,
                payload=head.payload,
                service=ServiceType.SYMMETRIC_TOTAL.value,
                meta={"lamport": head.lamport, "seq": head.seq, "view_id": head.view_id},
            )
