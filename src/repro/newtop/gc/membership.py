"""Partitionable group membership.

NewTOP's membership removes suspected members from the view.  Because
suspicions come from timeouts over an asynchronous network they *can be
false*, and the protocol is partitionable by design: each side of a
(real or suspected) partition installs its own shrinking view, and
merging is not supported (section 3 of the paper).

Protocol: a member whose suspected-set grows proposes the view
``(current members - suspected)`` with the next view id, broadcasting a
:class:`ViewProposeMsg` to the survivors.  A view installs at a member
once matching proposals (same id, same member set) have arrived from
*every* proposed member.  If further suspicions arrive meanwhile, the
candidate shrinks and is re-proposed under the same id; stale proposals
die out because install requires exact agreement on the member set.

The engine is input-driven only (suspicions arrive as inputs from the
suspector module), so it stays a deterministic state machine -- which is
what lets FS-NewTOP replicate it unchanged.
"""

from __future__ import annotations

import typing

from repro.newtop.gc.context import ProtocolContext
from repro.newtop.gc.messages import ViewProposeMsg
from repro.newtop.views import View


class MembershipEngine:
    """Per-(member, group) membership state machine."""

    def __init__(
        self,
        ctx: ProtocolContext,
        group: str,
        initial: View,
        on_install: typing.Callable[[View], None],
    ) -> None:
        if ctx.member_id not in initial:
            raise ValueError(f"{ctx.member_id} not in initial view {initial}")
        self.ctx = ctx
        self.group = group
        self.current = initial
        self.suspected: set[str] = set()
        self._on_install = on_install
        # proposals[(view_id, members)] -> set of proposers heard from.
        self._proposals: dict[tuple[int, tuple[str, ...]], set[str]] = {}
        self.views_installed = 0

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def submit_suspicion(self, member: str) -> None:
        """Input from the failure suspector: ``member`` is suspected."""
        if member == self.ctx.member_id:
            return  # self-suspicion is meaningless
        if member in self.suspected or member not in self.current:
            return
        self.suspected.add(member)
        self.ctx.trace("suspect", member=member)
        self._propose()

    def on_propose(self, msg: ViewProposeMsg) -> None:
        if msg.view_id <= self.current.view_id:
            return  # stale
        if self.ctx.member_id not in msg.members:
            # A view that excludes us: the proposers think we failed.
            # Partitionable semantics -- we simply are not part of it.
            return
        key = (msg.view_id, msg.members)
        self._proposals.setdefault(key, set()).add(msg.proposer)
        self._try_install()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _candidate(self) -> View:
        survivors = tuple(m for m in self.current.members if m not in self.suspected)
        return View(
            group=self.group,
            view_id=self.current.view_id + 1,
            members=survivors,
        )

    def _propose(self) -> None:
        candidate = self._candidate()
        msg = ViewProposeMsg(
            group=self.group,
            proposer=self.ctx.member_id,
            view_id=candidate.view_id,
            members=candidate.members,
        )
        self.ctx.trace("view-propose", view_id=candidate.view_id, members=candidate.members)
        for member in candidate.members:
            # Self-proposals go through ctx.send too: the session's input
            # pump keeps them from running re-entrantly.
            self.ctx.send(member, msg)

    def _try_install(self) -> None:
        for (view_id, members), proposers in sorted(self._proposals.items()):
            if view_id <= self.current.view_id:
                continue
            if set(members) <= proposers:
                view = View(group=self.group, view_id=view_id, members=members)
                self._install(view)
                return

    def _install(self, view: View) -> None:
        self.current = view
        self.views_installed += 1
        # Anything proposed for this id or older is dead.
        self._proposals = {
            key: proposers
            for key, proposers in self._proposals.items()
            if key[0] > view.view_id
        }
        self.ctx.trace("view-install", view_id=view.view_id, members=view.members)
        self._on_install(view)
        # If we already suspect members of the new view (suspicions that
        # arrived mid-agreement), immediately start the next round.
        if any(m in view.members for m in self.suspected):
            self._propose()
