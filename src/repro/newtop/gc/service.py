"""The GC service CORBA servant.

All of a member's group-communication behaviour enters through this
object's methods and leaves through ORB oneway invocations -- there are
no timers and no reads of the clock inside.  That makes ``GCService`` a
deterministic state machine in the sense of requirement R1, which is the
precondition for wrapping it into a fail-signal process pair unchanged.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.corba.anytype import Any as CorbaAny
from repro.corba.orb import ObjectRef, Request, Servant
from repro.newtop.gc.session import GroupSession
from repro.newtop.views import View

#: CPU cost (ms) of one GC protocol step, on top of ORB dispatch.
GC_STEP_COST_MS = 0.08


@dataclasses.dataclass(frozen=True, slots=True)
class GroupConfig:
    """Wiring for one group, from one member's point of view."""

    initial_view: View
    gc_refs: dict[str, ObjectRef]  # member id -> that member's GC ref
    inv_ref: ObjectRef  # this member's Invocation service ref


class GCService(Servant):
    """One member's Group Communication service object."""

    def __init__(self, member_id: str, trace_fn: typing.Callable[..., None] | None = None) -> None:
        self.member_id = member_id
        self._trace_fn = trace_fn if trace_fn is not None else (lambda event, **kw: None)
        self._sessions: dict[str, GroupSession] = {}
        self._configs: dict[str, GroupConfig] = {}
        self.step_cost_ms = GC_STEP_COST_MS

    # ------------------------------------------------------------------
    # configuration (start-up time; not part of the input stream)
    # ------------------------------------------------------------------
    def join_group(self, group: str, config: GroupConfig) -> None:
        if group in self._sessions:
            raise ValueError(f"{self.member_id} already joined {group!r}")
        self._configs[group] = config
        self._sessions[group] = GroupSession(
            member_id=self.member_id,
            group=group,
            initial_view=config.initial_view,
            send_fn=lambda member, msg, g=group: self._send(g, member, msg),
            deliver_fn=self._deliver_up,
            view_fn=lambda view, g=group: self._notify_view(g, view),
            trace_fn=self._trace_fn,
        )

    def session(self, group: str) -> GroupSession:
        session = self._sessions.get(group)
        if session is None:
            raise KeyError(f"{self.member_id} is not a member of {group!r}")
        return session

    def groups(self) -> list[str]:
        return sorted(self._sessions)

    # ------------------------------------------------------------------
    # servant methods (the state machine's input alphabet)
    # ------------------------------------------------------------------
    def submit(self, group: str, service: str, payload: CorbaAny) -> None:
        """Multicast request from the local Invocation layer."""
        self.session(group).submit(service, payload)

    def receive(self, msg: typing.Any) -> None:
        """Protocol message from a remote GC."""
        self.session(msg.group).route(msg)

    def submit_suspicion(self, group: str, member: str) -> None:
        """Suspicion input from the failure suspector module."""
        self.session(group).submit_suspicion(member)

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def _send(self, group: str, member: str, msg: typing.Any) -> None:
        ref = self._configs[group].gc_refs.get(member)
        if ref is None:
            raise KeyError(f"{self.member_id}: no GC ref for {member!r} in {group!r}")
        self.orb.oneway(ref, "receive", msg)

    def _deliver_up(
        self, group: str, sender: str, payload: CorbaAny, service: str, meta: dict
    ) -> None:
        self.orb.oneway(
            self._configs[group].inv_ref, "deliver", group, sender, payload, service, meta
        )

    def _notify_view(self, group: str, view: View) -> None:
        self.orb.oneway(self._configs[group].inv_ref, "view_changed", view)

    # ------------------------------------------------------------------
    # costing
    # ------------------------------------------------------------------
    def invocation_cost(self, request: Request) -> float:
        return self.step_cost_ms
