"""The NewTOP Group Communication (GC) service.

A deterministic, input-driven protocol engine.  ``GCService`` is the
CORBA servant; it routes inputs to per-group :class:`GroupSession`
objects which compose the individual protocol modules:

* :mod:`repro.newtop.gc.symmetric` -- symmetric total order,
* :mod:`repro.newtop.gc.asymmetric` -- sequencer-based total order,
* :mod:`repro.newtop.gc.causal` -- causal order,
* :mod:`repro.newtop.gc.reliable` -- reliable FIFO multicast,
* :mod:`repro.newtop.gc.unreliable` -- simple multicast,
* :mod:`repro.newtop.gc.membership` -- partitionable group membership.
"""

from repro.newtop.gc.service import GCService, GroupConfig

__all__ = ["GCService", "GroupConfig"]
