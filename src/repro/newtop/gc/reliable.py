"""Reliable FIFO multicast with gap detection.

Per-sender sequence numbers give FIFO delivery; a receiver that observes
a gap (possible when the underlying network is lossy or was partitioned)
sends a NACK to the original sender, who retransmits from its log.
"""

from __future__ import annotations

from repro.corba.anytype import Any as CorbaAny
from repro.newtop.gc.context import ProtocolContext
from repro.newtop.gc.messages import NackMsg, ReliableMsg
from repro.newtop.services import ServiceType
from repro.newtop.views import View

#: Retransmission log size per sender (older entries are dropped; a
#: receiver that far behind rejoins via membership, not retransmission).
LOG_LIMIT = 1024


class ReliableChannel:
    """Per-(member, group) reliable FIFO multicast engine."""

    def __init__(self, ctx: ProtocolContext, group: str) -> None:
        self.ctx = ctx
        self.group = group
        self.own_seq = 0
        self._log: dict[int, ReliableMsg] = {}
        self._next_from: dict[str, int] = {}
        self._held: dict[tuple[str, int], ReliableMsg] = {}
        self.delivered_count = 0
        self.nacks_sent = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def submit(self, payload: CorbaAny) -> None:
        """Reliable multicast of ``payload``."""
        self.own_seq += 1
        msg = ReliableMsg(
            group=self.group,
            sender=self.ctx.member_id,
            seq=self.own_seq,
            payload=payload,
        )
        self._log[msg.seq] = msg
        if len(self._log) > LOG_LIMIT:
            self._log.pop(min(self._log))
        self.ctx.trace("rel-mcast", seq=msg.seq)
        self.ctx.broadcast(msg, include_self=True)

    def on_msg(self, msg: ReliableMsg) -> None:
        expected = self._next_from.get(msg.sender, 1)
        if msg.seq < expected:
            return  # duplicate (e.g. a retransmission that raced)
        if msg.seq > expected:
            # Gap: hold this one, ask for what's missing.
            self._held[(msg.sender, msg.seq)] = msg
            for missing in range(expected, msg.seq):
                if (msg.sender, missing) not in self._held:
                    self.nacks_sent += 1
                    self.ctx.trace("rel-nack", sender=msg.sender, missing=missing)
                    self.ctx.send(
                        msg.sender,
                        NackMsg(
                            group=self.group,
                            requester=self.ctx.member_id,
                            data_sender=msg.sender,
                            missing_seq=missing,
                        ),
                    )
            return
        self._deliver(msg)
        # Drain any held successors.
        next_seq = self._next_from[msg.sender]
        while (msg.sender, next_seq) in self._held:
            self._deliver(self._held.pop((msg.sender, next_seq)))
            next_seq = self._next_from[msg.sender]

    def on_nack(self, msg: NackMsg) -> None:
        logged = self._log.get(msg.missing_seq)
        if logged is None:
            self.ctx.trace("rel-nack-unserviceable", missing=msg.missing_seq)
            return
        self.retransmissions += 1
        self.ctx.send(msg.requester, logged)

    def on_view_change(self, view: View) -> None:
        """Held messages from removed members are dropped: the member
        left the view, FIFO continuity with it ends here."""
        gone = [key for key in self._held if key[0] not in view.members]
        for key in gone:
            del self._held[key]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _deliver(self, msg: ReliableMsg) -> None:
        self._next_from[msg.sender] = msg.seq + 1
        self.delivered_count += 1
        self.ctx.trace("rel-deliver", sender=msg.sender, seq=msg.seq)
        self.ctx.deliver(
            sender=msg.sender,
            payload=msg.payload,
            service=ServiceType.RELIABLE.value,
            meta={"seq": msg.seq},
        )
