"""Causal order multicast (vector clocks).

A message carries the sender's vector clock; a receiver delays delivery
until (a) it has delivered every earlier message of the same sender and
(b) it has delivered everything the sender had delivered when it sent.
Standard Birman-Schiper-Stephenson conditions.
"""

from __future__ import annotations

from repro.corba.anytype import Any as CorbaAny
from repro.newtop.gc.context import ProtocolContext
from repro.newtop.gc.messages import CausalMsg
from repro.newtop.services import ServiceType
from repro.newtop.views import View


class CausalOrder:
    """Per-(member, group) causal order engine."""

    def __init__(self, ctx: ProtocolContext, group: str) -> None:
        self.ctx = ctx
        self.group = group
        self._vclock: dict[str, int] = {}
        self._held: list[CausalMsg] = []
        self.delivered_count = 0

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def submit(self, payload: CorbaAny) -> None:
        """Causal multicast of ``payload``."""
        me = self.ctx.member_id
        self._vclock[me] = self._vclock.get(me, 0) + 1
        msg = CausalMsg(
            group=self.group,
            sender=me,
            seq=self._vclock[me],
            vclock=self._freeze_clock(),
            payload=payload,
        )
        self.ctx.trace("causal-mcast", seq=msg.seq)
        self.ctx.broadcast(msg, include_self=False)
        # Own messages deliver locally at once (they causally follow
        # everything this member has already delivered).
        self._deliver(msg)

    def on_msg(self, msg: CausalMsg) -> None:
        self._held.append(msg)
        self._drain()

    def on_view_change(self, view: View) -> None:
        """Entries for departed members stay in the clock: their causal
        history remains valid; nothing to do."""

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _freeze_clock(self) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(self._vclock.items()))

    def _deliverable(self, msg: CausalMsg) -> bool:
        if msg.seq != self._vclock.get(msg.sender, 0) + 1:
            return False
        for member, count in msg.vclock:
            if member == msg.sender:
                continue
            if self._vclock.get(member, 0) < count:
                return False
        return True

    def _deliver(self, msg: CausalMsg) -> None:
        if msg.sender != self.ctx.member_id:
            self._vclock[msg.sender] = msg.seq
        self.delivered_count += 1
        self.ctx.trace("causal-deliver", sender=msg.sender, seq=msg.seq)
        self.ctx.deliver(
            sender=msg.sender,
            payload=msg.payload,
            service=ServiceType.CAUSAL.value,
            meta={"seq": msg.seq, "vclock": dict(msg.vclock)},
        )

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Deterministic scan order: by (sender, seq) over held list.
            for msg in sorted(self._held, key=lambda m: (m.sender, m.seq)):
                if self._deliverable(msg):
                    self._held.remove(msg)
                    self._deliver(msg)
                    progressed = True
                    break
