"""Simple (unreliable) multicast: fire, forget, deliver on arrival."""

from __future__ import annotations

from repro.corba.anytype import Any as CorbaAny
from repro.newtop.gc.context import ProtocolContext
from repro.newtop.gc.messages import UnreliableMsg
from repro.newtop.services import ServiceType


class UnreliableChannel:
    """Per-(member, group) simple multicast."""

    def __init__(self, ctx: ProtocolContext, group: str) -> None:
        self.ctx = ctx
        self.group = group
        self.delivered_count = 0

    def submit(self, payload: CorbaAny) -> None:
        msg = UnreliableMsg(group=self.group, sender=self.ctx.member_id, payload=payload)
        self.ctx.broadcast(msg, include_self=True)

    def on_msg(self, msg: UnreliableMsg) -> None:
        self.delivered_count += 1
        self.ctx.deliver(
            sender=msg.sender,
            payload=msg.payload,
            service=ServiceType.UNRELIABLE.value,
            meta={},
        )
