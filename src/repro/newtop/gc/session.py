"""Per-(member, group) protocol session.

Composes the five service engines and the membership engine over one
shared :class:`ProtocolContext` implementation, and routes inputs to the
right engine.  The session is owned by a :class:`GCService` servant.
"""

from __future__ import annotations

import collections
import typing

from repro.corba.anytype import Any as CorbaAny
from repro.newtop.gc.asymmetric import AsymmetricOrder
from repro.newtop.gc.causal import CausalOrder
from repro.newtop.gc.membership import MembershipEngine
from repro.newtop.gc.messages import (
    AckMsg,
    CausalMsg,
    DataMsg,
    NackMsg,
    OrderMsg,
    ReliableMsg,
    UnreliableMsg,
    ViewProposeMsg,
)
from repro.newtop.gc.reliable import ReliableChannel
from repro.newtop.gc.symmetric import SymmetricOrder
from repro.newtop.gc.unreliable import UnreliableChannel
from repro.newtop.services import ServiceType
from repro.newtop.views import View


class GroupSession:
    """All protocol state one member holds for one group."""

    def __init__(
        self,
        member_id: str,
        group: str,
        initial_view: View,
        send_fn: typing.Callable[[str, typing.Any], None],
        deliver_fn: typing.Callable[[str, str, CorbaAny, str, dict], None],
        view_fn: typing.Callable[[View], None],
        trace_fn: typing.Callable[..., None],
    ) -> None:
        self.member_id = member_id
        self.group = group
        self._send_fn = send_fn
        self._deliver_fn = deliver_fn
        self._view_fn = view_fn
        self._trace_fn = trace_fn
        # Input pump: self-sends must not run re-entrantly inside the
        # handler that issued them, or their outputs (e.g. the ACKs a
        # self-delivered DataMsg triggers) would overtake the outputs of
        # the current handler on the wire.  Inputs queue here and run
        # strictly one after another.
        self._inbox: collections.deque[typing.Callable[[], None]] = collections.deque()
        self._pumping = False

        self.membership = MembershipEngine(self, group, initial_view, self._view_installed)
        self.symmetric = SymmetricOrder(self, group)
        self.asymmetric = AsymmetricOrder(self, group)
        self.causal = CausalOrder(self, group)
        self.reliable = ReliableChannel(self, group)
        self.unreliable = UnreliableChannel(self, group)
        self._engines_by_service = {
            ServiceType.SYMMETRIC_TOTAL.value: self.symmetric,
            ServiceType.ASYMMETRIC_TOTAL.value: self.asymmetric,
            ServiceType.CAUSAL.value: self.causal,
            ServiceType.RELIABLE.value: self.reliable,
            ServiceType.UNRELIABLE.value: self.unreliable,
        }

    # ------------------------------------------------------------------
    # ProtocolContext implementation
    # ------------------------------------------------------------------
    def view(self) -> View:
        return self.membership.current

    def send(self, member: str, msg: typing.Any) -> None:
        if member == self.member_id:
            # Self-sends are internal transitions, processed after the
            # current input completes -- identically at every replica.
            self._ingest(lambda: self._route_now(msg))
        else:
            self._send_fn(member, msg)

    def broadcast(self, msg: typing.Any, include_self: bool = True) -> None:
        for member in self.view().members:
            if member == self.member_id and not include_self:
                continue
            self.send(member, msg)

    def deliver(self, sender: str, payload: CorbaAny, service: str, meta: dict) -> None:
        self._deliver_fn(self.group, sender, payload, service, meta)

    def trace(self, event: str, **details: typing.Any) -> None:
        self._trace_fn(event, group=self.group, **details)

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def submit(self, service: str, payload: CorbaAny) -> None:
        """Application multicast entering the protocol stack."""
        engine = self._engines_by_service.get(service)
        if engine is None:
            raise ValueError(f"unknown service type {service!r}")
        self._ingest(lambda: engine.submit(payload))

    def submit_suspicion(self, member: str) -> None:
        self._ingest(lambda: self.membership.submit_suspicion(member))

    def route(self, msg: typing.Any) -> None:
        """Queue one external protocol message for processing."""
        self._ingest(lambda: self._route_now(msg))

    def _ingest(self, thunk: typing.Callable[[], None]) -> None:
        self._inbox.append(thunk)
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._inbox:
                self._inbox.popleft()()
        finally:
            self._pumping = False

    def _route_now(self, msg: typing.Any) -> None:
        """Dispatch one protocol message to its engine."""
        if isinstance(msg, DataMsg):
            if msg.service == ServiceType.SYMMETRIC_TOTAL.value:
                self.symmetric.on_data(msg)
            else:
                self.asymmetric.on_data(msg)
        elif isinstance(msg, AckMsg):
            self.symmetric.on_ack(msg)
        elif isinstance(msg, OrderMsg):
            self.asymmetric.on_order(msg)
        elif isinstance(msg, CausalMsg):
            self.causal.on_msg(msg)
        elif isinstance(msg, ReliableMsg):
            self.reliable.on_msg(msg)
        elif isinstance(msg, NackMsg):
            self.reliable.on_nack(msg)
        elif isinstance(msg, UnreliableMsg):
            self.unreliable.on_msg(msg)
        elif isinstance(msg, ViewProposeMsg):
            self.membership.on_propose(msg)
        else:
            raise TypeError(f"unroutable GC message {msg!r}")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _view_installed(self, view: View) -> None:
        self.symmetric.on_view_change(view)
        self.asymmetric.on_view_change(view)
        self.causal.on_view_change(view)
        self.reliable.on_view_change(view)
        self._view_fn(view)
