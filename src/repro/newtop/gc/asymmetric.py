"""Asymmetric (sequencer-based) total order.

The view coordinator acts as the sequencer: members send their multicast
to it; it assigns consecutive order numbers and re-multicasts.  Members
deliver strictly in order-number sequence.  Two message hops and O(n)
messages per multicast -- the lightweight alternative NewTOP offers next
to the symmetric protocol.

On a view change the sequencer role moves with the coordinator; order
numbers restart per view (deliveries are tagged with the view id).
"""

from __future__ import annotations

from repro.corba.anytype import Any as CorbaAny
from repro.newtop.gc.context import ProtocolContext
from repro.newtop.gc.messages import DataMsg, OrderMsg
from repro.newtop.services import ServiceType
from repro.newtop.views import View


class AsymmetricOrder:
    """Per-(member, group) sequencer total order engine."""

    def __init__(self, ctx: ProtocolContext, group: str) -> None:
        self.ctx = ctx
        self.group = group
        self.own_seq = 0
        # Sequencer state (used only while this member coordinates).
        self._next_order = 1
        # Receiver state.
        self._next_deliver = 1
        self._held: dict[int, OrderMsg] = {}
        self.delivered_count = 0

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def submit(self, payload: CorbaAny) -> None:
        """Multicast ``payload`` with sequencer total order."""
        self.own_seq += 1
        msg = DataMsg(
            group=self.group,
            view_id=self.ctx.view().view_id,
            sender=self.ctx.member_id,
            seq=self.own_seq,
            lamport=0,
            service=ServiceType.ASYMMETRIC_TOTAL.value,
            payload=payload,
        )
        sequencer = self.ctx.view().coordinator()
        self.ctx.trace("asym-submit", seq=self.own_seq, sequencer=sequencer)
        self.ctx.send(sequencer, msg)

    def on_data(self, msg: DataMsg) -> None:
        """Sequencer side: assign the next order number and re-multicast."""
        if self.ctx.member_id != self.ctx.view().coordinator():
            # A stale submission that raced a view change; the new
            # sequencer will receive the sender's retry at the
            # application's discretion.  Drop deterministically.
            self.ctx.trace("asym-not-sequencer", sender=msg.sender, seq=msg.seq)
            return
        order = OrderMsg(
            group=self.group,
            view_id=self.ctx.view().view_id,
            order_seq=self._next_order,
            data=msg,
        )
        self._next_order += 1
        self.ctx.broadcast(order, include_self=True)

    def on_order(self, msg: OrderMsg) -> None:
        if msg.order_seq < self._next_deliver:
            return  # duplicate
        self._held[msg.order_seq] = msg
        while self._next_deliver in self._held:
            order = self._held.pop(self._next_deliver)
            self._next_deliver += 1
            self.delivered_count += 1
            data = order.data
            self.ctx.trace("asym-deliver", sender=data.sender, order=order.order_seq)
            self.ctx.deliver(
                sender=data.sender,
                payload=data.payload,
                service=ServiceType.ASYMMETRIC_TOTAL.value,
                meta={"order": order.order_seq, "seq": data.seq, "view_id": order.view_id},
            )

    def on_view_change(self, view: View) -> None:
        """Order numbering restarts in the new view."""
        self._next_order = 1
        self._next_deliver = 1
        self._held.clear()
