"""The interface protocol modules use to talk to the outside world.

Sub-protocols never touch the ORB or network directly; they call back
through this narrow context, which keeps each module independently
testable and keeps the GC state machine's outputs in one place (where
the FS wrapper can capture them).
"""

from __future__ import annotations

import typing

from repro.corba.anytype import Any as CorbaAny
from repro.newtop.views import View


class ProtocolContext(typing.Protocol):
    """What a GC sub-protocol may do."""

    member_id: str

    def view(self) -> View:
        """The currently installed view."""
        ...

    def send(self, member: str, msg: typing.Any) -> None:
        """Send a protocol message to one member's GC (self included --
        self-sends are handled as immediate local inputs)."""
        ...

    def broadcast(self, msg: typing.Any, include_self: bool = True) -> None:
        """Send to every member of the current view."""
        ...

    def deliver(
        self,
        sender: str,
        payload: CorbaAny,
        service: str,
        meta: dict[str, typing.Any],
    ) -> None:
        """Hand a message up to the Invocation layer."""
        ...

    def trace(self, event: str, **details: typing.Any) -> None:
        """Record a protocol trace event."""
        ...
