"""Assembly of a crash-tolerant NewTOP group for experiments and tests."""

from __future__ import annotations

import typing

from repro.corba.costs import OrbCostModel
from repro.corba.node import Node
from repro.net.delay import DelayModel, UniformDelay
from repro.net.network import Network
from repro.newtop.nso import Nso
from repro.newtop.suspector import PingSuspector
from repro.newtop.views import View
if typing.TYPE_CHECKING:
    from repro.transport.base import Clock


class CrashTolerantGroup:
    """A fully wired NewTOP deployment: one node per member.

    This is the baseline system of the paper's evaluation.  Each member
    gets a dual-core node with a 10-thread request pool, an NSO, and
    (optionally) a ping/timeout failure suspector.
    """

    def __init__(
        self,
        sim: Clock,
        n_members: int,
        group: str = "group",
        network: Network | None = None,
        delay: DelayModel | None = None,
        cores: int = 2,
        pool_size: int = 10,
        orb_costs: OrbCostModel | None = None,
        suspectors: bool = False,
        suspector_interval: float = 200.0,
        suspector_timeout: float = 100.0,
        suspector_max_misses: int = 2,
    ) -> None:
        if n_members < 1:
            raise ValueError(f"need at least one member, got {n_members}")
        self.sim = sim
        self.group = group
        self.network = network if network is not None else Network(
            sim, default_delay=delay if delay is not None else UniformDelay(0.3, 1.2)
        )
        self.member_ids = [f"member-{i}" for i in range(n_members)]
        self.nodes: dict[str, Node] = {}
        self.nsos: dict[str, Nso] = {}
        self.suspectors: dict[str, PingSuspector] = {}

        for member in self.member_ids:
            node = Node(
                sim, member, self.network, cores=cores, pool_size=pool_size, orb_costs=orb_costs
            )
            self.nodes[member] = node
            self.nsos[member] = Nso(node, member)

        initial_view = View(group=group, view_id=1, members=tuple(self.member_ids))
        gc_refs = {m: self.nsos[m].gc_ref for m in self.member_ids}
        for member in self.member_ids:
            self.nsos[member].join_group(group, initial_view, dict(gc_refs))

        if suspectors:
            suspector_refs = {}
            for member in self.member_ids:
                suspector = PingSuspector(
                    sim,
                    member,
                    group,
                    interval=suspector_interval,
                    timeout=suspector_timeout,
                    max_misses=suspector_max_misses,
                )
                self.nodes[member].activate(f"{member}.suspector", suspector)
                self.suspectors[member] = suspector
                suspector_refs[member] = suspector.ref
            for member in self.member_ids:
                self.suspectors[member].configure(
                    gc_ref=self.nsos[member].gc_ref,
                    peer_suspectors=dict(suspector_refs),
                )
                self.suspectors[member].start()

    # ------------------------------------------------------------------
    # convenience API used by tests, examples and benchmarks
    # ------------------------------------------------------------------
    def nso(self, index_or_id: int | str) -> Nso:
        if isinstance(index_or_id, int):
            return self.nsos[self.member_ids[index_or_id]]
        return self.nsos[index_or_id]

    def multicast(self, member: int | str, service: str, value: typing.Any) -> None:
        self.nso(member).multicast(self.group, service, value)

    def deliveries(self, member: int | str) -> list:
        return self.nso(member).delivered

    def views(self, member: int | str) -> list[View]:
        return self.nso(member).views

    def crash(self, member: int | str) -> None:
        """Unannounced crash of a member's node."""
        nso = self.nso(member)
        nso.node.crash()
        suspector = self.suspectors.get(nso.member_id)
        if suspector is not None:
            suspector.kill()
