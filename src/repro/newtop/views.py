"""Group views: the membership a member currently believes in."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class View:
    """An installed group view.

    ``members`` is kept sorted so that views compare equal across
    members and encode canonically for signing.
    """

    group: str
    view_id: int
    members: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(sorted(self.members)))

    def __contains__(self, member: str) -> bool:
        return member in self.members

    @property
    def size(self) -> int:
        return len(self.members)

    def without(self, *gone: str) -> "View":
        """Successor view with the given members removed."""
        remaining = tuple(m for m in self.members if m not in gone)
        return View(group=self.group, view_id=self.view_id + 1, members=remaining)

    def coordinator(self) -> str:
        """Deterministic coordinator: lowest member id.  Used as the
        sequencer for asymmetric total order."""
        if not self.members:
            raise ValueError(f"view {self.view_id} of {self.group!r} is empty")
        return self.members[0]

    def __str__(self) -> str:
        return f"{self.group}@v{self.view_id}{list(self.members)}"
