"""The NewTOP Invocation service.

The application-facing half of an NSO: it marshals application values
into the CORBA ``any`` type, forwards multicast requests to the local GC
service, and unmarshals delivered messages back for the application
(section 3 of the paper).
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

from repro.corba.anytype import Any as CorbaAny
from repro.corba.orb import ObjectRef, Servant
from repro.newtop.views import View


def _canonical(value: typing.Any) -> typing.Any:
    """Insertion-order-independent view of a payload (marshalling may
    rebuild dicts in a different key order)."""
    if isinstance(value, dict):
        return tuple(sorted((repr(k), _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


def message_key(sender: str, value: typing.Any) -> str:
    """A stable identity for one multicast payload.

    Both the send side and the deliver side trace this key, so the
    :mod:`repro.invariants` oracles can match deliveries against sends
    (validity) and compare delivery sequences across members (total
    order) without holding on to the values themselves.
    """
    return hashlib.md5(repr((sender, _canonical(value))).encode()).hexdigest()


@dataclasses.dataclass(frozen=True, slots=True)
class DeliveredMessage:
    """What an application receives from the group."""

    group: str
    sender: str
    service: str
    value: typing.Any
    meta: dict[str, typing.Any]
    delivered_at: float


class InvocationService(Servant):
    """One member's Invocation service object."""

    def __init__(self, member_id: str) -> None:
        self.member_id = member_id
        self._gc_ref: ObjectRef | None = None
        self.on_deliver: typing.Callable[[DeliveredMessage], None] | None = None
        self.on_view: typing.Callable[[View], None] | None = None
        self.delivered: list[DeliveredMessage] = []
        self.views: list[View] = []

    def bind_gc(self, gc_ref: ObjectRef) -> None:
        self._gc_ref = gc_ref

    # ------------------------------------------------------------------
    # application-facing side
    # ------------------------------------------------------------------
    def multicast(self, group: str, service: str, value: typing.Any) -> None:
        """Marshal ``value`` into an ``any`` and hand it to the GC."""
        if self._gc_ref is None:
            raise RuntimeError(f"{self.member_id}: invocation service not bound to a GC")
        sim = self.orb.sim
        if sim.trace.enabled:
            sim.trace.record(
                sim.now,
                "app",
                f"{self.member_id}.inv",
                "send",
                key=message_key(self.member_id, value),
                service=service,
            )
        payload = CorbaAny.wrap(value)
        self.orb.oneway(self._gc_ref, "submit", group, service, payload)

    # ------------------------------------------------------------------
    # GC-facing side
    # ------------------------------------------------------------------
    def deliver(
        self, group: str, sender: str, payload: CorbaAny, service: str, meta: dict
    ) -> None:
        message = DeliveredMessage(
            group=group,
            sender=sender,
            service=service,
            value=payload.extract(),
            meta=meta,
            delivered_at=self.orb.sim.now,
        )
        self.delivered.append(message)
        sim = self.orb.sim
        if sim.trace.enabled:
            sim.trace.record(
                sim.now,
                "app",
                f"{self.member_id}.inv",
                "deliver",
                key=message_key(sender, message.value),
                sender=sender,
                service=service,
            )
        if self.on_deliver is not None:
            self.on_deliver(message)

    def view_changed(self, view: View) -> None:
        self.views.append(view)
        if self.on_view is not None:
            self.on_view(view)
