"""The NewTOP Invocation service.

The application-facing half of an NSO: it marshals application values
into the CORBA ``any`` type, forwards multicast requests to the local GC
service, and unmarshals delivered messages back for the application
(section 3 of the paper).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.corba.anytype import Any as CorbaAny
from repro.corba.orb import ObjectRef, Servant
from repro.newtop.views import View


@dataclasses.dataclass(frozen=True, slots=True)
class DeliveredMessage:
    """What an application receives from the group."""

    group: str
    sender: str
    service: str
    value: typing.Any
    meta: dict[str, typing.Any]
    delivered_at: float


class InvocationService(Servant):
    """One member's Invocation service object."""

    def __init__(self, member_id: str) -> None:
        self.member_id = member_id
        self._gc_ref: ObjectRef | None = None
        self.on_deliver: typing.Callable[[DeliveredMessage], None] | None = None
        self.on_view: typing.Callable[[View], None] | None = None
        self.delivered: list[DeliveredMessage] = []
        self.views: list[View] = []

    def bind_gc(self, gc_ref: ObjectRef) -> None:
        self._gc_ref = gc_ref

    # ------------------------------------------------------------------
    # application-facing side
    # ------------------------------------------------------------------
    def multicast(self, group: str, service: str, value: typing.Any) -> None:
        """Marshal ``value`` into an ``any`` and hand it to the GC."""
        if self._gc_ref is None:
            raise RuntimeError(f"{self.member_id}: invocation service not bound to a GC")
        payload = CorbaAny.wrap(value)
        self.orb.oneway(self._gc_ref, "submit", group, service, payload)

    # ------------------------------------------------------------------
    # GC-facing side
    # ------------------------------------------------------------------
    def deliver(
        self, group: str, sender: str, payload: CorbaAny, service: str, meta: dict
    ) -> None:
        message = DeliveredMessage(
            group=group,
            sender=sender,
            service=service,
            value=payload.extract(),
            meta=meta,
            delivered_at=self.orb.sim.now,
        )
        self.delivered.append(message)
        if self.on_deliver is not None:
            self.on_deliver(message)

    def view_changed(self, view: View) -> None:
        self.views.append(view)
        if self.on_view is not None:
            self.on_view(view)
