"""The NewTOP Service Object: Invocation service + GC service bundle."""

from __future__ import annotations

import typing

from repro.corba.node import Node
from repro.corba.orb import ObjectRef
from repro.newtop.gc.service import GCService, GroupConfig
from repro.newtop.invocation import DeliveredMessage, InvocationService
from repro.newtop.views import View


class Nso:
    """One application process's NewTOP Service Object.

    Activates an Invocation servant and a GC servant on the given node
    and binds them together.  (In FS-NewTOP the GC ref handed to the
    Invocation layer points at the wrapped pair instead -- see
    :mod:`repro.fsnewtop`.)
    """

    def __init__(self, node: Node, member_id: str) -> None:
        self.node = node
        self.member_id = member_id
        self.invocation = InvocationService(member_id)
        self.gc = GCService(
            member_id,
            trace_fn=lambda event, **kw: node.sim.trace.record(
                node.sim.now, "gc", member_id, event, **kw
            ),
        )
        self.inv_ref: ObjectRef = node.activate(f"{member_id}.inv", self.invocation)
        self.gc_ref: ObjectRef = node.activate(f"{member_id}.gc", self.gc)
        self.invocation.bind_gc(self.gc_ref)

    # ------------------------------------------------------------------
    # group wiring
    # ------------------------------------------------------------------
    def join_group(
        self,
        group: str,
        initial_view: View,
        gc_refs: dict[str, ObjectRef],
    ) -> None:
        """Join ``group``; ``gc_refs`` maps every member to its GC ref."""
        self.gc.join_group(
            group,
            GroupConfig(initial_view=initial_view, gc_refs=gc_refs, inv_ref=self.inv_ref),
        )

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------
    def multicast(self, group: str, service: str, value: typing.Any) -> None:
        """Multicast ``value`` to ``group`` with the given service type.

        Issued through the node's ORB exactly as an application client
        would (the app and its NSO normally share a node)."""
        self.node.orb.oneway(self.inv_ref, "multicast", group, service, value)

    @property
    def delivered(self) -> list[DeliveredMessage]:
        return self.invocation.delivered

    @property
    def views(self) -> list[View]:
        return self.invocation.views

    def current_view(self, group: str) -> View:
        return self.gc.session(group).view()
