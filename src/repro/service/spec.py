"""Declarative description of the client-facing gateway.

A :class:`ServiceSpec` on a :class:`~repro.experiments.spec.ScenarioSpec`
turns the run into a *served* one: instead of the fixed-rate paper
workload, a closed-loop client fleet (:class:`repro.service.workload.
ServiceWorkload`) drives an :class:`~repro.service.gateway.
OrderingGateway` sitting in front of the group.  Like every other spec
in the experiments layer it is value-only -- JSON-serialisable,
picklable across campaign workers, and validated at construction.

The admission-control knobs mirror what the live HTTP front end
(:mod:`repro.service.http`) enforces: per-client token buckets
(``rate_limit_per_s`` / ``burst``) and the gateway inflight cap
(``max_inflight`` -- the admission-side reflection of the batching
pipeline's own ``max_inflight``; once this many admitted operations
are awaiting their delivered-order sequence number, further submits
are shed with a retry hint instead of deepening the queue).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class ServiceSpec:
    """The gateway, its admission control, and the client fleet.

    Gateway knobs:

    * ``clients`` -- distinct API keys issued (deterministically derived
      from ``key_seed``; see :mod:`repro.service.auth`);
    * ``rate_limit_per_s`` / ``burst`` -- per-client token bucket:
      sustained refill rate and bucket capacity;
    * ``max_inflight`` -- admitted-but-not-yet-sequenced cap; hitting it
      rejects with ``overloaded`` (HTTP 429) and a retry hint;
    * ``retry_after_ms`` -- the ``Retry-After`` hint returned on an
      overload rejection (rate-limit rejections compute the exact
      token-availability time instead).

    Fleet knobs (virtual time, so identical on sim and asyncio clocks):

    * ``sessions`` x ``ops_per_session`` closed-loop sessions, each
      submitting its next operation only after the previous one was
      sequenced, thinking ``think_ms`` (exponential, deterministic rng
      stream) between operations;
    * ``zipf_s`` -- key-popularity skew over a ``keyspace``-sized key
      set (sharded runs use the ShardSpec's keyspace instead);
    * ``subscribers`` streaming consumers verifying the delivery feed,
      each dropping and resuming from its last acked sequence number
      every ``reconnect_every`` events (0 = never reconnect);
    * ``max_retries`` -- shed submits are retried this many times with
      the returned retry hint before the session gives up;
    * ``ramp_ms`` -- window over which session starts are staggered
      (0 = one think window).  Large fleets need a real ramp: a
      thousand sessions arriving within one think window is a
      thundering herd no deployment admits, and on the wall-clock
      transport the burst starves heartbeat timers.
    """

    clients: int = 4
    rate_limit_per_s: float = 200.0
    burst: int = 20
    max_inflight: int = 256
    retry_after_ms: float = 100.0
    sessions: int = 32
    ops_per_session: int = 4
    think_ms: float = 50.0
    zipf_s: float = 1.1
    keyspace: int = 64
    subscribers: int = 2
    reconnect_every: int = 0
    max_retries: int = 8
    ramp_ms: float = 0.0
    key_seed: int = 7

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.rate_limit_per_s <= 0:
            raise ValueError(
                f"rate_limit_per_s must be > 0, got {self.rate_limit_per_s}"
            )
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.retry_after_ms <= 0:
            raise ValueError(f"retry_after_ms must be > 0, got {self.retry_after_ms}")
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.ops_per_session < 1:
            raise ValueError(
                f"ops_per_session must be >= 1, got {self.ops_per_session}"
            )
        if self.think_ms <= 0:
            raise ValueError(f"think_ms must be > 0, got {self.think_ms}")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if self.keyspace < 1:
            raise ValueError(f"keyspace must be >= 1, got {self.keyspace}")
        if self.subscribers < 0:
            raise ValueError(f"subscribers must be >= 0, got {self.subscribers}")
        if self.reconnect_every < 0:
            raise ValueError(
                f"reconnect_every must be >= 0, got {self.reconnect_every}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.ramp_ms < 0:
            raise ValueError(f"ramp_ms must be >= 0, got {self.ramp_ms}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceSpec":
        return cls(**data)
