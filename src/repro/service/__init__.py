"""Client-facing ordering service: gateway, admission control, fleet.

The layering, bottom-up:

* :mod:`repro.service.auth` / :mod:`repro.service.ratelimit` --
  framework-free admission primitives (API keys, token buckets);
* :mod:`repro.service.gateway` -- :class:`OrderingGateway`, the
  transport-agnostic core: authenticate, rate-limit, cap inflight,
  multicast admitted operations into the group, and turn the group's
  delivered order into a per-shard sequence-numbered delivery feed;
* :mod:`repro.service.workload` -- :class:`ServiceWorkload`, the
  closed-loop client fleet that drives a gateway in-process (the thing
  ``gateway=`` on a :class:`~repro.experiments.spec.ScenarioSpec` runs);
* :mod:`repro.service.http` -- the stdlib asyncio HTTP/1.1 + SSE front
  end ``repro serve`` binds (no third-party dependencies);
* :mod:`repro.service.app` -- an optional FastAPI adapter, import-gated
  behind the ``repro[service]`` extra.
"""

from repro.service.auth import ApiKeyRegistry, derive_key
from repro.service.gateway import (
    ACCEPTED,
    OVERLOADED,
    RATE_LIMITED,
    UNAUTHORIZED,
    DeliveryEvent,
    OrderingGateway,
    SubmitOutcome,
    Subscription,
)
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.spec import ServiceSpec
from repro.service.workload import ServiceWorkload

__all__ = [
    "ACCEPTED",
    "OVERLOADED",
    "RATE_LIMITED",
    "UNAUTHORIZED",
    "ApiKeyRegistry",
    "DeliveryEvent",
    "OrderingGateway",
    "RateLimiter",
    "ServiceSpec",
    "ServiceWorkload",
    "SubmitOutcome",
    "Subscription",
    "TokenBucket",
    "derive_key",
]
