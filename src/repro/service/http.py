"""The dependency-free HTTP/1.1 + SSE front end of the gateway.

``repro serve`` binds this server; it speaks just enough HTTP for the
service's four endpoints and streams the delivery feed as server-sent
events, using nothing beyond the standard library (the optional FastAPI
adapter in :mod:`repro.service.app` offers the same surface for
deployments that install the ``repro[service]`` extra).

Endpoints (all JSON):

* ``GET /healthz`` -- liveness, no auth;
* ``GET /metrics`` -- Prometheus text exposition of the run's
  :mod:`repro.obs` registry, no auth (404 when observability is off);
* ``GET /v1/status`` -- the gateway's counters and per-shard cursors;
* ``POST /v1/submit`` -- body ``{"payload": ..., "key": "k-3"}``;
  responds 202 with the op id and owning shard, 401 on a bad key, or
  429 with a ``Retry-After`` header (seconds, rounded up) and an exact
  ``retry_after_ms`` in the body when shed by the rate limiter or the
  inflight cap;
* ``GET /v1/stream`` -- ``text/event-stream``; each event carries
  ``id: <shard>:<seq>`` and the :class:`~repro.service.gateway.
  DeliveryEvent` JSON.  Resume after a reconnect with
  ``?from=<shard>:<seq>[,<shard>:<seq>...]`` or a ``Last-Event-ID``
  header -- every sequenced event after the cursor is replayed before
  live events flow.

Authentication is a bearer token: ``Authorization: Bearer sk-...`` (or
``X-API-Key: sk-...``).  The server runs on the
:class:`~repro.transport.aio.AsyncioClock`'s event loop, so admission
decisions share the clock -- and therefore the exact token-bucket
arithmetic -- with the in-process fleets the test suite audits.
"""

from __future__ import annotations

import asyncio
import json
import math
import typing
import urllib.parse

from repro.service.gateway import DeliveryEvent, OrderingGateway

if typing.TYPE_CHECKING:
    from repro.transport.aio import AsyncioClock

MAX_REQUEST_BYTES = 1 << 20  # 1 MiB: far beyond any legitimate submit
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
}


class _BadRequest(Exception):
    """Malformed HTTP or JSON; the handler answers 400 and closes."""


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def api_key(self) -> str | None:
        auth = self.headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return self.headers.get("x-api-key")

    def json(self) -> typing.Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the wire; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]
    parsed = urllib.parse.urlsplit(target)
    query = dict(urllib.parse.parse_qsl(parsed.query))
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_REQUEST_BYTES:
            raise _BadRequest("headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_REQUEST_BYTES:
        raise _BadRequest("body too large")
    body = await reader.readexactly(length) if length else b""
    return Request(method, parsed.path, query, headers, body)


def render_response(
    status: int,
    payload: typing.Any,
    extra_headers: typing.Sequence[tuple[str, str]] = (),
) -> bytes:
    """One complete JSON response, ready to write."""
    body = json.dumps(payload).encode()
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    lines.append("\r\n")
    return "\r\n".join(lines).encode() + body


def render_text_response(status: int, text: str, content_type: str) -> bytes:
    """One complete plain-text response (the ``/metrics`` exposition)."""
    body = text.encode()
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "\r\n",
    ]
    return "\r\n".join(lines).encode() + body


def format_sse(event: DeliveryEvent) -> bytes:
    """One delivery as a server-sent event (id = ``shard:seq``)."""
    data = json.dumps(event.to_dict())
    return f"id: {event.shard}:{event.seq}\ndata: {data}\n\n".encode()


def parse_cursors(request: Request) -> dict[int, int]:
    """The resume cursors of a stream request.

    ``?from=0:12,1:7`` wins; a ``Last-Event-ID: <shard>:<seq>`` header
    (what an SSE client replays automatically) seeds a single shard.
    """
    spec = request.query.get("from")
    if spec is None:
        spec = request.headers.get("last-event-id")
    if not spec:
        return {}
    cursors: dict[int, int] = {}
    for part in spec.split(","):
        shard_s, _, seq_s = part.strip().partition(":")
        try:
            cursors[int(shard_s)] = int(seq_s)
        except ValueError as exc:
            raise _BadRequest(f"bad cursor {part!r}") from exc
    return cursors


class ServiceHttpServer:
    """The asyncio server wiring the four endpoints to a gateway."""

    def __init__(
        self,
        clock: "AsyncioClock",
        gateway: OrderingGateway | None,
        host: str = "127.0.0.1",
        port: int = 0,
        hub: typing.Any = None,
    ) -> None:
        self.clock = clock
        #: May start ``None`` (a metrics-only server on an audit run
        #: that has no service workload) and be assigned later; the
        #: ``/v1/*`` routes 404 while it is absent.
        self.gateway = gateway
        #: The run's :class:`repro.obs.spans.ObsHub`, when observability
        #: is on -- serves ``GET /metrics`` in Prometheus text format.
        self.hub = hub
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._active = 0
        clock.add_idle_check(lambda: self._active == 0)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._accept, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Hand the connection to a clock-tracked service task so open
        # connections (idle keep-alives, SSE streams) are cancelled
        # cleanly when the run concludes instead of leaking.
        self.clock.spawn(self._handle(reader, writer))

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._active += 1
        try:
            while True:
                try:
                    request = await read_request(reader)
                except _BadRequest as exc:
                    writer.write(render_response(400, {"error": str(exc)}))
                    break
                if request is None:
                    break
                try:
                    streaming = await self._dispatch(request, writer)
                except _BadRequest as exc:
                    writer.write(render_response(400, {"error": str(exc)}))
                    streaming = False
                if streaming:
                    return  # _stream owns the connection now
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            self._active -= 1
            writer.close()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one request; True when the connection became a stream."""
        route = (request.method, request.path)
        if request.path == "/healthz":
            if request.method != "GET":
                writer.write(render_response(405, {"error": "method not allowed"}))
                return False
            writer.write(
                render_response(
                    200, {"status": "ok", "now_ms": round(self.clock.now, 3)}
                )
            )
            return False
        if request.path == "/metrics":
            # Unauthenticated, like /healthz: the exposition carries no
            # client data and a scraper should not need an API key.
            if request.method != "GET":
                writer.write(render_response(405, {"error": "method not allowed"}))
                return False
            if self.hub is None:
                writer.write(
                    render_response(404, {"error": "observability disabled"})
                )
                return False
            from repro.obs.prom import CONTENT_TYPE, render

            writer.write(
                render_text_response(200, render(self.hub.registry), CONTENT_TYPE)
            )
            return False
        if request.path not in ("/v1/submit", "/v1/status", "/v1/stream"):
            writer.write(render_response(404, {"error": f"no route {request.path}"}))
            return False
        if self.gateway is None:
            writer.write(render_response(404, {"error": "no gateway on this run"}))
            return False
        client = self.gateway.registry.authenticate(request.api_key())
        if client is None and request.path != "/v1/submit":
            # /v1/submit flows through gateway.submit so the rejection
            # is counted exactly once, by the gateway itself.
            writer.write(render_response(401, {"error": "unauthorized"}))
            return False
        if route == ("POST", "/v1/submit"):
            self._submit(request, writer)
            return False
        if route == ("GET", "/v1/status"):
            writer.write(render_response(200, self.gateway.status()))
            return False
        if route == ("GET", "/v1/stream"):
            await self._stream(request, writer)
            return True
        writer.write(render_response(405, {"error": "method not allowed"}))
        return False

    def _submit(self, request: Request, writer: asyncio.StreamWriter) -> None:
        document = request.json()
        if not isinstance(document, dict):
            raise _BadRequest("body must be a JSON object")
        key = document.get("key")
        if key is not None and not isinstance(key, str):
            raise _BadRequest("key must be a string")
        outcome = self.gateway.submit(
            request.api_key(), payload=document.get("payload"), key=key
        )
        headers: list[tuple[str, str]] = []
        if outcome.retry_after_ms is not None:
            headers.append(
                ("Retry-After", str(max(1, math.ceil(outcome.retry_after_ms / 1000.0))))
            )
        writer.write(render_response(outcome.status, outcome.to_dict(), headers))

    async def _stream(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        cursors = parse_cursors(request)
        queue: asyncio.Queue[DeliveryEvent] = asyncio.Queue()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"\r\n"
            b"retry: 1000\n\n"
        )
        try:
            subscription = self.gateway.subscribe(queue.put_nowait, from_seq=cursors)
        except ValueError as exc:  # cursor ahead of the feed
            writer.write(f"event: error\ndata: {json.dumps(str(exc))}\n\n".encode())
            writer.close()
            return
        try:
            while True:
                event = await queue.get()
                writer.write(format_sse(event))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            subscription.close()
            writer.close()
