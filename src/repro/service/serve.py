"""The ``repro serve`` runtime: a live gateway on a real socket.

Builds the deployment a :class:`~repro.experiments.spec.ScenarioSpec`
describes -- on the asyncio transport, optionally sharded, optionally
over localhost TCP -- puts an :class:`~repro.service.gateway.
OrderingGateway` in front of it, binds the stdlib HTTP/SSE server from
:mod:`repro.service.http`, prints the fleet's derived API keys, and
runs until interrupted.  See docs/SERVICE.md for the operator guide.
"""

from __future__ import annotations

import typing

from repro.service.gateway import OrderingGateway
from repro.service.http import ServiceHttpServer
from repro.service.spec import ServiceSpec

if typing.TYPE_CHECKING:
    from repro.experiments.spec import ScenarioSpec


class ServeHandle:
    """What :func:`build_server` assembled, ready to run or inspect."""

    def __init__(self, transport, gateway, server) -> None:
        self.transport = transport
        self.clock = transport.clock
        self.gateway = gateway
        self.server = server

    def run_forever(self) -> None:
        """Serve until interrupted (no quiescence exit: a server idles)."""
        self.clock.add_idle_check(lambda: False)
        try:
            self.clock.run()
        finally:
            self.transport.close()

    def run(self, until_ms: float) -> None:
        """Serve for a bounded virtual window (tests, demos).

        Like :meth:`run_forever`, the server must outlive quiescence
        -- an empty timer heap just means no client has called yet --
        so the idle check keeps the clock alive until the window ends.
        """
        self.clock.add_idle_check(lambda: False)
        try:
            self.clock.run(until=until_ms)
        finally:
            self.transport.close()


def build_server(
    spec: "ScenarioSpec", host: str = "127.0.0.1", port: int = 0
) -> ServeHandle:
    """Assemble transport, group, gateway and HTTP server for a spec.

    The spec must carry a *live* transport (``repro serve`` forces the
    asyncio backend); its ``gateway`` field configures admission
    control (a default :class:`ServiceSpec` when absent).  The server
    is registered as a clock starter, so it binds when the run starts;
    with ``port=0`` the kernel picks a free port, available as
    ``handle.server.port`` after binding.
    """
    # Imported lazily: repro.experiments imports this package's spec.
    from repro.experiments.runner import (
        build_ordering_group,
        build_sharded_group,
        live_overrides,
    )
    from repro.transport import SERVICE_FLOOR_MS, build_transport, calibrate

    if spec.transport is None or not spec.transport.live:
        raise ValueError("repro serve needs a live transport (e.g. --transport asyncio)")
    transport = build_transport(spec.transport, seed=spec.seed)
    clock = transport.clock
    clock.trace.enabled = False
    # Observability rides every served deployment unless the spec
    # explicitly turns it off; install before the group is built so the
    # wrappers/gateway pick their instruments up at construction.
    from repro.experiments.spec import ObsSpec
    from repro.obs import ObsHub, install_hub

    obs_spec = spec.obs if spec.obs is not None else ObsSpec()
    hub = install_hub(clock, ObsHub()) if obs_spec.enabled else None
    calibration = (
        # A server always has the gateway on the loop: use the loaded floor.
        calibrate(tcp=spec.transport.tcp, base_delta_ms=SERVICE_FLOOR_MS)
        if spec.transport.calibrate
        else None
    )
    overrides = dict(live_overrides(spec, calibration))
    if spec.shard is not None:
        group = build_sharded_group(
            clock, spec, transport=transport, overrides=overrides or None
        )
    else:
        overrides["network"] = transport.make_network(default_delay=spec.delay.build())
        group = build_ordering_group(clock, spec, **overrides)
    service_spec = spec.gateway if spec.gateway is not None else ServiceSpec()
    gateway = OrderingGateway(clock, group, service_spec, service=spec.service)
    if hub is not None and calibration is not None:
        hub.calibrated_delta_ms.set(calibration.delta_ms)
    server = ServiceHttpServer(clock, gateway, host=host, port=port, hub=hub)
    clock.add_starter(server.start)
    return ServeHandle(transport, gateway, server)


def describe(handle: ServeHandle) -> str:
    """The operator banner ``repro serve`` prints: endpoints and keys."""
    gateway = handle.gateway
    spec = gateway.spec
    lines = [
        f"ordering service: {gateway.shards} shard(s), "
        f"{len(gateway.group.member_ids)} members",
        f"admission: {spec.rate_limit_per_s:g} ops/s/client (burst {spec.burst}), "
        f"inflight cap {spec.max_inflight}",
        "endpoints: POST /v1/submit  GET /v1/stream  GET /v1/status  "
        "GET /metrics  GET /healthz",
        "api keys:",
    ]
    for client_id in gateway.registry.client_ids:
        lines.append(f"  {client_id}: {gateway.registry.key_of(client_id)}")
    return "\n".join(lines)
