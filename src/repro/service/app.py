"""Optional FastAPI adapter over the gateway.

The canonical front end is the dependency-free server in
:mod:`repro.service.http`; this module offers the same four endpoints
as a FastAPI application for deployments that want the usual ASGI
ecosystem (OpenAPI docs, middleware, uvicorn workers).  FastAPI is an
*optional* extra -- ``pip install repro[service]`` -- and this module
import-gates it: importing :func:`create_app` is always safe, calling
it without the extra raises an informative :class:`ImportError`.

The SSE stream is served from the gateway's subscription feed exactly
like the stdlib server: replay from the ``from`` cursor, then live
events, each carrying ``id: <shard>:<seq>``.
"""

from __future__ import annotations

import json
import math
import typing

from repro.service.gateway import OrderingGateway

_INSTALL_HINT = (
    "FastAPI is not installed; the service extra is optional. "
    "Install it with `pip install repro[service]` (fastapi + uvicorn + httpx), "
    "or use the dependency-free stdlib server: `repro serve` binds "
    "repro.service.http.ServiceHttpServer and needs no extras."
)


def create_app(gateway: OrderingGateway) -> typing.Any:
    """A FastAPI application serving the gateway's four endpoints.

    Raises :class:`ImportError` with install instructions when the
    ``repro[service]`` extra is not installed.
    """
    try:
        import fastapi
        from fastapi import responses
    except ImportError as exc:  # pragma: no cover - extra not installed in CI
        raise ImportError(_INSTALL_HINT) from exc

    app = fastapi.FastAPI(title="fs-newtop ordering service", version="1.0")

    def client_of(request: fastapi.Request) -> str | None:
        auth = request.headers.get("authorization", "")
        key = auth[7:].strip() if auth.lower().startswith("bearer ") else None
        key = key or request.headers.get("x-api-key")
        return gateway.registry.authenticate(key)

    def require_auth(request: fastapi.Request) -> str:
        client = client_of(request)
        if client is None:
            raise fastapi.HTTPException(status_code=401, detail="unauthorized")
        return client

    @app.get("/healthz")
    def healthz() -> dict:
        return {"status": "ok", "now_ms": round(gateway.sim.now, 3)}

    @app.get("/v1/status")
    def status(request: fastapi.Request) -> dict:
        require_auth(request)
        return gateway.status()

    @app.post("/v1/submit")
    async def submit(request: fastapi.Request) -> responses.JSONResponse:
        document = await request.json() if await request.body() else {}
        auth = request.headers.get("authorization", "")
        key = auth[7:].strip() if auth.lower().startswith("bearer ") else None
        outcome = gateway.submit(
            key or request.headers.get("x-api-key"),
            payload=document.get("payload"),
            key=document.get("key"),
        )
        headers = {}
        if outcome.retry_after_ms is not None:
            headers["Retry-After"] = str(
                max(1, math.ceil(outcome.retry_after_ms / 1000.0))
            )
        return responses.JSONResponse(
            outcome.to_dict(), status_code=outcome.status, headers=headers
        )

    @app.get("/v1/stream")
    async def stream(request: fastapi.Request) -> responses.StreamingResponse:
        import asyncio

        require_auth(request)
        cursors: dict[int, int] = {}
        spec = request.query_params.get("from") or request.headers.get(
            "last-event-id", ""
        )
        for part in filter(None, spec.split(",")):
            shard_s, _, seq_s = part.strip().partition(":")
            cursors[int(shard_s)] = int(seq_s)
        queue: asyncio.Queue = asyncio.Queue()
        subscription = gateway.subscribe(queue.put_nowait, from_seq=cursors)

        async def events() -> typing.AsyncIterator[bytes]:
            try:
                while True:
                    event = await queue.get()
                    data = json.dumps(event.to_dict())
                    yield f"id: {event.shard}:{event.seq}\ndata: {data}\n\n".encode()
            finally:
                subscription.close()

        return responses.StreamingResponse(events(), media_type="text/event-stream")

    return app
