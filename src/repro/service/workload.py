"""The closed-loop client fleet driving the gateway in-process.

Where :class:`~repro.workloads.ordering.OrderingWorkload` injects the
paper's fixed-rate schedule straight into the group, this workload
models *users*: ``sessions`` independent clients that each submit an
operation through the :class:`~repro.service.gateway.OrderingGateway`,
wait until it comes back sequenced on the delivery feed, think for an
exponentially distributed while, and submit the next -- real arrival
dynamics, so admission control and backpressure are exercised by the
same traffic shape a served deployment sees.  Keys are drawn from a
zipf-skewed popularity distribution (the hot-key regime routers and
shards actually face), rejected submits honour the returned
``Retry-After`` hint, and a handful of streaming subscribers
continuously verify the feed: per-shard sequence numbers must be
gap-free, independent subscribers must agree on every ``(shard, seq)
-> op`` assignment, and a subscriber that reconnects mid-run must
resume from its last acked sequence number without loss.

Everything runs off the abstract clock, so the same fleet drives the
discrete-event simulator and the wall-clock asyncio transport -- and an
audited run feeds the eight invariant oracles exactly as the fixed-rate
workloads do.
"""

from __future__ import annotations

import bisect
import typing

from repro.service.gateway import DeliveryEvent, OrderingGateway
from repro.service.spec import ServiceSpec
from repro.workloads.ordering import OrderingWorkload

if typing.TYPE_CHECKING:
    from repro.transport.base import Clock


def zipf_cdf(keyspace: int, s: float) -> list[float]:
    """Cumulative zipf weights over ``keyspace`` popularity ranks."""
    total = 0.0
    cdf = []
    for rank in range(1, keyspace + 1):
        total += 1.0 / (rank**s)
        cdf.append(total)
    return cdf


class _Session:
    """One closed-loop client: submit, await sequencing, think, repeat."""

    __slots__ = ("index", "api_key", "ops_done", "retries", "done", "gave_up")

    def __init__(self, index: int, api_key: str) -> None:
        self.index = index
        self.api_key = api_key
        self.ops_done = 0
        self.retries = 0  # for the *current* operation
        self.done = False
        self.gave_up = False


class _FeedChecker:
    """One streaming subscriber, continuously verifying the feed."""

    def __init__(self, workload: "ServiceWorkload", index: int) -> None:
        self.workload = workload
        self.index = index
        self.last_seq: dict[int, int] = {}
        self.events = 0
        self.gaps = 0
        self.mismatches = 0
        self.reconnects = 0
        self.subscription = None

    def attach(self) -> None:
        self.subscription = self.workload.gateway.subscribe(
            self.on_event, from_seq=dict(self.last_seq)
        )

    def on_event(self, event: DeliveryEvent) -> None:
        expected = self.last_seq.get(event.shard, 0) + 1
        if event.seq != expected:
            self.gaps += 1
        self.last_seq[event.shard] = event.seq
        reference = self.workload._feed_reference.setdefault(
            (event.shard, event.seq), event.op_id
        )
        if reference != event.op_id:
            self.mismatches += 1
        self.events += 1
        every = self.workload.service_spec.reconnect_every
        if every and self.events % every == 0:
            self.workload._schedule_reconnect(self)

    def reconnect(self) -> None:
        if self.subscription is not None:
            self.subscription.close()
        self.reconnects += 1
        self.attach()


class ServiceWorkload(OrderingWorkload):
    """Drives a gateway-fronted group with a closed-loop client fleet."""

    def __init__(
        self,
        sim: "Clock",
        group: typing.Any,
        service_spec: ServiceSpec,
        gateway: OrderingGateway | None = None,
        message_size: int = 3,
        keyspace: int | None = None,
        kv_ops: bool = False,
    ) -> None:
        super().__init__(
            sim,
            group,
            messages_per_member=service_spec.ops_per_session,
            interval=service_spec.think_ms,
            message_size=message_size,
            keyspace=keyspace if keyspace is not None else service_spec.keyspace,
        )
        self.service_spec = service_spec
        #: When the scenario runs the replicated KV application, submits
        #: carry an explicit well-formed ``"op"`` so the stores execute
        #: client-chosen operations instead of synthesised ones.
        self.kv_ops = kv_ops
        self.gateway = (
            gateway if gateway is not None else OrderingGateway(sim, group, service_spec)
        )
        self._rng = sim.rng("service")
        assert self.keys is not None
        self._zipf_cdf = zipf_cdf(len(self.keys), service_spec.zipf_s)
        keys = service_spec.clients
        registry = self.gateway.registry
        self.sessions = [
            _Session(i, registry.key_of(registry.client_ids[i % keys]))
            for i in range(service_spec.sessions)
        ]
        self.checkers = [
            _FeedChecker(self, j) for j in range(service_spec.subscribers)
        ]
        self._awaiting: dict[str, _Session] = {}
        self._feed_reference: dict[tuple[int, int], str] = {}
        self.unauthorized = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, settle_ms: float = 120_000.0) -> None:
        """Start the fleet, run to completion (or the deadline)."""
        self.gateway.on_member_delivery = self._on_member_delivery
        self.gateway.on_sequenced = self._on_sequenced
        for checker in self.checkers:
            checker.attach()
        spec = self.service_spec
        # Stagger arrivals over the ramp window (at least one think
        # window) so the fleet ramps up instead of stampeding the very
        # first millisecond.
        ramp = max(spec.ramp_ms, spec.think_ms)
        for session in self.sessions:
            self.sim.schedule(self._rng.uniform(0.0, ramp), self._submit, session)
        # Both clocks exit early once the fleet drains (heap exhaustion
        # on the simulator, quiescence on asyncio); the deadline is the
        # cap that keeps a stalled closed loop from spinning forever.
        deadline = (
            ramp
            + spec.ops_per_session * spec.think_ms * 3.0
            + spec.sessions * spec.ops_per_session * 20.0
            + settle_ms
        )
        self.sim.run(until=deadline, max_events=200_000_000)

    def _zipf_key(self) -> str:
        assert self.keys is not None
        point = self._rng.random() * self._zipf_cdf[-1]
        return self.keys[bisect.bisect_left(self._zipf_cdf, point)]

    def _submit(self, session: _Session) -> None:
        if session.done:
            return
        spec = self.service_spec
        key = self._zipf_key()
        payload: dict[str, typing.Any] = {
            "s": session.index,
            "n": session.ops_done,
            "b": bytes(self.message_size),
        }
        if self.kv_ops:
            payload["op"] = {
                "t": "put",
                "k": key,
                "v": [session.index, session.ops_done],
            }
        outcome = self.gateway.submit(session.api_key, payload=payload, key=key)
        if outcome.admitted:
            assert outcome.op_id is not None and outcome.shard is not None
            expected = (
                self.group.shard_size(outcome.shard)
                if hasattr(self.group, "shard_size")
                else self.n_members
            )
            self.recorder.sent(outcome.op_id, self.sim.now, expected=expected)
            self._awaiting[outcome.op_id] = session
            session.retries = 0
            return
        if outcome.status == 401:
            self.unauthorized += 1
            session.done = True
            session.gave_up = True
            return
        # 429 (rate-limited or overloaded): honour the retry hint.
        session.retries += 1
        if session.retries > spec.max_retries:
            session.done = True
            session.gave_up = True
            return
        retry_after = outcome.retry_after_ms or spec.retry_after_ms
        jitter = self._rng.uniform(0.0, retry_after * 0.5)
        self.sim.schedule(retry_after + jitter, self._submit, session)

    def _on_member_delivery(self, op_id: str, member: str, at: float) -> None:
        self.recorder.delivered(op_id, member, at)

    def _on_sequenced(self, event: DeliveryEvent) -> None:
        session = self._awaiting.pop(event.op_id, None)
        if session is None:
            return
        session.ops_done += 1
        if session.ops_done >= self.service_spec.ops_per_session:
            session.done = True
            return
        think = self._rng.expovariate(1.0 / self.service_spec.think_ms)
        self.sim.schedule(think, self._submit, session)

    def _schedule_reconnect(self, checker: _FeedChecker) -> None:
        if checker.subscription is not None:
            checker.subscription.close()
        self.sim.schedule(
            2.0 + self._rng.uniform(0.0, 4.0), checker.reconnect
        )

    def _hook_deliveries(self) -> None:  # pragma: no cover - gateway hooks
        raise NotImplementedError("the gateway owns the delivery hooks")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def fail_signal_count(self) -> int:
        if hasattr(self.group, "shard_groups"):
            return sum(
                shard_group.members[m].fs_process.signaled
                for shard_group in self.group.shard_groups
                for m in shard_group.member_ids
            )
        return super().fail_signal_count()

    def service_metrics(self) -> dict[str, float]:
        """Gateway admission metrics plus the fleet/feed verdicts."""
        metrics = self.gateway.service_metrics()
        metrics.update(
            {
                "service_sessions": float(len(self.sessions)),
                "service_sessions_done": float(
                    sum(1 for s in self.sessions if s.done and not s.gave_up)
                ),
                "service_gave_up": float(
                    sum(1 for s in self.sessions if s.gave_up)
                ),
                "service_unauthorized": float(self.unauthorized),
                "service_stream_gaps": float(
                    sum(c.gaps for c in self.checkers)
                ),
                "service_stream_mismatches": float(
                    sum(c.mismatches for c in self.checkers)
                ),
                "service_reconnects": float(
                    sum(c.reconnects for c in self.checkers)
                ),
            }
        )
        return metrics
