"""Per-client token-bucket rate limiting.

Buckets are *clock-driven*: they never schedule anything, they are
refilled lazily from the timestamps the caller passes in (virtual
milliseconds from whichever :class:`~repro.transport.base.Clock` the
run uses).  That keeps admission control identical -- decision for
decision -- between the discrete-event simulator and the wall-clock
asyncio backend, and makes every edge unit-testable without sleeping.
"""

from __future__ import annotations


class TokenBucket:
    """The classic bucket: ``capacity`` tokens, ``rate_per_s`` refill.

    ``try_take`` either admits (returns ``0.0``) or returns the time in
    milliseconds until one token will be available -- the exact
    ``Retry-After`` hint a 429 carries.
    """

    def __init__(self, capacity: int, rate_per_s: float) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        self.capacity = float(capacity)
        self.rate_per_ms = rate_per_s / 1000.0
        self.tokens = float(capacity)
        self._refilled_at = 0.0

    def _refill(self, now_ms: float) -> None:
        elapsed = now_ms - self._refilled_at
        if elapsed > 0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate_per_ms)
            self._refilled_at = now_ms

    def try_take(self, now_ms: float) -> float:
        """Admit one request at ``now_ms``: ``0.0``, or the retry-after
        hint in ms when the bucket is empty."""
        self._refill(now_ms)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate_per_ms

    def available(self, now_ms: float) -> float:
        """Tokens available at ``now_ms`` (refills first)."""
        self._refill(now_ms)
        return self.tokens


class RateLimiter:
    """One :class:`TokenBucket` per client id, created on first use."""

    def __init__(self, capacity: int, rate_per_s: float) -> None:
        self.capacity = capacity
        self.rate_per_s = rate_per_s
        self._buckets: dict[str, TokenBucket] = {}

    def bucket_of(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.capacity, self.rate_per_s)
            self._buckets[client_id] = bucket
        return bucket

    def try_take(self, client_id: str, now_ms: float) -> float:
        """Admit one request for ``client_id``; see
        :meth:`TokenBucket.try_take`."""
        return self.bucket_of(client_id).try_take(now_ms)
