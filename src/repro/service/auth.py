"""API-key authentication for the gateway.

Keys are opaque bearer tokens mapped to client ids.  For simulated
fleets and for ``repro serve`` without an explicit key file, keys are
*derived* deterministically from a seed (HMAC-style digest over the
client id), so a campaign worker, the operator terminal and a test all
agree on the fleet's credentials without shipping a secret store.
Derivation is a convenience, not a security claim -- a deployment
supplies its own keys via :meth:`ApiKeyRegistry.issue`.
"""

from __future__ import annotations

import hashlib


def derive_key(client_id: str, seed: int = 0) -> str:
    """The deterministic API key of ``client_id`` under ``seed``."""
    digest = hashlib.sha256(f"fs-newtop-service/{seed}/{client_id}".encode())
    return f"sk-{digest.hexdigest()[:32]}"


class ApiKeyRegistry:
    """Bearer-token -> client-id lookup with O(1) authentication."""

    def __init__(self) -> None:
        self._by_key: dict[str, str] = {}
        self._by_client: dict[str, str] = {}

    @classmethod
    def generate(cls, clients: int, seed: int = 0) -> "ApiKeyRegistry":
        """A registry of ``clients`` derived keys: ``client-0`` ...;
        the fleet workload and ``repro serve`` both build theirs here."""
        registry = cls()
        for index in range(clients):
            client_id = f"client-{index}"
            registry.issue(client_id, derive_key(client_id, seed))
        return registry

    def issue(self, client_id: str, key: str) -> str:
        """Register (or rotate) ``client_id``'s key; returns the key."""
        if key in self._by_key and self._by_key[key] != client_id:
            raise ValueError(f"key already issued to {self._by_key[key]!r}")
        previous = self._by_client.get(client_id)
        if previous is not None:
            del self._by_key[previous]
        self._by_key[key] = client_id
        self._by_client[client_id] = key
        return key

    def authenticate(self, key: str | None) -> str | None:
        """The client id behind a presented key, or ``None``."""
        if not key:
            return None
        return self._by_key.get(key)

    def key_of(self, client_id: str) -> str:
        return self._by_client[client_id]

    @property
    def client_ids(self) -> list[str]:
        return sorted(self._by_client)

    def __len__(self) -> int:
        return len(self._by_key)
