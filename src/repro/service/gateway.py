"""The client-facing ordering gateway.

An :class:`OrderingGateway` sits between external clients and a running
group (unsharded or :class:`~repro.shard.group.ShardedGroup`) and owns
the three things a served deployment adds to the protocol stack:

* **admission control** -- authenticate the API key, charge the
  client's token bucket, and check the inflight cap, in that order;
  every rejection carries a machine-readable reason and (for 429s) a
  retry hint in milliseconds;
* **injection** -- admitted operations are wrapped in a payload
  envelope (``{"op", "c", "b"[, "k"]}``) and multicast into the
  ordering service from a round-robin member of the key's owning shard,
  so the protocol layers (and therefore the invariant oracles) see
  perfectly ordinary keyed traffic;
* **the delivery feed** -- the gateway observes every member's
  delivered stream; the first member of each shard acts as the
  *sequencer observer*, assigning the shard's delivered-order sequence
  numbers (1, 2, ...).  Total order guarantees every other member of
  that shard delivers the same prefix, so subscribers on different
  members would see identical feeds -- which is exactly what clients
  replay-check.  Subscribers resume from their last acked sequence
  number after a reconnect.

The gateway never schedules anything and stores no live objects beyond
the group it fronts: it is clock-agnostic (sim or asyncio) and safe to
drive from an audited run -- admitted traffic is indistinguishable from
workload traffic to the eight oracles.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.metrics import _percentile
from repro.service.auth import ApiKeyRegistry
from repro.service.ratelimit import RateLimiter
from repro.service.spec import ServiceSpec

if typing.TYPE_CHECKING:
    from repro.transport.base import Clock

#: Machine-readable admission outcomes (``SubmitOutcome.reason``).
ACCEPTED = "accepted"
UNAUTHORIZED = "unauthorized"
RATE_LIMITED = "rate_limited"
OVERLOADED = "overloaded"


@dataclasses.dataclass(frozen=True, slots=True)
class SubmitOutcome:
    """One admission decision, HTTP-shaped but transport-free."""

    status: int  # 202 | 401 | 429
    reason: str  # ACCEPTED / UNAUTHORIZED / RATE_LIMITED / OVERLOADED
    op_id: str | None = None
    client: str | None = None
    shard: int | None = None
    retry_after_ms: float | None = None

    @property
    def admitted(self) -> bool:
        return self.status == 202

    def to_dict(self) -> dict:
        data = {"status": self.status, "reason": self.reason}
        if self.op_id is not None:
            data["op_id"] = self.op_id
        if self.shard is not None:
            data["shard"] = self.shard
        if self.retry_after_ms is not None:
            data["retry_after_ms"] = round(self.retry_after_ms, 3)
        return data


@dataclasses.dataclass(frozen=True, slots=True)
class DeliveryEvent:
    """One sequenced delivery on the feed.

    ``seq`` is the delivered-order position within ``shard`` (1-based,
    gap-free per shard); clients verify total order end-to-end by
    checking the (shard, seq) stream they receive is gapless and that
    independent subscribers agree on the ``seq -> op_id`` mapping.
    """

    seq: int
    shard: int
    op_id: str
    client: str
    key: str | None
    submitted_at: float
    delivered_at: float

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "shard": self.shard,
            "op_id": self.op_id,
            "client": self.client,
            "key": self.key,
            "submitted_at": round(self.submitted_at, 3),
            "delivered_at": round(self.delivered_at, 3),
        }


@dataclasses.dataclass(slots=True)
class _PendingOp:
    op_id: str
    client: str
    key: str | None
    shard: int
    submitted_at: float


class Subscription:
    """One feed consumer; tracks its per-shard cursor for resumption."""

    def __init__(
        self,
        gateway: "OrderingGateway",
        callback: typing.Callable[[DeliveryEvent], None],
    ) -> None:
        self._gateway = gateway
        self.callback = callback
        self.cursors: dict[int, int] = {}
        self.events_seen = 0
        self.closed = False

    def push(self, event: DeliveryEvent) -> None:
        if self.closed:
            return
        self.cursors[event.shard] = event.seq
        self.events_seen += 1
        self.callback(event)

    def close(self) -> None:
        """Detach from the feed; the cursors survive for resumption."""
        if not self.closed:
            self.closed = True
            self._gateway._drop_subscription(self)


class OrderingGateway:
    """Admission control plus the sequenced delivery feed, one group."""

    def __init__(
        self,
        sim: "Clock",
        group: typing.Any,
        spec: ServiceSpec | None = None,
        registry: ApiKeyRegistry | None = None,
        service: str = "symmetric_total",
    ) -> None:
        self.sim = sim
        self.group = group
        self.spec = spec if spec is not None else ServiceSpec()
        self.registry = (
            registry
            if registry is not None
            else ApiKeyRegistry.generate(self.spec.clients, seed=self.spec.key_seed)
        )
        self.limiter = RateLimiter(self.spec.burst, self.spec.rate_limit_per_s)
        self.service = service
        # -- shard topology ------------------------------------------------
        if hasattr(group, "shard_groups"):  # ShardedGroup facade
            self._shard_members: list[list[str]] = [
                list(g.member_ids) for g in group.shard_groups
            ]
            self._shard_of = {
                member: shard
                for shard, members in enumerate(self._shard_members)
                for member in members
            }
            self._router = group.router
        else:
            self._shard_members = [list(group.member_ids)]
            self._shard_of = {m: 0 for m in group.member_ids}
            self._router = None
        self._observers = {members[0] for members in self._shard_members}
        self._rr = [0] * len(self._shard_members)
        self._rr_shard = 0
        # -- feed state ----------------------------------------------------
        self._pending: dict[str, _PendingOp] = {}
        self._next_op = 0
        self._next_seq = [0] * len(self._shard_members)
        self.logs: list[list[DeliveryEvent]] = [[] for _ in self._shard_members]
        self._subscriptions: list[Subscription] = []
        #: Optional observer of *every* member-level delivery of a
        #: gateway op -- the fleet workload's latency recorder hook.
        self.on_member_delivery: typing.Callable[[str, str, float], None] | None = None
        #: Optional observer of sequenced events (fires once per op,
        #: at its shard observer's delivery) -- session completion hook.
        self.on_sequenced: typing.Callable[[DeliveryEvent], None] | None = None
        # -- counters ------------------------------------------------------
        self.admitted = 0
        self.sequenced = 0
        self.rejected_auth = 0
        self.rejected_rate = 0
        self.rejected_overload = 0
        self.inflight_peak = 0
        self.stream_events = 0
        self._latencies: list[float] = []
        # Live observability: no-ops unless a hub rides the clock.
        from repro.obs.spans import hub_of

        hub = hub_of(sim)
        self._obs_admission = {
            outcome: hub.admission(outcome)
            for outcome in (ACCEPTED, UNAUTHORIZED, RATE_LIMITED, OVERLOADED)
        }
        self._obs_submit = hub.submit_ms
        self._hook_deliveries()

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._shard_members)

    @property
    def inflight(self) -> int:
        return len(self._pending)

    def shard_of_key(self, key: str | None) -> int:
        """The shard that orders operations on ``key`` (round-robin for
        keyless submits)."""
        if key is not None and self._router is not None:
            return self._router.shards_of((key,))[0]
        shard = self._rr_shard
        self._rr_shard = (shard + 1) % self.shards
        return shard

    def _sender_of(self, shard: int) -> str:
        members = self._shard_members[shard]
        index = self._rr[shard]
        self._rr[shard] = (index + 1) % len(members)
        return members[index]

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def submit(
        self,
        api_key: str | None,
        payload: typing.Any = None,
        key: str | None = None,
    ) -> SubmitOutcome:
        """Admit (or shed) one client operation.

        Admission order is auth -> rate limit -> inflight cap, so an
        unauthenticated flood can never exhaust a client's bucket and a
        rate-limited client can never consume inflight headroom.
        """
        client = self.registry.authenticate(api_key)
        if client is None:
            self.rejected_auth += 1
            self._obs_admission[UNAUTHORIZED].inc()
            return SubmitOutcome(status=401, reason=UNAUTHORIZED)
        retry_after = self.limiter.try_take(client, self.sim.now)
        if retry_after > 0:
            self.rejected_rate += 1
            self._obs_admission[RATE_LIMITED].inc()
            return SubmitOutcome(
                status=429,
                reason=RATE_LIMITED,
                client=client,
                retry_after_ms=retry_after,
            )
        if len(self._pending) >= self.spec.max_inflight:
            self.rejected_overload += 1
            self._obs_admission[OVERLOADED].inc()
            return SubmitOutcome(
                status=429,
                reason=OVERLOADED,
                client=client,
                retry_after_ms=self.spec.retry_after_ms,
            )
        shard = self.shard_of_key(key)
        op_id = f"op-{self._next_op:08d}"
        self._next_op += 1
        now = self.sim.now
        self._pending[op_id] = _PendingOp(op_id, client, key, shard, now)
        self.admitted += 1
        self._obs_admission[ACCEPTED].inc()
        if len(self._pending) > self.inflight_peak:
            self.inflight_peak = len(self._pending)
        value: dict = {"op": op_id, "c": client, "b": payload}
        if key is not None:
            value["k"] = key
        self.group.multicast(self._sender_of(shard), self.service, value)
        return SubmitOutcome(
            status=202, reason=ACCEPTED, op_id=op_id, client=client, shard=shard
        )

    # ------------------------------------------------------------------
    # the delivery feed
    # ------------------------------------------------------------------
    def _hook_deliveries(self) -> None:
        for member, point in self._delivery_points().items():
            point.on_deliver = self._delivery_hook(member, point.on_deliver)

    def _delivery_points(self) -> dict[str, typing.Any]:
        """Per-member objects carrying the ``on_deliver`` hook: the
        post-holdback barrier agents of a sharded group, else the
        invocation layers."""
        group = self.group
        if hasattr(group, "agents"):
            return {m: group.agents[m] for m in group.member_ids}
        if hasattr(group, "members"):  # ByzantineTolerantGroup
            return {m: group.members[m].invocation for m in group.member_ids}
        return {m: group.nsos[m].invocation for m in group.member_ids}

    def _delivery_hook(self, member: str, previous):
        def hook(message) -> None:
            value = message.value
            if isinstance(value, dict) and "op" in value:
                self._on_delivery(member, value["op"], message.delivered_at)
            if previous is not None:
                previous(message)

        return hook

    def _on_delivery(self, member: str, op_id: str, delivered_at: float) -> None:
        if self.on_member_delivery is not None:
            self.on_member_delivery(op_id, member, delivered_at)
        if member not in self._observers:
            return
        pending = self._pending.pop(op_id, None)
        if pending is None:
            return  # duplicate observer delivery, or an op of another gateway
        shard = self._shard_of[member]
        self._next_seq[shard] += 1
        event = DeliveryEvent(
            seq=self._next_seq[shard],
            shard=shard,
            op_id=op_id,
            client=pending.client,
            key=pending.key,
            submitted_at=pending.submitted_at,
            delivered_at=delivered_at,
        )
        self.logs[shard].append(event)
        self.sequenced += 1
        latency = delivered_at - pending.submitted_at
        self._latencies.append(latency)
        self._obs_submit.observe(latency)
        if self.on_sequenced is not None:
            self.on_sequenced(event)
        for subscription in list(self._subscriptions):
            self.stream_events += 1
            subscription.push(event)

    def subscribe(
        self,
        callback: typing.Callable[[DeliveryEvent], None],
        from_seq: dict[int, int] | None = None,
    ) -> Subscription:
        """Attach a feed consumer.

        ``from_seq`` maps shard -> last acked sequence number; every
        logged event after that cursor is replayed synchronously before
        live events flow, so a reconnecting subscriber resumes gap-free.
        """
        subscription = Subscription(self, callback)
        if from_seq:
            subscription.cursors.update(from_seq)
        for shard, log in enumerate(self.logs):
            cursor = (from_seq or {}).get(shard, 0)
            if cursor > self._next_seq[shard]:
                raise ValueError(
                    f"cannot resume shard {shard} from seq {cursor}: only "
                    f"{self._next_seq[shard]} events were sequenced"
                )
            for event in log[cursor:]:
                self.stream_events += 1
                subscription.push(event)
        self._subscriptions.append(subscription)
        return subscription

    def _drop_subscription(self, subscription: Subscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """The ``GET /v1/status`` document."""
        ordered = sorted(self._latencies)
        return {
            "now_ms": round(self.sim.now, 3),
            "shards": self.shards,
            "members": len(self._shard_of),
            "inflight": self.inflight,
            "max_inflight": self.spec.max_inflight,
            "admitted": self.admitted,
            "sequenced": self.sequenced,
            "rejected": {
                "auth": self.rejected_auth,
                "rate_limited": self.rejected_rate,
                "overloaded": self.rejected_overload,
            },
            "latency_ms": {
                "p50": round(_percentile(ordered, 0.5), 3) if ordered else 0.0,
                "p99": round(_percentile(ordered, 0.99), 3) if ordered else 0.0,
                "p999": round(_percentile(ordered, 0.999), 3) if ordered else 0.0,
            },
            "next_seq": {
                str(shard): seq for shard, seq in enumerate(self._next_seq)
            },
            "subscribers": len(self._subscriptions),
            "clients": len(self.registry),
        }

    def service_metrics(self) -> dict[str, float]:
        """Flat metrics for the experiment runner / ``repro report``."""
        rejected = self.rejected_auth + self.rejected_rate + self.rejected_overload
        ordered = sorted(self._latencies)
        return {
            "service_admitted": float(self.admitted),
            "service_sequenced": float(self.sequenced),
            "service_rejected": float(rejected),
            "service_rejected_auth": float(self.rejected_auth),
            "service_rejected_rate": float(self.rejected_rate),
            "service_rejected_overload": float(self.rejected_overload),
            "service_inflight_peak": float(self.inflight_peak),
            "service_stream_events": float(self.stream_events),
            "service_submit_p50_ms": _percentile(ordered, 0.5) if ordered else 0.0,
            "service_submit_p99_ms": _percentile(ordered, 0.99) if ordered else 0.0,
            "service_submit_p999_ms": _percentile(ordered, 0.999) if ordered else 0.0,
        }
