"""Pluggable transports: one protocol stack, two clocks.

The protocol objects (FS wrappers, ORBs, group assemblies) talk to a
structural :class:`~repro.transport.base.Clock` and move messages
through a :class:`~repro.net.network.Network`; a
:class:`~repro.transport.base.Transport` bundles a concrete clock with
its network factory.  :func:`build_transport` turns the declarative
:class:`~repro.experiments.spec.TransportSpec` into the right bundle:

* ``sim`` -- :class:`~repro.transport.sim.SimTransport`, the
  discrete-event simulator (byte-identical to driving it directly);
* ``asyncio`` -- :class:`~repro.transport.aio.AsyncioTransport`,
  wall-clock timers over an event loop, per-member delivery queues and
  an optional localhost TCP hop, with
  :func:`~repro.transport.calibration.calibrate` deriving the live
  detection deadlines from measured host latencies.
"""

from __future__ import annotations

import typing

from repro.transport.base import TRANSPORT_KINDS, Clock, TimerHandle, Transport
from repro.transport.calibration import SERVICE_FLOOR_MS, CalibrationResult, calibrate
from repro.transport.sim import SimTransport

if typing.TYPE_CHECKING:
    from repro.experiments.spec import TransportSpec

__all__ = [
    "TRANSPORT_KINDS",
    "CalibrationResult",
    "SERVICE_FLOOR_MS",
    "Clock",
    "SimTransport",
    "TimerHandle",
    "Transport",
    "build_transport",
    "calibrate",
]


def build_transport(
    spec: "TransportSpec | None" = None, seed: int = 0, codec: str = "canonical"
) -> Transport:
    """Construct the transport a spec describes (``None`` means sim).

    ``codec`` names the TCP framing codec (from the scenario's
    :class:`~repro.crypto.provider.CryptoSpec`); the simulator never
    frames, so it ignores the choice.
    """
    if spec is None or spec.kind == "sim":
        return SimTransport(seed=seed)
    if spec.kind == "asyncio":
        from repro.transport.aio import AsyncioTransport

        return AsyncioTransport(
            seed=seed, tcp=spec.tcp, time_scale=spec.time_scale, codec=codec
        )
    raise ValueError(
        f"unknown transport kind {spec.kind!r}, want one of {TRANSPORT_KINDS}"
    )
