"""Real-time asyncio backend: wall-clock timers, queues and TCP.

This module runs the *unchanged* protocol object graph on an asyncio
event loop:

* :class:`AsyncioClock` -- a wall-clock implementation of the
  :class:`repro.transport.base.Clock` protocol.  Time is milliseconds
  since the run started (optionally scaled); timers live in the same
  ``(deadline, priority, seq)`` heap discipline as the simulator's, so
  everything due at a wakeup fires in deterministic order.
* :class:`AsyncioNetwork` -- a :class:`repro.net.network.Network`
  whose delivery hop goes through a per-member :class:`asyncio.Queue`
  drained by a pump task (or, with ``tcp=True``, through a localhost
  TCP connection speaking the canonical wire codec first).  Delay,
  jitter, FIFO, partitions and drop hooks are inherited: the
  ``DelaySpec``-built models run unchanged, sampling bounded per-link
  delays that are *added* to whatever the host costs.
* :class:`AsyncioTransport` -- the bundle the experiment runner builds
  from a ``TransportSpec``.

Determinism caveat: two wall-clock runs are *not* byte-identical -- the
host schedules them differently.  Equivalence with the simulated run is
checked at the invariant-oracle layer instead
(``tests/transport/test_differential.py``).
"""

from __future__ import annotations

import asyncio
import collections
import heapq
import random
import typing

from repro.net.delay import DelayModel
from repro.net.network import Network
from repro.sim.errors import SchedulingInPastError, SimulationLimitExceeded
from repro.sim.events import Event, EventHandle
from repro.sim.trace import TraceRecorder
from repro.transport.base import Transport
from repro.transport.wire import frame, read_frame, wire_codec


def backoff_delays(
    base_ms: float = 1.0,
    factor: float = 2.0,
    retries: int = 6,
    cap_ms: float = 50.0,
) -> list[float]:
    """The exponential reconnect schedule the TCP peers follow, in ms.

    Pure so the schedule itself is unit-testable without sleeping:
    ``base * factor^i`` capped at ``cap_ms``, one entry per retry.
    """
    if base_ms <= 0 or factor < 1.0 or retries < 0 or cap_ms < base_ms:
        raise ValueError(
            f"bad backoff shape: base={base_ms}, factor={factor}, "
            f"retries={retries}, cap={cap_ms}"
        )
    return [min(cap_ms, base_ms * factor**i) for i in range(retries)]


class AsyncioClock:
    """Wall-clock :class:`~repro.transport.base.Clock` on an event loop.

    ``now`` is milliseconds of (scaled) wall time since :meth:`run`
    first started the loop; before that it is ``0.0``, so construction-
    time scheduling uses absolute times exactly like the simulator.
    ``time_scale`` is wall seconds per virtual second -- ``0.5`` runs a
    scenario's virtual timeline at twice wall speed (host jitter is
    *not* scaled, so aggressive compression narrows real margins).

    Unlike the simulator, :meth:`schedule_at` *clamps* slightly-past
    deadlines to "now" instead of raising: wall time legitimately
    advances between computing a deadline and scheduling it.  Negative
    relative delays remain a logic error.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: TraceRecorder | None = None,
        loop: asyncio.AbstractEventLoop | None = None,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self._seed = seed
        self.trace = trace if trace is not None else TraceRecorder()
        self._loop = loop
        self._owns_loop = False
        self._origin: float | None = None
        self._time_scale = time_scale
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._events_processed = 0
        self._budget: int | None = None
        self._rng_streams: dict[str, random.Random] = {}
        self._wakeup: asyncio.TimerHandle | None = None
        self._wakeup_time: float | None = None
        self._failure: BaseException | None = None
        self._starters: list[typing.Callable[[], typing.Awaitable[None]]] = []
        self._idle_checks: list[typing.Callable[[], bool]] = []
        self._service_tasks: list[asyncio.Task] = []
        #: Wall seconds between the first :meth:`run` entry and the last
        #: :meth:`run` exit -- what "real elapsed" reports.
        self.wall_elapsed_s = 0.0
        #: How late timers fired relative to their deadlines, virtual ms.
        self.timer_lag_count = 0
        self.timer_lag_sum = 0.0
        self.timer_lag_max = 0.0
        #: Live metrics hub (:func:`repro.obs.spans.install_hub`).
        self.obs_hub = None
        #: Wall seconds of sustained quiescence before a run concludes.
        self.idle_grace_s = 0.05
        self._poll_s = 0.002

    # ------------------------------------------------------------------
    # loop plumbing
    # ------------------------------------------------------------------
    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
            self._owns_loop = True
        return self._loop

    def bind(self) -> None:
        """Fix the epoch: virtual 0.0 becomes the loop's current time."""
        if self._origin is None:
            self._origin = self.loop.time()

    def add_starter(
        self, starter: typing.Callable[[], typing.Awaitable[None]]
    ) -> None:
        """Register a coroutine factory started at the top of each run
        (queue pumps, TCP servers)."""
        self._starters.append(starter)

    def add_idle_check(self, check: typing.Callable[[], bool]) -> None:
        """Register a quiescence predicate; a run only concludes early
        when the timer heap is empty *and* every check returns True."""
        self._idle_checks.append(check)

    def spawn(self, coro: typing.Awaitable[None]) -> asyncio.Task:
        """Run a service coroutine for the remainder of the current run
        (cancelled when the run concludes).  Failures fail the run."""
        task = self.loop.create_task(coro)
        task.add_done_callback(self._service_done)
        self._service_tasks.append(task)
        return task

    def _service_done(self, task: asyncio.Task) -> None:
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.fail(exc)

    def fail(self, exc: BaseException) -> None:
        """Record a failure that aborts the current run (first one wins)."""
        if self._failure is None:
            self._failure = exc

    # ------------------------------------------------------------------
    # Clock protocol: time, randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._origin is None:
            return 0.0
        return (self.loop.time() - self._origin) * 1000.0 / self._time_scale

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def time_scale(self) -> float:
        return self._time_scale

    def rng(self, stream: str) -> random.Random:
        existing = self._rng_streams.get(stream)
        if existing is not None:
            return existing
        derived = random.Random(f"{self._seed}/{stream}")
        self._rng_streams[stream] = derived
        return derived

    # ------------------------------------------------------------------
    # Clock protocol: timers
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: typing.Callable[..., None],
        *args: typing.Any,
        priority: int = 0,
    ) -> EventHandle:
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay!r}")
        return self._push(self.now + delay, priority, callback, args)

    def schedule_at(
        self,
        time: float,
        callback: typing.Callable[..., None],
        *args: typing.Any,
        priority: int = 0,
    ) -> EventHandle:
        # Clamp, do not raise: wall time moves under the caller's feet.
        return self._push(max(time, self.now), priority, callback, args)

    def _push(
        self,
        time: float,
        priority: int,
        callback: typing.Callable[..., None],
        args: tuple,
    ) -> Event:
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._rearm()
        return event

    def _rearm(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            if self._wakeup is not None:
                self._wakeup.cancel()
                self._wakeup = None
                self._wakeup_time = None
            return
        if self._origin is None:
            return  # run() arms once the epoch exists
        head = heap[0][0]
        if self._wakeup is not None:
            if self._wakeup_time is not None and self._wakeup_time <= head:
                return  # an earlier (or equal) wakeup already covers it
            self._wakeup.cancel()
        when = self._origin + (head / 1000.0) * self._time_scale
        self._wakeup = self.loop.call_at(when, self._fire_due)
        self._wakeup_time = head

    def _fire_due(self) -> None:
        self._wakeup = None
        self._wakeup_time = None
        heap = self._heap
        while heap and self._failure is None:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            now = self.now
            if entry[0] > now:
                break
            heapq.heappop(heap)
            lag = now - event.time
            self.timer_lag_count += 1
            self.timer_lag_sum += lag
            if lag > self.timer_lag_max:
                self.timer_lag_max = lag
            if self.obs_hub is not None:
                self.obs_hub.timer_lag_ms.observe(lag)
            self._events_processed += 1
            if self._budget is not None and self._events_processed > self._budget:
                self.fail(
                    SimulationLimitExceeded(
                        f"processed {self._events_processed} events; "
                        f"likely a non-terminating protocol loop"
                    )
                )
                return
            try:
                event.callback(*event.args)
            except BaseException as exc:  # surfaced by run()
                self.fail(exc)
                return
        self._rearm()

    # ------------------------------------------------------------------
    # Clock protocol: execution
    # ------------------------------------------------------------------
    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """Drive the loop until ``until`` virtual ms, or quiescence.

        Quiescence -- no live timers and every registered idle check
        passing, sustained for ``idle_grace_s`` of wall time -- ends the
        run early, so a scenario with a generous settle window does not
        sleep through it on the wall clock.
        """
        loop = self.loop
        self.bind()
        self._budget = (
            None if max_events is None else self._events_processed + max_events
        )
        self._rearm()
        started_at = loop.time()
        try:
            loop.run_until_complete(self._supervise(until))
        finally:
            self.wall_elapsed_s += loop.time() - started_at
        if self._failure is not None:
            failure = self._failure
            self._failure = None
            raise failure

    async def _supervise(self, until: float | None) -> None:
        for starter in self._starters:
            self.spawn(starter())
        idle_since: float | None = None
        try:
            while True:
                if self._failure is not None:
                    return
                if until is not None and self.now >= until:
                    return
                if self._quiescent():
                    if idle_since is None:
                        idle_since = self.loop.time()
                    elif self.loop.time() - idle_since >= self.idle_grace_s:
                        return
                else:
                    idle_since = None
                await asyncio.sleep(self._poll_s)
        finally:
            tasks, self._service_tasks = self._service_tasks, []
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    def _quiescent(self) -> bool:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if heap:
            return False
        return all(check() for check in self._idle_checks)

    @property
    def timer_lag_mean(self) -> float:
        if not self.timer_lag_count:
            return 0.0
        return self.timer_lag_sum / self.timer_lag_count

    def close(self) -> None:
        if self._owns_loop and self._loop is not None and not self._loop.is_closed():
            self._loop.close()


class AsyncioNetwork(Network):
    """The stock network with an asyncio-native delivery hop.

    Delay sampling, FIFO clamping, partitions and drop hooks all run in
    the inherited :meth:`~repro.net.network.Network.send`; only the
    final hop differs.  Once a message's (virtual) delivery time
    arrives, it is enqueued on the destination member's
    :class:`asyncio.Queue` and handed to the endpoint by that member's
    pump task -- or, with ``tcp=True``, first crosses a localhost TCP
    connection as a wire-codec frame (``codec`` selects canonical or
    binwire; both ends of a run share one spec, so they always agree)
    and is enqueued by the destination's frame server.
    """

    def __init__(
        self,
        clock: AsyncioClock,
        default_delay: DelayModel | None = None,
        fifo: bool = True,
        name: str = "net",
        tcp: bool = False,
        codec: str = "canonical",
    ) -> None:
        super().__init__(clock, default_delay=default_delay, fifo=fifo, name=name)
        self.tcp = tcp
        self.codec = codec
        self._encode, self._decode = wire_codec(codec)
        self._clock = clock
        self._queues: dict[str, asyncio.Queue] = {}
        self._servers: dict[str, asyncio.base_events.Server] = {}
        self._ports: dict[str, int] = {}
        self._peers: dict[str, _TcpPeer] = {}
        self._conn_tasks: list[asyncio.Task] = []
        #: Messages past their delivery time but not yet handed to an
        #: endpoint (queued, on a socket, or in a pump's hands); the
        #: clock must not conclude quiescence while any are in transit.
        self._transit = 0
        clock.add_starter(self._start)
        clock.add_idle_check(self._idle)

    # -- wiring --------------------------------------------------------
    def register(self, address: str, endpoint) -> None:
        super().register(address, endpoint)
        if address not in self._queues:
            self._queues[address] = asyncio.Queue()

    def _idle(self) -> bool:
        if self._transit:
            return False
        return all(queue.empty() for queue in self._queues.values())

    async def _start(self) -> None:
        if self.tcp:
            for address in list(self._queues):
                if address not in self._servers:
                    server = await asyncio.start_server(
                        self._on_connection, host="127.0.0.1", port=0
                    )
                    self._servers[address] = server
                    self._ports[address] = server.sockets[0].getsockname()[1]
        for address in list(self._queues):
            self._clock.spawn(self._pump(address))

    # -- delivery ------------------------------------------------------
    def _deliver(self, envelope) -> None:
        if envelope.dst not in self._queues:
            self.stats.messages_dropped += 1
            return
        self._transit += 1
        if self.tcp:
            self._peer(envelope.dst).send(self._encode(envelope))
        else:
            self._queues[envelope.dst].put_nowait(envelope)

    async def _pump(self, address: str) -> None:
        queue = self._queues[address]
        while True:
            envelope = await queue.get()
            try:
                endpoint = self._endpoints.get(envelope.dst)
                if endpoint is None:
                    self.stats.messages_dropped += 1
                else:
                    self.stats.messages_delivered += 1
                    endpoint.deliver(envelope)
            finally:
                self._transit -= 1

    # -- TCP hop -------------------------------------------------------
    def _peer(self, dst: str) -> "_TcpPeer":
        peer = self._peers.get(dst)
        if peer is None:
            peer = _TcpPeer(self, dst)
            self._peers[dst] = peer
        return peer

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Inbound connections must outlive a single clock run -- a
        # workload calls run() repeatedly and the client side keeps its
        # connection across those calls -- so handlers are tracked here
        # and cancelled at network close(), not at run teardown.
        task = self._clock.loop.create_task(self._serve(reader, writer))
        task.add_done_callback(self._conn_done)
        self._conn_tasks.append(task)

    def _conn_done(self, task: asyncio.Task) -> None:
        if not task.cancelled():
            exc = task.exception()
            if exc is not None:
                self._clock.fail(exc)

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                data = await read_frame(reader)
                if data is None:
                    return
                envelope = self._decode(data)
                queue = self._queues.get(envelope.dst)
                if queue is None:
                    self.stats.messages_dropped += 1
                    self._transit -= 1
                else:
                    queue.put_nowait(envelope)
        finally:
            writer.close()

    async def port_of(self, address: str) -> int:
        """The frame server port of an address, once servers are up."""
        while address not in self._ports:
            if address not in self._queues:
                raise KeyError(f"no endpoint registered at {address!r}")
            await asyncio.sleep(0.001)
        return self._ports[address]

    def close(self) -> None:
        for peer in self._peers.values():
            peer.close()
        self._peers.clear()
        for server in self._servers.values():
            server.close()
        self._servers.clear()
        self._ports.clear()
        tasks = [task for task in self._conn_tasks if not task.done()]
        self._conn_tasks.clear()
        for task in tasks:
            task.cancel()
        loop = self._clock._loop
        if tasks and loop is not None and not loop.is_closed() and not loop.is_running():
            loop.run_until_complete(asyncio.gather(*tasks, return_exceptions=True))


class _TcpPeer:
    """One outbound connection (lazily opened, retried with backoff)."""

    def __init__(self, network: AsyncioNetwork, dst: str) -> None:
        self.network = network
        self.dst = dst
        self.outbound: collections.deque[bytes] = collections.deque()
        self._writer: asyncio.StreamWriter | None = None
        self._task: asyncio.Task | None = None

    def send(self, payload: bytes) -> None:
        self.outbound.append(frame(payload))
        if self._task is None or self._task.done():
            self._task = self.network._clock.spawn(self._drain())

    async def _drain(self) -> None:
        writer = await self._connect()
        while self.outbound:
            while self.outbound:
                writer.write(self.outbound.popleft())
            await writer.drain()

    async def _connect(self) -> asyncio.StreamWriter:
        if self._writer is not None and not self._writer.is_closing():
            return self._writer
        port = await self.network.port_of(self.dst)
        last_error: OSError | None = None
        delays = backoff_delays()
        for attempt, delay_ms in enumerate(delays):
            try:
                _reader, writer = await asyncio.open_connection("127.0.0.1", port)
                self._writer = writer
                return writer
            except OSError as exc:
                last_error = exc
                if attempt + 1 < len(delays):
                    await asyncio.sleep(delay_ms / 1000.0)
        raise ConnectionError(
            f"cannot reach {self.dst!r} on 127.0.0.1:{port} "
            f"after {len(delays)} attempts"
        ) from last_error

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


class AsyncioTransport(Transport):
    """Wall-clock transport: an :class:`AsyncioClock` plus its networks."""

    kind = "asyncio"

    def __init__(
        self,
        seed: int = 0,
        trace: TraceRecorder | None = None,
        tcp: bool = False,
        time_scale: float = 1.0,
        loop: asyncio.AbstractEventLoop | None = None,
        codec: str = "canonical",
    ) -> None:
        super().__init__(
            AsyncioClock(seed=seed, trace=trace, loop=loop, time_scale=time_scale)
        )
        self.tcp = tcp
        self.codec = codec
        self._networks: list[AsyncioNetwork] = []

    @property
    def aio_clock(self) -> AsyncioClock:
        return self.clock  # type: ignore[return-value]

    def make_network(
        self,
        default_delay: DelayModel | None = None,
        name: str = "net",
    ) -> AsyncioNetwork:
        network = AsyncioNetwork(
            self.aio_clock,
            default_delay=default_delay,
            name=name,
            tcp=self.tcp,
            codec=self.codec,
        )
        self._networks.append(network)
        return network

    def wall_metrics(self) -> dict[str, float]:
        clock = self.aio_clock
        return {
            "wall_elapsed_s": clock.wall_elapsed_s,
            "timer_slack_mean_ms": clock.timer_lag_mean,
            "timer_slack_max_ms": clock.timer_lag_max,
        }

    def close(self) -> None:
        for network in self._networks:
            network.close()
        self.aio_clock.close()
