"""The simulated transport: pure delegation to the discrete-event stack.

``SimTransport`` adds nothing on top of :class:`Simulator` +
:class:`Network` -- it *is* today's path behind the transport interface,
so a run routed through it is byte-identical (trace fingerprint and all)
to one that builds the simulator and network by hand.
``tests/transport/test_sim_equivalence.py`` pins this.
"""

from __future__ import annotations

from repro.net.delay import DelayModel
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.sim.trace import TraceRecorder
from repro.transport.base import Transport


class SimTransport(Transport):
    """Virtual-time transport over the discrete-event simulator."""

    kind = "sim"

    def __init__(self, seed: int = 0, trace: TraceRecorder | None = None) -> None:
        super().__init__(Simulator(seed=seed, trace=trace))

    @property
    def simulator(self) -> Simulator:
        return self.clock  # type: ignore[return-value]

    def make_network(
        self,
        default_delay: DelayModel | None = None,
        name: str = "net",
    ) -> Network:
        if default_delay is None:
            return Network(self.clock, name=name)
        return Network(self.clock, default_delay=default_delay, name=name)
