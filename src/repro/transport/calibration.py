"""Host calibration for wall-clock runs.

The paper derives its detection deadlines from *measured* quantities:
pi (max processing time) and tau (max signing/verification time) are
observed on the testbed, and the section 2.2 timeouts are built from
them plus the LAN's delta bound.  The simulator emulates those costs
with :class:`repro.crypto.costmodel.CryptoCostModel`; a live asyncio
run must instead measure the host:

* sign / verify / countersign latency of the actual signature scheme
  (these feed the cost model the CPU emulation charges, so simulated
  service time tracks real crypto time);
* event-loop timer slack (how late ``call_at`` callbacks fire), the
  wall-clock analogue of the LAN hop bound delta -- on this backend a
  "hop" is a timer firing plus a queue pump, so delta must dominate the
  host's timer jitter or every compare timeout becomes a spurious
  fail-signal.

:func:`calibrate` runs both measurements at startup and returns a
:class:`CalibrationResult`, which derives the live
:class:`~repro.crypto.costmodel.CryptoCostModel` and the
:class:`~repro.core.config.FsoConfig` delta the transport runs with.
The result is JSON round-trippable so a run's report can carry the
numbers it was calibrated against.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import time

# The repo-wide nearest-rank percentile; re-exported because the
# calibration tests (and external callers) import it from here.
from repro.analysis.metrics import percentile
from repro.core.config import FsoConfig
from repro.crypto.costmodel import PROVIDER_COSTS, CryptoCostModel
from repro.crypto.signing import HmacScheme, Signature, SignatureScheme

#: Pair-verification factors by scheme *class name* (what
#: :class:`CalibrationResult` records): live runs keep the same
#: amortisation ratio the simulator charges for that provider, so the
#: sim/live deadline relationship is provider-independent.
_SCHEME_PAIR_FACTORS = {
    "Ed25519Scheme": PROVIDER_COSTS["ed25519"].pair_verify_factor,
}


@dataclasses.dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Measured host latencies and the deadlines derived from them.

    All latencies are milliseconds.  ``delta_ms`` is the derived LAN
    bound: ``max(base_delta, safety * timer_lag_p95 + sign_p95 +
    verify_p95 + countersign_p95)`` -- generous on purpose, since an
    overestimated delta only delays detection while an underestimated
    one manufactures spurious fail-signals.
    """

    scheme: str = "HmacScheme"
    samples: int = 0
    payload_bytes: int = 0
    sign_mean_ms: float = 0.0
    sign_p95_ms: float = 0.0
    verify_mean_ms: float = 0.0
    verify_p95_ms: float = 0.0
    countersign_mean_ms: float = 0.0
    countersign_p95_ms: float = 0.0
    timer_lag_mean_ms: float = 0.0
    timer_lag_p95_ms: float = 0.0
    timer_lag_max_ms: float = 0.0
    tcp_lag_mean_ms: float = 0.0
    tcp_lag_p95_ms: float = 0.0
    tcp_lag_max_ms: float = 0.0
    base_delta_ms: float = 2.0
    safety: float = 4.0
    delta_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.samples < 0:
            raise ValueError(f"samples must be >= 0, got {self.samples}")
        if self.safety <= 0:
            raise ValueError(f"safety must be > 0, got {self.safety}")
        if self.delta_ms <= 0:
            raise ValueError(f"delta_ms must be > 0, got {self.delta_ms}")

    # ------------------------------------------------------------------
    # derived run configuration
    # ------------------------------------------------------------------
    def crypto_cost_model(self) -> CryptoCostModel:
        """The cost model live runs charge: measured means, so the CPU
        emulation's virtual service times track real crypto time.  The
        pair-verification factor stays the provider's own ratio (the
        amortisation is structural, not host-dependent)."""
        return CryptoCostModel(
            sign_base_ms=max(self.sign_mean_ms, 1e-6),
            verify_base_ms=max(self.verify_mean_ms, 1e-6),
            pair_verify_factor=_SCHEME_PAIR_FACTORS.get(self.scheme, 2.0),
        )

    def fso_config(self, base: FsoConfig | None = None) -> FsoConfig:
        """The base config with the calibrated delta swapped in (batch
        shape, kappa and sigma margins are kept: pi and tau themselves
        are measured in-protocol, per output, exactly as in the sim)."""
        return dataclasses.replace(
            base if base is not None else FsoConfig(), delta=self.delta_ms
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationResult":
        return cls(**data)


def _measure_op(op, samples: int) -> list[float]:
    timer = time.perf_counter
    laps = []
    for __ in range(samples):
        start = timer()
        op()
        laps.append((timer() - start) * 1000.0)
    return laps


def probe_timer_lag(
    samples: int = 24, delay_ms: float = 2.0
) -> list[float]:
    """Measure how late ``call_at`` wakeups fire on this host, in ms.

    Runs a throwaway event loop; each sample sleeps ``delay_ms`` and
    records the overshoot beyond the requested deadline.
    """
    lags: list[float] = []

    async def probe() -> None:
        loop = asyncio.get_running_loop()
        for __ in range(samples):
            target = loop.time() + delay_ms / 1000.0
            await asyncio.sleep(delay_ms / 1000.0)
            lags.append(max(0.0, (loop.time() - target) * 1000.0))

    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(probe())
    finally:
        loop.close()
    return lags


def probe_tcp_lag(
    samples: int = 24, delay_ms: float = 2.0, payload_bytes: int = 1024
) -> list[float]:
    """Measure timer lag on a loop saturated by loopback TCP traffic.

    The idle :func:`probe_timer_lag` badly underestimates the slack a
    TCP run sees: there the same loop services socket reads, frame
    decodes and writes between timer wakeups, and on a small host the
    observed slack is an order of magnitude above the idle figure.
    This probe floods a loopback echo connection with length-prefixed
    frames while sampling ``call_at`` overshoot, reproducing that
    contention.
    """
    lags: list[float] = []

    async def probe() -> None:
        loop = asyncio.get_running_loop()
        handlers: list[asyncio.Task] = []

        async def echo(reader, writer) -> None:
            handlers.append(asyncio.current_task())
            try:
                while True:
                    header = await reader.readexactly(4)
                    body = await reader.readexactly(
                        int.from_bytes(header, "big")
                    )
                    writer.write(header + body)
                    await writer.drain()
            except (asyncio.IncompleteReadError, ConnectionError):
                pass
            finally:
                writer.close()

        server = await asyncio.start_server(echo, host="127.0.0.1", port=0)
        host, port = server.sockets[0].getsockname()[:2]
        reader, writer = await asyncio.open_connection(host, port)
        frame = len(bytes(payload_bytes)).to_bytes(4, "big") + bytes(
            payload_bytes
        )
        running = True

        async def flood() -> None:
            while running:
                writer.write(frame)
                await writer.drain()
                await reader.readexactly(len(frame))

        flooder = asyncio.ensure_future(flood())
        try:
            for __ in range(samples):
                target = loop.time() + delay_ms / 1000.0
                await asyncio.sleep(delay_ms / 1000.0)
                lags.append(max(0.0, (loop.time() - target) * 1000.0))
        finally:
            running = False
            flooder.cancel()
            try:
                await flooder
            except asyncio.CancelledError:
                pass
            writer.close()
            for handler in handlers:
                handler.cancel()
            await asyncio.gather(*handlers, return_exceptions=True)
            server.close()
            await server.wait_closed()

    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(probe())
    finally:
        loop.close()
    return lags


#: Delta floor for served runs (a gateway fleet on the protocol's
#: loop).  The idle probe cannot see the contention a thousand
#: closed-loop sessions and their submit bursts add between timer
#: wakeups -- the same blind spot ``tcp_floor_ms`` covers for socket
#: servicing -- so a served calibration starts from this floor instead
#: of the idle ``base_delta_ms``.  Sized so t2 = 2*delta comfortably
#: absorbs the multi-hundred-millisecond stalls (allocator/GC pauses
#: under tens of thousands of live envelopes) a loaded CPython loop
#: exhibits.
SERVICE_FLOOR_MS = 100.0


def calibrate(
    scheme: SignatureScheme | None = None,
    samples: int = 48,
    payload_bytes: int = 96,
    base_delta_ms: float = 12.0,
    safety: float = 8.0,
    timer_samples: int = 24,
    tcp: bool = False,
    tcp_floor_ms: float = 40.0,
) -> CalibrationResult:
    """Measure this host and derive the live run's deadlines.

    The defaults are deliberately loose: the timer-lag probe runs on an
    *idle* loop, while the protocol run fires timers from a loop busy
    with callback chains -- observed slack there is several times the
    idle figure, and a host scheduling hiccup must not manufacture a
    fail-signal (the "accuracy" half of the fail-signal contract).

    With ``tcp=True`` the loaded :func:`probe_tcp_lag` runs as well and
    its p95 joins the derivation, and the floor rises to
    ``tcp_floor_ms``: socket servicing steals the loop from timers for
    tens of milliseconds at a time on small hosts, which the idle probe
    cannot see.
    """
    live_scheme = scheme if scheme is not None else HmacScheme()
    rng = random.Random("transport/calibration")
    private, public = live_scheme.generate(rng)
    data = bytes(rng.getrandbits(8) for __ in range(payload_bytes))

    # Warm the code paths once so the first sample is not an outlier.
    warm = live_scheme.sign(private, data)
    live_scheme.verify(public, data, warm)

    sign_ms = _measure_op(lambda: live_scheme.sign(private, data), samples)
    value = live_scheme.sign(private, data)
    verify_ms = _measure_op(
        lambda: live_scheme.verify(public, data, value), samples
    )
    # A countersignature signs (payload, first signature); emulate the
    # larger input with the first signature's bytes appended.
    counter_data = data + repr(Signature("calibration", value)).encode()
    counter_ms = _measure_op(
        lambda: live_scheme.sign(private, counter_data), samples
    )
    lag_ms = probe_timer_lag(samples=timer_samples)
    tcp_lag_ms = probe_tcp_lag(samples=timer_samples) if tcp else []

    sign_p95 = percentile(sign_ms, 0.95)
    verify_p95 = percentile(verify_ms, 0.95)
    counter_p95 = percentile(counter_ms, 0.95)
    lag_p95 = percentile(lag_ms, 0.95)
    tcp_lag_p95 = percentile(tcp_lag_ms, 0.95)
    floor = max(base_delta_ms, tcp_floor_ms) if tcp else base_delta_ms
    delta = max(
        floor,
        safety * max(lag_p95, tcp_lag_p95)
        + sign_p95
        + verify_p95
        + counter_p95,
    )
    return CalibrationResult(
        scheme=type(live_scheme).__name__,
        samples=samples,
        payload_bytes=payload_bytes,
        sign_mean_ms=sum(sign_ms) / len(sign_ms),
        sign_p95_ms=sign_p95,
        verify_mean_ms=sum(verify_ms) / len(verify_ms),
        verify_p95_ms=verify_p95,
        countersign_mean_ms=sum(counter_ms) / len(counter_ms),
        countersign_p95_ms=counter_p95,
        timer_lag_mean_ms=sum(lag_ms) / len(lag_ms) if lag_ms else 0.0,
        timer_lag_p95_ms=lag_p95,
        timer_lag_max_ms=max(lag_ms) if lag_ms else 0.0,
        tcp_lag_mean_ms=(
            sum(tcp_lag_ms) / len(tcp_lag_ms) if tcp_lag_ms else 0.0
        ),
        tcp_lag_p95_ms=tcp_lag_p95,
        tcp_lag_max_ms=max(tcp_lag_ms) if tcp_lag_ms else 0.0,
        base_delta_ms=floor,
        safety=safety,
        delta_ms=delta,
    )
