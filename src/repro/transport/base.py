"""The transport abstraction: clock, timers and message movement.

Everything in the protocol stack -- the FS wrappers, the inbox and
invocation layers, the group assemblies, the networks -- schedules work
and reads time through one structural interface, :class:`Clock`, and
moves messages through a :class:`repro.net.network.Network` owned by a
:class:`Transport`.  Two transports implement the interface:

* :class:`repro.transport.sim.SimTransport` wraps the discrete-event
  :class:`repro.sim.scheduler.Simulator`; behaviour (and therefore the
  trace stream) is byte-identical to driving the simulator directly.
* :class:`repro.transport.aio.AsyncioTransport` runs the same object
  graph on an asyncio event loop with wall-clock timers, in-process
  queues per member and an optional localhost TCP hop.

The protocols are *structural* (:class:`typing.Protocol`): the existing
``Simulator`` satisfies :class:`Clock` without inheriting from anything,
which is what keeps the sim path bit-for-bit unchanged.  Time is in
milliseconds on every clock; only its relation to the host's wall clock
differs.
"""

from __future__ import annotations

import random
import typing

if typing.TYPE_CHECKING:
    from repro.net.delay import DelayModel
    from repro.net.network import Network
    from repro.sim.trace import TraceRecorder

#: Transport kinds :func:`build_transport` knows how to construct.
TRANSPORT_KINDS = ("sim", "asyncio")


@typing.runtime_checkable
class TimerHandle(typing.Protocol):
    """Cancellation handle for a scheduled callback.

    :class:`repro.sim.events.Event` is the canonical implementation;
    both clocks hand the event object itself back as the handle.
    """

    cancelled: bool

    def cancel(self) -> bool:
        """Cancel the timer; ``False`` if it was already cancelled."""
        ...


@typing.runtime_checkable
class Clock(typing.Protocol):
    """Time, timers, named randomness and the trace stream.

    This is the full surface the protocol stack uses.  The contract both
    implementations honour:

    * ``now`` is milliseconds, monotone non-decreasing;
    * timers fire in ``(deadline, priority, seq)`` order -- ties resolve
      by scheduling order, lower ``priority`` first;
    * ``rng(stream)`` depends only on ``(seed, stream)`` and the
      caller's own draw order, never on other components;
    * ``run`` drives the clock until ``until`` (inclusive), the work
      drains, or ``max_events`` callbacks have fired (then it raises
      :class:`repro.sim.errors.SimulationLimitExceeded`).
    """

    trace: "TraceRecorder"

    @property
    def now(self) -> float: ...

    @property
    def seed(self) -> int: ...

    @property
    def events_processed(self) -> int: ...

    def rng(self, stream: str) -> random.Random: ...

    def schedule(
        self,
        delay: float,
        callback: typing.Callable[..., None],
        *args: typing.Any,
        priority: int = 0,
    ) -> TimerHandle: ...

    def schedule_at(
        self,
        time: float,
        callback: typing.Callable[..., None],
        *args: typing.Any,
        priority: int = 0,
    ) -> TimerHandle: ...

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None: ...


class Transport:
    """A clock plus the network factory bound to it.

    Subclasses provide ``kind``, build their clock in ``__init__`` and
    implement :meth:`make_network`.  The runner builds exactly one
    transport per run, asks it for the network(s) the group assembly
    should use, drives the workload (which calls ``clock.run`` through
    the group's ``sim`` handle) and finally reads :meth:`wall_metrics`.
    """

    kind: str = "abstract"

    def __init__(self, clock: Clock) -> None:
        self.clock = clock

    def make_network(
        self,
        default_delay: "DelayModel | None" = None,
        name: str = "net",
    ) -> "Network":
        raise NotImplementedError

    def wall_metrics(self) -> dict[str, float]:
        """Wall-clock observations of the run (empty for the simulator:
        its virtual time has no wall-clock meaning)."""
        return {}

    def close(self) -> None:
        """Release transport resources (sockets, event loop)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: typing.Any) -> None:
        self.close()
