"""Wire codec for the TCP transport hop.

The canonical encoding (:mod:`repro.crypto.canonical`) was built for
signing -- deterministic bytes, forward direction only.  The localhost
TCP mode of :class:`repro.transport.aio.AsyncioTransport` reuses it as
the wire format, which needs the inverse: a decoder, including the
object tag ``O`` that signing never needs to invert.

Objects decode through a *type registry* keyed by dataclass qualname.
Every protocol message class reachable from an :class:`Envelope`
payload (requests, replies, signed containers, GC/view messages) is
registered at import time; unknown qualnames raise
:class:`WireDecodeError` rather than instantiating arbitrary types.

Frames on the socket are length-prefixed: a 4-byte big-endian payload
length followed by the canonical bytes of the envelope.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any

from repro.crypto.canonical import canonical_encode

#: Maximum accepted frame payload, bytes.  Localhost protocol traffic is
#: tiny; anything larger is a corrupt or hostile frame.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class WireDecodeError(ValueError):
    """Raised for malformed frames or unregistered object types."""


# ----------------------------------------------------------------------
# type registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type] = {}


def register_wire_type(cls: type) -> type:
    """Register a dataclass for decoding; duplicate qualnames must be
    the same class (re-imports are fine, collisions are not)."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    name = cls.__qualname__
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"wire qualname collision: {name!r}")
    _REGISTRY[name] = cls
    return cls


def register_module_dataclasses(module: Any) -> None:
    """Register every public dataclass a module defines."""
    for attr in vars(module).values():
        if (
            isinstance(attr, type)
            and dataclasses.is_dataclass(attr)
            and attr.__module__ == module.__name__
        ):
            register_wire_type(attr)


def _register_protocol_types() -> None:
    """The closed set of types that may ride an envelope payload."""
    import repro.corba.anytype
    import repro.corba.marshal
    import repro.corba.orb
    import repro.core.batching
    import repro.core.messages
    import repro.crypto.signing
    import repro.fsnewtop.voting
    import repro.net.message
    import repro.newtop.gc.messages
    import repro.newtop.gc.symmetric
    import repro.newtop.invocation
    import repro.newtop.views
    import repro.shard.barrier

    for module in (
        repro.net.message,
        repro.corba.anytype,
        repro.corba.marshal,
        repro.corba.orb,
        repro.core.messages,
        repro.core.batching,
        repro.crypto.signing,
        repro.fsnewtop.voting,
        repro.newtop.views,
        repro.newtop.gc.messages,
        repro.newtop.gc.symmetric,
        repro.newtop.invocation,
        repro.shard.barrier,
    ):
        register_module_dataclasses(module)


_register_protocol_types()


def registered_wire_types() -> dict[str, type]:
    """A snapshot of the closed type registry, qualname -> class.

    This is the single source of truth for what may cross a trust
    boundary: the binwire codec (:mod:`repro.crypto.binwire`) derives
    its numeric type-id table from exactly this set, so both codecs
    accept the same closed universe of protocol messages.
    """
    return dict(_REGISTRY)


def wire_codec(name: str) -> tuple[Any, Any]:
    """Resolve a framing-codec name to ``(encode, decode)`` callables.

    ``"canonical"`` is the reference pair below; ``"binwire"`` swaps in
    the compact binary codec.  Both sides of a TCP link must agree --
    the codec is part of the scenario spec, so every peer of one run
    resolves the same name.
    """
    if name == "canonical":
        return wire_encode, wire_decode
    if name == "binwire":
        from repro.crypto.binwire import binwire_decode, binwire_encode

        return binwire_encode, binwire_decode
    raise ValueError(
        f"unknown wire codec {name!r}; known: ['binwire', 'canonical']"
    )


# ----------------------------------------------------------------------
# decoder (inverse of repro.crypto.canonical's tag format)
# ----------------------------------------------------------------------
def _take_length(data: bytes, at: int) -> tuple[int, int]:
    if at + 4 > len(data):
        raise WireDecodeError(f"truncated length at offset {at}")
    return struct.unpack_from(">I", data, at)[0], at + 4


def _construct(cls: type, values: dict[str, Any]) -> Any:
    try:
        return cls(**values)
    except TypeError:
        # Types with init=False fields (lazy wire-size memos and the
        # like) cannot be rebuilt through __init__; restore field state
        # directly.  object.__setattr__ also handles frozen classes.
        obj = cls.__new__(cls)
        for key, value in values.items():
            object.__setattr__(obj, key, value)
        return obj


def _decode(data: bytes, at: int) -> tuple[Any, int]:
    if at >= len(data):
        raise WireDecodeError("truncated value")
    tag = data[at : at + 1]
    at += 1
    if tag == b"N":
        return None, at
    if tag == b"T":
        return True, at
    if tag == b"F":
        return False, at
    if tag == b"I":
        length, at = _take_length(data, at)
        return int(data[at : at + length].decode("ascii")), at + length
    if tag == b"D":
        return struct.unpack_from(">d", data, at)[0], at + 8
    if tag == b"S":
        length, at = _take_length(data, at)
        return data[at : at + length].decode("utf-8"), at + length
    if tag == b"B":
        length, at = _take_length(data, at)
        return bytes(data[at : at + length]), at + length
    if tag in (b"L", b"U"):
        count, at = _take_length(data, at)
        items = []
        for __ in range(count):
            item, at = _decode(data, at)
            items.append(item)
        return (items if tag == b"L" else tuple(items)), at
    if tag == b"M":
        count, at = _take_length(data, at)
        mapping = {}
        for __ in range(count):
            key, at = _decode(data, at)
            value, at = _decode(data, at)
            mapping[key] = value
        return mapping, at
    if tag == b"O":
        length, at = _take_length(data, at)
        qualname = data[at : at + length].decode("utf-8")
        at += length
        count, at = _take_length(data, at)
        cls = _REGISTRY.get(qualname)
        if cls is None:
            raise WireDecodeError(f"unregistered wire type {qualname!r}")
        values: dict[str, Any] = {}
        for __ in range(count):
            name, at = _decode(data, at)
            value, at = _decode(data, at)
            values[name] = value
        return _construct(cls, values), at
    raise WireDecodeError(f"unexpected tag {tag!r} at offset {at - 1}")


def wire_decode(data: bytes) -> Any:
    """Decode one canonical value; trailing bytes are an error."""
    value, end = _decode(bytes(data), 0)
    if end != len(data):
        raise WireDecodeError(f"{len(data) - end} trailing bytes after value")
    return value


def wire_encode(value: Any) -> bytes:
    """Canonical bytes of a value (the signing encoder, reused)."""
    return canonical_encode(value)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def frame(payload: bytes) -> bytes:
    """Length-prefix a payload for the socket."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireDecodeError(f"frame of {len(payload)} bytes exceeds limit")
    return struct.pack(">I", len(payload)) + payload


async def read_frame(reader: Any) -> bytes | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    import asyncio

    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireDecodeError("connection closed mid-header") from exc
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise WireDecodeError(f"frame of {length} bytes exceeds limit")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireDecodeError("connection closed mid-frame") from exc
