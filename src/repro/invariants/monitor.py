"""Online invariant monitoring of one simulated run.

The :class:`InvariantMonitor` attaches to the run's
:class:`~repro.sim.trace.TraceRecorder` as a listener and feeds every
record through shared bookkeeping (:class:`AuditState`) plus the
invariant oracles in :mod:`repro.invariants.oracles`.  The raw event
stream is never stored; the oracles fold it down to the protocol facts
they must remember -- digests of sends, per-member delivery sequences,
vouched/forwarded output digests -- so audit memory scales with the
*message* count of the run, not with its (far larger) event count.

What the monitor learns online:

* which pairs are *expected* to misbehave (``adversary``/``activate``
  traces emitted by the adversary engine and by
  :meth:`ByzantineFso.go_byzantine`), and whether a fail-signal is
  *required* (misbehaviour will manifest) or merely *allowed* (e.g. a
  crash with nothing in flight);
* when misbehaviour actually *manifested* (``fault`` traces: a message
  really dropped/corrupted/forged/replayed);
* which nodes crashed and how the network is partitioned (fault-plan
  traces from the scenario runner).

Everything else -- deliveries, fail-signals, signed candidates,
inbox-forwarded values -- is oracle-specific and lives in the oracles.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.invariants.oracles import (
    CrossShardOrderOracle,
    DoubleSignSoundnessOracle,
    EquivocationEvidenceOracle,
    FailSignalOracle,
    NoForgeryOracle,
    Oracle,
    StateConsistencyOracle,
    TotalOrderOracle,
    ValidityOracle,
)
from repro.invariants.report import AuditReport
from repro.sim.trace import TraceRecord

if typing.TYPE_CHECKING:
    from repro.transport.base import Clock


# ----------------------------------------------------------------------
# static topology (configuration, not behaviour)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class PairTopology:
    """Where one fail-signal pair lives."""

    fs_id: str
    member: str
    leader_node: str
    follower_node: str


@dataclasses.dataclass(frozen=True)
class Topology:
    """The static shape of the system under audit.

    ``shards`` is non-empty for sharded deployments: one member tuple
    per shard, in shard order.  The cross-shard oracle uses it to scope
    per-shard checks and attribute violations to shards.
    """

    system: str
    members: tuple[str, ...]
    pairs: tuple[PairTopology, ...] = ()
    shards: tuple[tuple[str, ...], ...] = ()

    def pair_of_member(self, member_id: str) -> PairTopology | None:
        for pair in self.pairs:
            if pair.member == member_id:
                return pair
        return None

    def nodes_of(self, fs_id: str) -> tuple[str, str] | None:
        for pair in self.pairs:
            if pair.fs_id == fs_id:
                return (pair.leader_node, pair.follower_node)
        return None

    def shard_of_member(self, member_id: str) -> int | None:
        for index, shard in enumerate(self.shards):
            if member_id in shard:
                return index
        return None


def _fs_pairs(group: typing.Any) -> tuple[PairTopology, ...]:
    return tuple(
        PairTopology(
            fs_id=member.fs_process.fs_id,
            member=member_id,
            leader_node=member.primary_node.name,
            follower_node=member.backup_node.name,
        )
        for member_id, member in group.members.items()
    )


def topology_of(group: typing.Any) -> Topology:
    """Describe a live group (fs-newtop, newtop or sharded) for the
    monitor."""
    from repro.fsnewtop.system import ByzantineTolerantGroup
    from repro.shard.group import ShardedGroup

    if isinstance(group, ShardedGroup):
        pairs: tuple[PairTopology, ...] = ()
        for shard_group in group.shard_groups:
            pairs += _fs_pairs(shard_group)
        return Topology(
            system="fs-newtop",
            members=tuple(group.member_ids),
            pairs=pairs,
            shards=tuple(tuple(g.member_ids) for g in group.shard_groups),
        )
    if isinstance(group, ByzantineTolerantGroup):
        return Topology(
            system="fs-newtop", members=tuple(group.member_ids), pairs=_fs_pairs(group)
        )
    return Topology(system="newtop", members=tuple(group.member_ids))


# ----------------------------------------------------------------------
# shared run-time bookkeeping
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class AuditConfig:
    """Knobs of an audit.

    ``detection_deadline_ms`` bounds how long after the *first
    manifestation* of a required misbehaviour the pair's fail-signal
    must appear.  The section 2.2 timeouts are load-dependent (they
    scale with measured processing and signing times), so this is a
    generous envelope rather than the exact formula; it exists to catch
    detection that silently stopped working, not to re-derive the bound.
    """

    detection_deadline_ms: float = 5_000.0
    max_violations_per_oracle: int = 25


@dataclasses.dataclass
class FaultRecord:
    """What the monitor knows about one pair's (expected) misbehaviour."""

    fs_id: str
    onset: float
    kinds: set[str]
    role: str = "leader"  # which side is faulty
    expect: str = "required"
    active: bool = True


@dataclasses.dataclass(frozen=True, slots=True)
class SignalRecord:
    time: float
    reason: str
    source: str


class AuditState:
    """Bookkeeping shared by every oracle."""

    def __init__(self, topology: Topology, config: AuditConfig) -> None:
        self.topology = topology
        self.config = config
        self.faults: dict[str, FaultRecord] = {}
        self.crashed_nodes: dict[str, float] = {}
        self.partition_groups: tuple[tuple[int, ...], ...] | None = None
        self.signals: dict[str, SignalRecord] = {}
        self.first_manifest: dict[str, float] = {}
        self.sends = 0

    # -- ingestion -------------------------------------------------------
    def ingest(self, rec: TraceRecord) -> None:
        if rec.category == "adversary":
            self._ingest_adversary(rec)
        elif rec.category == "fault":
            fs_id = rec.source.rsplit("/", 1)[0]
            self.first_manifest.setdefault(fs_id, rec.time)
        elif rec.category == "fso":
            if rec.event == "fail-signal":
                fs_id = rec.source.rsplit("/", 1)[0]
                self.signals.setdefault(
                    fs_id,
                    SignalRecord(
                        time=rec.time,
                        reason=str(rec.detail("reason")),
                        source=rec.source,
                    ),
                )
            elif rec.event == "single":
                # Manifestation proxy for delay skew: a candidate signed
                # while the pair LAN is skewed will arrive late.
                fs_id = rec.source.rsplit("/", 1)[0]
                fault = self.faults.get(fs_id)
                if fault is not None and fault.active and "delay_skew" in fault.kinds:
                    self.first_manifest.setdefault(fs_id, rec.time)
        elif rec.category == "app" and rec.event == "send":
            self.sends += 1

    def _ingest_adversary(self, rec: TraceRecord) -> None:
        if rec.event == "faultplan":
            self._ingest_faultplan(rec)
            return
        if rec.event not in ("activate", "deactivate"):
            return
        flags = rec.detail("flags")
        if flags is not None and "/" in rec.source:
            # From ByzantineFso.go_byzantine: source is "<fs>/<role>".
            fs_id, role = rec.source.rsplit("/", 1)
            self._mark(rec, fs_id, set(flags), role=role, expect="required")
            return
        fs_id = rec.detail("fs")
        kind = rec.detail("kind")
        node = rec.detail("node")
        if node is not None:  # churn storm crash
            self.crashed_nodes.setdefault(str(node), rec.time)
            return
        if fs_id is not None and kind is not None:
            self._mark(rec, str(fs_id), {str(kind)}, expect=str(rec.detail("expect", "required")))

    def _mark(
        self, rec: TraceRecord, fs_id: str, kinds: set[str], role: str = "leader",
        expect: str = "required",
    ) -> None:
        record = self.faults.get(fs_id)
        activating = rec.event == "activate"
        if record is None:
            if not activating:
                return
            record = FaultRecord(fs_id=fs_id, onset=rec.time, kinds=set(), role=role, expect=expect)
            self.faults[fs_id] = record
        record.kinds.update(kinds)
        record.active = activating
        if activating and expect == "required":
            record.expect = "required"
        if "spurious_signal" in kinds:
            # The spontaneous signal *is* the manifestation.
            self.first_manifest.setdefault(fs_id, rec.time)

    def _ingest_faultplan(self, rec: TraceRecord) -> None:
        kind = rec.detail("kind")
        member_index = rec.detail("member")
        if kind in ("crash", "crash_recover", "crash_backup") and member_index is not None:
            # crash_recover kills the primary node exactly like crash;
            # the later rejoin is application-level state transfer and
            # never revives the pair, so the crash bookkeeping stands.
            member_id = self.topology.members[int(member_index)]
            pair = self.topology.pair_of_member(member_id)
            if pair is None:
                self.crashed_nodes.setdefault(member_id, rec.time)
            elif kind in ("crash", "crash_recover"):
                self.crashed_nodes.setdefault(pair.leader_node, rec.time)
            else:
                self.crashed_nodes.setdefault(pair.follower_node, rec.time)
        elif kind == "partition":
            groups = rec.detail("groups") or ()
            self.partition_groups = tuple(tuple(int(i) for i in g) for g in groups)
        # heal: the halves do not re-merge into one total order (see
        # docs/SCENARIOS.md on partition_heal), so the last partition
        # grouping keeps governing the agreement oracle.

    # -- queries ---------------------------------------------------------
    def allowed_to_signal(self, fs_id: str, at: float) -> bool:
        fault = self.faults.get(fs_id)
        if fault is not None and fault.onset <= at:
            return True
        nodes = self.topology.nodes_of(fs_id)
        if nodes is not None:
            for node in nodes:
                crashed_at = self.crashed_nodes.get(node)
                if crashed_at is not None and crashed_at <= at:
                    return True
        return False

    def faulty_role(self, fs_id: str) -> str | None:
        fault = self.faults.get(fs_id)
        return fault.role if fault is not None else None

    def agreement_groups(self) -> list[tuple[str, ...]]:
        """Member groups within which total order must agree."""
        if self.partition_groups is None:
            return [self.topology.members]
        return [
            tuple(self.topology.members[i] for i in group)
            for group in self.partition_groups
        ]

    def stats(self) -> dict[str, float]:
        return {
            "sends": float(self.sends),
            "fail_signals": float(len(self.signals)),
            "pairs_faulted": float(len(self.faults)),
            "nodes_crashed": float(len(self.crashed_nodes)),
        }


# ----------------------------------------------------------------------
# the monitor
# ----------------------------------------------------------------------
class InvariantMonitor:
    """Attach oracles to a simulator's trace and fold its event stream."""

    def __init__(
        self,
        sim: Clock,
        topology: Topology,
        config: AuditConfig | None = None,
        scenario: str | None = None,
        oracles: typing.Sequence[Oracle] | None = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config if config is not None else AuditConfig()
        self.scenario = scenario
        self.state = AuditState(topology, self.config)
        self.oracles: tuple[Oracle, ...] = (
            tuple(oracles)
            if oracles is not None
            else (
                TotalOrderOracle(),
                ValidityOracle(),
                FailSignalOracle(),
                DoubleSignSoundnessOracle(),
                EquivocationEvidenceOracle(),
                NoForgeryOracle(),
                CrossShardOrderOracle(),
                StateConsistencyOracle(),
            )
        )
        if not sim.trace.enabled:
            raise ValueError(
                "invariant monitoring needs the trace recorder enabled "
                "(set trace.store = False to audit without storing records)"
            )
        sim.trace.add_listener(self._observe)

    def _observe(self, rec: TraceRecord) -> None:
        self.state.ingest(rec)
        for oracle in self.oracles:
            oracle.observe(rec, self.state)

    def finish(self) -> AuditReport:
        """Fold every oracle into the final report."""
        verdicts = tuple(oracle.finish(self.state) for oracle in self.oracles)
        return AuditReport(
            system=self.topology.system,
            seed=self.sim.seed,
            verdicts=verdicts,
            stats=self.state.stats(),
            scenario=self.scenario,
        )
