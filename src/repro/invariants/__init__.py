"""Trace-driven safety oracles for audited runs.

The invariants subsystem checks, online, the guarantees the paper
claims: total-order agreement, validity, fail-signal accuracy and
completeness, double-sign evidence soundness and no-forgery.  An
:class:`InvariantMonitor` listens to the run's trace stream and folds
it into a structured :class:`AuditReport`.

Typical use (what ``repro audit`` and the campaign audit mode do)::

    sim = Simulator(seed=0)
    sim.trace.store = False          # listeners only; memory stays flat
    group = build_ordering_group(sim, spec)
    monitor = InvariantMonitor(sim, topology_of(group))
    ... run the workload ...
    report = monitor.finish()
    assert report.ok, report.render()
"""

from repro.invariants.monitor import (
    AuditConfig,
    AuditState,
    InvariantMonitor,
    PairTopology,
    Topology,
    topology_of,
)
from repro.invariants.oracles import (
    ALL_ORACLES,
    TOTAL_SERVICES,
    CrossShardOrderOracle,
    DoubleSignSoundnessOracle,
    EquivocationEvidenceOracle,
    FailSignalOracle,
    NoForgeryOracle,
    Oracle,
    StateConsistencyOracle,
    TotalOrderOracle,
    ValidityOracle,
)
from repro.invariants.report import AuditReport, OracleVerdict, Violation

__all__ = [
    "ALL_ORACLES",
    "AuditConfig",
    "AuditReport",
    "AuditState",
    "CrossShardOrderOracle",
    "DoubleSignSoundnessOracle",
    "EquivocationEvidenceOracle",
    "FailSignalOracle",
    "InvariantMonitor",
    "NoForgeryOracle",
    "Oracle",
    "OracleVerdict",
    "PairTopology",
    "StateConsistencyOracle",
    "TOTAL_SERVICES",
    "Topology",
    "TotalOrderOracle",
    "topology_of",
    "ValidityOracle",
    "Violation",
]
