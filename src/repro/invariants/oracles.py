"""The invariant oracles.

Each oracle folds the trace stream into a small amount of state
(``observe``) and renders a verdict at the end of the run (``finish``).
They receive the shared :class:`~repro.invariants.monitor.AuditState`
by argument, so they stay import-free of the monitor itself.

The oracles check the guarantees the paper claims for fail-signal
pairs (and the base guarantees of the ordering systems):

* **total-order** -- correct members deliver totally-ordered messages
  in prefix-consistent sequences (per partition side, if partitioned);
* **validity** -- every delivered message was multicast by its claimed
  sender (nothing is fabricated);
* **fail-signal** -- *accuracy* (a signal is only ever raised by a pair
  that was expected to be faulty -- no false signals) and
  *completeness* (every misbehaviour that manifested is converted into
  a fail-signal, within the detection deadline);
* **double-sign soundness** -- every value that crossed the
  double-signature check into the environment was vouched for (single-
  signed) by the pair's *correct* wrapper: no wrong value ever escapes;
* **equivocation evidence** -- two validly signed, conflicting
  candidates for one slot are blamed on a pair iff that pair really
  equivocated (evidence cannot be fabricated against a correct pair);
* **no-forgery** -- every forged signature the adversary injected was
  rejected by verification (assumption A5 holds end-to-end);
* **cross-shard-order** -- operations spanning shards (see
  :mod:`repro.shard`) are released in one global sequence order at
  every member, the coordinator never equivocates on sequence numbers,
  and no shard's order is tainted by an unquarantined equivocation.
  Vacuous on unsharded runs;
* **state-consistency** -- the replicated KV application (see
  :mod:`repro.app`) faithfully applies each member's delivery feed,
  its signed checkpoints are deterministic (equal history => equal
  state digest) and agree across correct members, and recovered
  members converge to certified state within the deadline.  Vacuous
  on runs without the application layer.
"""

from __future__ import annotations

import typing

from repro.invariants.report import OracleVerdict, Violation
from repro.sim.trace import TraceRecord

#: Services whose deliveries must be totally ordered across members.
TOTAL_SERVICES = frozenset({"symmetric_total", "asymmetric_total"})


class Oracle:
    """Base class: fold the stream, then render a verdict."""

    name = "oracle"

    def __init__(self) -> None:
        self.checked = 0
        self.violations: list[Violation] = []

    def observe(self, rec: TraceRecord, state) -> None:  # pragma: no cover - default
        return None

    def finish(self, state) -> OracleVerdict:
        return self._verdict(state)

    # ------------------------------------------------------------------
    def _flag(
        self, state, message: str, at: float | None = None, source: str | None = None
    ) -> None:
        if len(self.violations) >= state.config.max_violations_per_oracle:
            return
        self.violations.append(
            Violation(oracle=self.name, message=message, at=at, source=source)
        )

    def _verdict(self, state) -> OracleVerdict:
        return OracleVerdict(
            oracle=self.name, checked=self.checked, violations=tuple(self.violations)
        )


def _fs_of(source: str) -> str:
    return source.rsplit("/", 1)[0]


class TotalOrderOracle(Oracle):
    """Uniform total order: no member delivers twice, and any two
    members deliver their *common* messages in the same order.

    (Set agreement is deliberately not required: a message in flight
    when its faulty sender is excluded may reach some members and not
    others -- the membership protocol, not the ordering property,
    governs that gap.)"""

    name = "total-order"

    def __init__(self) -> None:
        super().__init__()
        self._seqs: dict[str, list[str]] = {}

    def observe(self, rec: TraceRecord, state) -> None:
        if rec.category != "app" or rec.event != "deliver":
            return
        if rec.detail("service") not in TOTAL_SERVICES:
            return
        member = rec.source[: -len(".inv")]
        self._seqs.setdefault(member, []).append(str(rec.detail("key")))
        self.checked += 1

    def finish(self, state) -> OracleVerdict:
        for member, seq in sorted(self._seqs.items()):
            if len(set(seq)) != len(seq):
                self._flag(state, "duplicate totally-ordered delivery", source=member)
        for group in state.agreement_groups():
            members = [m for m in group if m in self._seqs]
            for i, member_a in enumerate(members):
                for member_b in members[i + 1 :]:
                    self._check_pair(state, member_a, member_b)
        return self._verdict(state)

    def _check_pair(self, state, member_a: str, member_b: str) -> None:
        seq_a, seq_b = self._seqs[member_a], self._seqs[member_b]
        common = set(seq_a) & set(seq_b)
        filtered_a = [k for k in seq_a if k in common]
        filtered_b = [k for k in seq_b if k in common]
        for position, (key_a, key_b) in enumerate(zip(filtered_a, filtered_b)):
            if key_a != key_b:
                self._flag(
                    state,
                    f"{member_a} and {member_b} deliver their common messages in "
                    f"different orders (first divergence at common position "
                    f"#{position}: {key_a[:12]}... vs {key_b[:12]}...)",
                    source=f"{member_a}|{member_b}",
                )
                return


class ValidityOracle(Oracle):
    """Delivered => sent: nothing is delivered that nobody multicast."""

    name = "validity"

    def __init__(self) -> None:
        super().__init__()
        self._sent: set[str] = set()

    def observe(self, rec: TraceRecord, state) -> None:
        if rec.category != "app":
            return
        if rec.event == "send":
            self._sent.add(str(rec.detail("key")))
        elif rec.event == "deliver":
            self.checked += 1
            key = str(rec.detail("key"))
            if key not in self._sent:
                self._flag(
                    state,
                    f"delivered a message nobody sent (claimed sender "
                    f"{rec.detail('sender')!r})",
                    at=rec.time,
                    source=rec.source,
                )


class FailSignalOracle(Oracle):
    """Fail-signal accuracy and completeness (section 2.2)."""

    name = "fail-signal"

    def finish(self, state) -> OracleVerdict:
        # Accuracy: every raised signal names a pair expected to be
        # faulty at that moment -- anything else is a false signal.
        for fs_id, signal in sorted(state.signals.items()):
            self.checked += 1
            if not state.allowed_to_signal(fs_id, signal.time):
                self._flag(
                    state,
                    f"false fail-signal (reason={signal.reason!r}) from a pair "
                    f"with no injected fault or crashed node",
                    at=signal.time,
                    source=signal.source,
                )
        # Completeness: every required misbehaviour that *manifested*
        # must be converted into a signal, within the deadline.
        for fs_id, fault in sorted(state.faults.items()):
            if fault.expect != "required":
                continue
            manifested = state.first_manifest.get(fs_id)
            if manifested is None:
                continue  # never struck (no traffic in the window)
            self.checked += 1
            signal = state.signals.get(fs_id)
            if signal is None:
                self._flag(
                    state,
                    f"misbehaviour ({', '.join(sorted(fault.kinds))}) manifested "
                    f"at {manifested:.3f}ms but no fail-signal followed",
                    at=manifested,
                    source=fs_id,
                )
            elif signal.time - manifested > state.config.detection_deadline_ms:
                self._flag(
                    state,
                    f"fail-signal came {signal.time - manifested:.1f}ms after the "
                    f"first manifestation (deadline "
                    f"{state.config.detection_deadline_ms:.0f}ms)",
                    at=signal.time,
                    source=fs_id,
                )
        return self._verdict(state)


class DoubleSignSoundnessOracle(Oracle):
    """No wrong value crosses the double-signature check."""

    name = "double-sign-soundness"

    def __init__(self) -> None:
        super().__init__()
        self._vouched: dict[tuple[str, str], set[str]] = {}
        self._forwarded: list[tuple[float, str, str, str]] = []

    def observe(self, rec: TraceRecord, state) -> None:
        if rec.category == "fso" and rec.event == "single":
            fs_id, role = rec.source.rsplit("/", 1)
            self._vouched.setdefault((fs_id, role), set()).add(str(rec.detail("digest")))
        elif rec.category == "inbox" and rec.event == "output-forwarded":
            self._forwarded.append(
                (rec.time, rec.source, str(rec.detail("fs")), str(rec.detail("digest")))
            )

    def finish(self, state) -> OracleVerdict:
        for at, source, fs_id, digest in self._forwarded:
            self.checked += 1
            faulty = state.faulty_role(fs_id)
            correct_roles = [r for r in ("leader", "follower") if r != faulty]
            if not any(
                digest in self._vouched.get((fs_id, role), ()) for role in correct_roles
            ):
                self._flag(
                    state,
                    f"inbox forwarded a value from {fs_id} that the pair's correct "
                    f"wrapper never vouched for (digest {digest[:12]}...)",
                    at=at,
                    source=source,
                )
        return self._verdict(state)


class EquivocationEvidenceOracle(Oracle):
    """Double-sign evidence is raised iff the pair really equivocated."""

    name = "equivocation-evidence"

    def __init__(self) -> None:
        super().__init__()
        self._accepted: dict[tuple[str, tuple], set[str]] = {}

    def observe(self, rec: TraceRecord, state) -> None:
        if rec.category != "fso" or rec.event != "single-accepted":
            return
        # Evidence is per *signer*: only two conflicting candidates
        # bearing the same signature identity convict anyone.  (The two
        # sides of a pair legitimately sign different content when one
        # corrupts its outputs -- that is a mismatch, not equivocation.)
        signer = str(rec.detail("signer"))
        corr = tuple(rec.detail("corr") or ())
        self._accepted.setdefault((signer, corr), set()).add(str(rec.detail("digest")))
        self.checked += 1

    def finish(self, state) -> OracleVerdict:
        convicted: set[str] = set()
        for (signer, corr), digests in sorted(self._accepted.items()):
            if len(digests) < 2:
                continue
            fs_id = signer.split("#", 1)[0]
            convicted.add(fs_id)
            fault = state.faults.get(fs_id)
            if fault is None or "equivocate" not in fault.kinds:
                self._flag(
                    state,
                    f"double-sign evidence against {signer} at slot {corr} -- but "
                    f"that pair was never configured to equivocate (evidence "
                    f"fabricated against a correct signer?)",
                    source=fs_id,
                )
        # Completeness: an equivocating pair that manifested must either
        # leave evidence or already have been converted to a signal.
        for fs_id, fault in sorted(state.faults.items()):
            if "equivocate" not in fault.kinds:
                continue
            if state.first_manifest.get(fs_id) is None:
                continue
            self.checked += 1
            if fs_id not in convicted and fs_id not in state.signals:
                self._flag(
                    state,
                    f"{fs_id} equivocated but left neither double-sign evidence "
                    f"nor a fail-signal",
                    source=fs_id,
                )
        return self._verdict(state)


class NoForgeryOracle(Oracle):
    """Every injected signature forgery is rejected by verification."""

    name = "no-forgery"

    def __init__(self) -> None:
        super().__init__()
        self._forged: dict[str, float] = {}
        self._rejected: dict[str, int] = {}

    def observe(self, rec: TraceRecord, state) -> None:
        if rec.category == "fault" and rec.event == "forged-single":
            self._forged.setdefault(_fs_of(rec.source), rec.time)
            self.checked += 1
        elif rec.category == "fso" and rec.event == "single-rejected":
            fs_id = _fs_of(rec.source)
            self._rejected[fs_id] = self._rejected.get(fs_id, 0) + 1

    def finish(self, state) -> OracleVerdict:
        for fs_id, first_at in sorted(self._forged.items()):
            signal = state.signals.get(fs_id)
            rejected = self._rejected.get(fs_id, 0)
            # A forging pair must see its forgeries rejected, unless it
            # had already fail-signalled (a silent pair verifies nothing).
            if rejected == 0 and not (signal is not None and signal.time <= first_at):
                self._flag(
                    state,
                    f"{fs_id} forged its peer's signature and no forgery was "
                    f"rejected by verification (A5 breach?)",
                    at=first_at,
                    source=fs_id,
                )
        return self._verdict(state)


class CrossShardOrderOracle(Oracle):
    """Cross-shard operations form one global order consistent with
    every shard -- and no shard's contribution to it is tainted.

    The :mod:`repro.shard` barrier traces its protocol under the
    ``shard`` category: the router's ``submit`` (op -> involved shards)
    and ``commit`` (op -> final sequence), and every member agent's
    ``release`` (op delivered to the application at this member, with
    the sequence the member saw).  The oracle folds those into four
    checks:

    * **monotonicity** -- each member releases cross-shard operations
      in strictly increasing ``(final_seq, op)`` order; since sequence
      numbers are global, this makes any two members' common operations
      identically ordered;
    * **sequence agreement** -- every member (and the router's commit
      record) saw the *same* final sequence for an operation; a
      coordinator equivocating on sequence numbers is caught here;
    * **accounting** -- releases happen only for submitted-and-
      committed operations, only at members of the involved shards, at
      most once per member; and every committed operation reaches every
      non-crashed member of every involved shard;
    * **shard integrity** -- double-sign evidence inside a shard (two
      validly signed conflicting candidates from one signer) without a
      quarantining fail-signal taints every sequence the shard
      reserved, and is flagged.

    Vacuously green on unsharded runs (no ``shard`` traces, no shard
    topology).
    """

    name = "cross-shard-order"

    def __init__(self) -> None:
        super().__init__()
        self._submitted: dict[str, tuple[int, ...]] = {}
        self._committed: dict[str, int] = {}
        #: member -> [(release time, op, seq)]
        self._releases: dict[str, list[tuple[float, str, int]]] = {}
        self._accepted: dict[tuple[str, tuple], set[str]] = {}

    def observe(self, rec: TraceRecord, state) -> None:
        if rec.category == "shard":
            if rec.event == "submit":
                self._submitted[str(rec.detail("op"))] = tuple(
                    int(s) for s in rec.detail("shards") or ()
                )
            elif rec.event == "commit":
                self._committed.setdefault(
                    str(rec.detail("op")), int(rec.detail("seq"))
                )
            elif rec.event == "release":
                member = rec.source[: -len(".agent")]
                self._releases.setdefault(member, []).append(
                    (rec.time, str(rec.detail("op")), int(rec.detail("seq")))
                )
                self.checked += 1
        elif (
            rec.category == "fso"
            and rec.event == "single-accepted"
            and state.topology.shards
        ):
            signer = str(rec.detail("signer"))
            corr = tuple(rec.detail("corr") or ())
            self._accepted.setdefault((signer, corr), set()).add(
                str(rec.detail("digest"))
            )

    def finish(self, state) -> OracleVerdict:
        topology = state.topology
        seen_seq: dict[str, int] = dict(self._committed)
        released_at: dict[str, set[str]] = {}
        for member, releases in sorted(self._releases.items()):
            shard = topology.shard_of_member(member)
            previous: tuple[int, str] | None = None
            seen_ops: set[str] = set()
            for __, op, seq in releases:
                if op in seen_ops:
                    self._flag(state, f"{member} released {op} twice", source=member)
                seen_ops.add(op)
                released_at.setdefault(op, set()).add(member)
                involved = self._submitted.get(op)
                if involved is None or op not in self._committed:
                    self._flag(
                        state,
                        f"{member} released {op} which was never "
                        f"{'submitted' if involved is None else 'committed'}",
                        source=member,
                    )
                elif shard is not None and shard not in involved:
                    self._flag(
                        state,
                        f"{member} (shard {shard}) released {op} which only "
                        f"involves shards {involved}",
                        source=member,
                    )
                expected = seen_seq.setdefault(op, seq)
                if seq != expected:
                    self._flag(
                        state,
                        f"{member} released {op} at sequence {seq} but it was "
                        f"committed at {expected} (coordinator equivocation?)",
                        source=member,
                    )
                if previous is not None and (seq, op) <= previous:
                    self._flag(
                        state,
                        f"{member} released {op} (seq {seq}) after "
                        f"{previous[1]} (seq {previous[0]}) -- cross-shard "
                        f"order violated",
                        source=member,
                    )
                previous = (seq, op)
        # Completeness: a committed op reaches every live member of
        # every involved shard.
        for op, involved in sorted(self._submitted.items()):
            if op not in self._committed:
                continue
            self.checked += 1
            for shard in involved:
                if shard >= len(topology.shards):
                    continue
                for member in topology.shards[shard]:
                    pair = topology.pair_of_member(member)
                    node = pair.leader_node if pair is not None else member
                    if node in state.crashed_nodes:
                        continue
                    if member not in released_at.get(op, ()):
                        self._flag(
                            state,
                            f"committed op {op} was never released at {member} "
                            f"(shard {shard})",
                            source=member,
                        )
        # Shard integrity: unquarantined equivocation inside a shard --
        # either hard evidence (two validly signed conflicting
        # candidates from one signer) or a declared equivocation that
        # manifested, with no fail-signal excluding the pair either way.
        tainted: set[str] = set()
        candidates = {
            signer.split("#", 1)[0]
            for (signer, __), digests in self._accepted.items()
            if len(digests) >= 2
        }
        if topology.shards:
            candidates.update(
                fs_id
                for fs_id, fault in state.faults.items()
                if "equivocate" in fault.kinds
                and state.first_manifest.get(fs_id) is not None
            )
        for fs_id in sorted(candidates):
            if fs_id in tainted or fs_id in state.signals:
                continue
            tainted.add(fs_id)
            member = fs_id[: -len(".gc")] if fs_id.endswith(".gc") else fs_id
            shard = topology.shard_of_member(member)
            self._flag(
                state,
                f"shard-local equivocation by {fs_id} (shard {shard}) was never "
                f"quarantined by a fail-signal -- every sequence shard {shard} "
                f"reserved is tainted",
                source=fs_id,
            )
        return self._verdict(state)


class StateConsistencyOracle(Oracle):
    """The replicated KV application stays consistent (see
    :mod:`repro.app` and docs/APPLICATION.md).  Three rules:

    * **apply-faithfulness** -- each member applies exactly its
      totally-ordered delivery feed, in order: the ``appstate``/``apply``
      stream must replay the member's ``app``/``deliver`` stream
      key-for-key (skipped, reordered and phantom applications all
      surface here).  Checked only where the two streams are the same
      order by construction -- unsharded and single-shard runs; with
      S > 1 the holdback agents legally reorder cross-shard releases;
    * **checkpoint determinism** -- the state digest is a function of
      the applied history, so two checkpoints claiming the same history
      digest must claim the same state digest (this is what convicts a
      corrupted store or a forged certificate, crash or no crash); and
      on runs with no faults at all, every member of an agreement
      group/shard that checkpoints a seq must agree on *both* digests
      (the set-agreement gap around exclusions does not apply);
    * **recovery convergence** -- every ``recover-start`` is followed by
      a ``recover-complete`` within the detection deadline, and the
      rebuilt state's digest at its claimed seq must match a checkpoint
      some *other* member certified at that seq (a broken replay that
      still claims the target seq lands here).

    Vacuously green on runs without the application layer.
    """

    name = "state-consistency"

    def __init__(self) -> None:
        super().__init__()
        #: member -> delivered totally-ordered message keys, in order.
        self._delivered: dict[str, list[str]] = {}
        #: member -> how many deliveries have been matched by applies.
        self._applied_upto: dict[str, int] = {}
        self._apply_flagged: set[str] = set()
        #: (member, seq, digest, hist) per checkpoint record.
        self._checkpoints: list[tuple[str, int, str, str]] = []
        #: member -> (start time, per-spec deadline override or None).
        self._recover_started: dict[str, tuple[float, float | None]] = {}
        #: member -> (time, seq, digest) of its recover-complete.
        self._recover_done: dict[str, tuple[float, int, str]] = {}

    def observe(self, rec: TraceRecord, state) -> None:
        if rec.category == "app" and rec.event == "deliver":
            if rec.detail("service") in TOTAL_SERVICES:
                member = rec.source[: -len(".inv")]
                self._delivered.setdefault(member, []).append(str(rec.detail("key")))
            return
        if rec.category != "appstate":
            return
        member = rec.source[: -len(".kv")]
        if rec.event in ("apply", "duplicate"):
            self._observe_apply(member, rec, state)
        elif rec.event == "checkpoint":
            self._checkpoints.append(
                (
                    member,
                    int(rec.detail("seq")),
                    str(rec.detail("digest")),
                    str(rec.detail("hist")),
                )
            )
            self.checked += 1
        elif rec.event == "recover-start":
            override = rec.detail("deadline_ms")
            self._recover_started.setdefault(
                member, (rec.time, float(override) if override is not None else None)
            )
        elif rec.event == "recover-complete":
            self._recover_done.setdefault(
                member,
                (rec.time, int(rec.detail("seq")), str(rec.detail("digest"))),
            )

    def _observe_apply(self, member: str, rec: TraceRecord, state) -> None:
        if len(state.topology.shards) > 1:
            return  # holdback agents legally reorder cross-shard releases
        if member in self._apply_flagged:
            return
        self.checked += 1
        key = str(rec.detail("key"))
        position = self._applied_upto.get(member, 0)
        delivered = self._delivered.get(member, ())
        if position >= len(delivered) or delivered[position] != key:
            expected = delivered[position][:12] if position < len(delivered) else None
            self._apply_flagged.add(member)
            self._flag(
                state,
                f"{member} applied {key[:12]}... at position #{position} but its "
                f"delivery feed says "
                f"{'nothing is pending' if expected is None else expected + '...'}"
                f" -- skipped, reordered or phantom application",
                at=rec.time,
                source=rec.source,
            )
        self._applied_upto[member] = position + 1

    def finish(self, state) -> OracleVerdict:
        self._finish_applies(state)
        self._finish_checkpoints(state)
        self._finish_recoveries(state)
        return self._verdict(state)

    def _finish_applies(self, state) -> None:
        if len(state.topology.shards) > 1:
            return
        for member, upto in sorted(self._applied_upto.items()):
            if member in self._apply_flagged:
                continue
            delivered = len(self._delivered.get(member, ()))
            if upto < delivered and member not in self._recover_started:
                self._flag(
                    state,
                    f"{member} delivered {delivered} totally-ordered messages "
                    f"but applied only {upto} -- the store silently dropped "
                    f"the tail",
                    source=f"{member}.kv",
                )

    def _finish_checkpoints(self, state) -> None:
        # Determinism: equal history => equal state digest, universally.
        digest_of_hist: dict[str, tuple[str, str]] = {}
        for member, seq, digest, hist in self._checkpoints:
            known = digest_of_hist.setdefault(hist, (digest, member))
            if known[0] != digest:
                self._flag(
                    state,
                    f"{member} and {known[1]} certify the same applied history "
                    f"({hist[:12]}...) with different state digests "
                    f"({digest[:12]}... vs {known[0][:12]}...) -- a corrupted "
                    f"store or forged checkpoint",
                    source=f"{member}.kv",
                )
        # Strong agreement: with no faults injected and nothing crashed,
        # members of one agreement group checkpointing the same seq saw
        # the same deliveries -- they must agree outright.
        if state.faults or state.crashed_nodes or state.partition_groups:
            return
        scopes: dict[tuple, dict[int, tuple[str, str, str]]] = {}
        for member, seq, digest, hist in self._checkpoints:
            shard = state.topology.shard_of_member(member)
            scope = scopes.setdefault((shard,), {})
            known = scope.setdefault(seq, (digest, hist, member))
            if (digest, hist) != known[:2]:
                self._flag(
                    state,
                    f"{member} and {known[2]} disagree at checkpoint seq {seq} "
                    f"on a fault-free run ({digest[:12]}.../{hist[:12]}... vs "
                    f"{known[0][:12]}.../{known[1][:12]}...)",
                    source=f"{member}.kv",
                )

    def _finish_recoveries(self, state) -> None:
        certified: dict[int, dict[str, set[str]]] = {}
        for member, seq, digest, __ in self._checkpoints:
            certified.setdefault(seq, {}).setdefault(digest, set()).add(member)
        for member, (started, override) in sorted(self._recover_started.items()):
            deadline = (
                override if override is not None else state.config.detection_deadline_ms
            )
            self.checked += 1
            done = self._recover_done.get(member)
            if done is None:
                self._flag(
                    state,
                    f"{member} started recovery at {started:.1f}ms and never "
                    f"completed it (deadline {deadline:.0f}ms)",
                    at=started,
                    source=f"{member}.kv",
                )
                continue
            at, seq, digest = done
            if at - started > deadline:
                self._flag(
                    state,
                    f"{member} took {at - started:.1f}ms to recover "
                    f"(deadline {deadline:.0f}ms)",
                    at=at,
                    source=f"{member}.kv",
                )
            vouchers = certified.get(seq, {}).get(digest, set()) - {member}
            if not vouchers:
                self._flag(
                    state,
                    f"{member} recovered to seq {seq} with digest "
                    f"{digest[:12]}... that no other member ever certified -- "
                    f"the replayed state diverges",
                    at=at,
                    source=f"{member}.kv",
                )


ALL_ORACLES: tuple[typing.Type[Oracle], ...] = (
    TotalOrderOracle,
    ValidityOracle,
    FailSignalOracle,
    DoubleSignSoundnessOracle,
    EquivocationEvidenceOracle,
    NoForgeryOracle,
    CrossShardOrderOracle,
    StateConsistencyOracle,
)
