"""Structured audit results.

An :class:`AuditReport` is what one audited run produces: one
:class:`OracleVerdict` per invariant oracle, each carrying the
violations it found (empty means the invariant held), plus run-level
stats.  Reports are plain values -- deterministic for a given seed,
JSON-serialisable, and comparable across runs.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class Violation:
    """One pinpointed invariant breach."""

    oracle: str
    message: str
    at: float | None = None  # simulated ms, when attributable to an instant
    source: str | None = None  # trace source (member, pair, inbox...)

    def render(self) -> str:
        where = f" [{self.source}]" if self.source else ""
        when = f" @{self.at:.3f}ms" if self.at is not None else ""
        return f"{self.oracle}{where}{when}: {self.message}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True, slots=True)
class OracleVerdict:
    """One oracle's outcome over a whole run."""

    oracle: str
    checked: int  # how many facts the oracle actually examined
    violations: tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "checked": self.checked,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclasses.dataclass(frozen=True)
class AuditReport:
    """Every oracle's verdict for one audited run."""

    system: str
    seed: int
    verdicts: tuple[OracleVerdict, ...]
    stats: dict[str, float] = dataclasses.field(default_factory=dict)
    scenario: str | None = None

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def violations(self) -> tuple[Violation, ...]:
        return tuple(v for verdict in self.verdicts for v in verdict.violations)

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "seed": self.seed,
            "scenario": self.scenario,
            "ok": self.ok,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "stats": dict(self.stats),
        }

    def render(self) -> str:
        head = f"audit: system={self.system} seed={self.seed}"
        if self.scenario:
            head += f" scenario={self.scenario}"
        lines = [head]
        for verdict in self.verdicts:
            mark = "ok " if verdict.ok else "FAIL"
            lines.append(f"  [{mark}] {verdict.oracle:<24} checked={verdict.checked}")
            for violation in verdict.violations:
                lines.append(f"         - {violation.render()}")
        if self.stats:
            stats = " ".join(f"{k}={v:g}" for k, v in sorted(self.stats.items()))
            lines.append(f"  stats: {stats}")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)
