"""Signature schemes, signers and signed-message containers.

The fail-signal protocol needs exactly three signing operations:

* single-sign an output before forwarding it to the peer Compare thread;
* countersign a peer's single-signed message, producing the double-signed
  output that destinations accept as valid (both signatures, in either
  order, section 2.1);
* countersign the peer-supplied fail-signal blank when signalling.

A countersignature binds to the first signature, not just the payload, so
a faulty node cannot graft a stale second signature onto new content.
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
import hmac
import random
from typing import Any

from repro.crypto.canonical import canonical_encode
from repro.crypto.errors import SignatureInvalid
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair


@dataclasses.dataclass(frozen=True, slots=True)
class Signature:
    """A signature value attributed to a named identity."""

    signer: str
    value: Any


@dataclasses.dataclass(frozen=True, slots=True)
class Signed:
    """A payload with one signature."""

    payload: Any
    signature: Signature

    @property
    def signer(self) -> str:
        return self.signature.signer


@dataclasses.dataclass(frozen=True, slots=True)
class DoubleSigned:
    """A payload carrying two signatures; ``first`` was applied first.

    This is the only message form a correct process accepts as the output
    of a fail-signal process.
    """

    payload: Any
    first: Signature
    second: Signature

    @property
    def signers(self) -> tuple[str, str]:
        return (self.first.signer, self.second.signer)


def _payload_bytes(payload: Any) -> bytes:
    return canonical_encode(payload)


def _countersign_bytes(payload: Any, first: Signature) -> bytes:
    return canonical_encode((payload, first.signer, first.value))


class SignatureScheme(abc.ABC):
    """Key generation plus raw sign/verify over byte strings."""

    @abc.abstractmethod
    def generate(self, rng: random.Random) -> tuple[Any, Any]:
        """Return ``(private_material, public_material)``."""

    @abc.abstractmethod
    def sign(self, private: Any, data: bytes) -> Any:
        """Produce a signature value for ``data``."""

    @abc.abstractmethod
    def verify(self, public: Any, data: bytes, value: Any) -> bool:
        """Check a signature value against ``data``."""


class RsaScheme(SignatureScheme):
    """MD5-with-RSA, as in the paper's testbed.  From-scratch RSA."""

    def __init__(self, bits: int = 512) -> None:
        self.bits = bits

    def generate(self, rng: random.Random) -> tuple[RsaKeyPair, RsaPublicKey]:
        pair = generate_rsa_keypair(self.bits, rng)
        return pair, pair.public

    def sign(self, private: RsaKeyPair, data: bytes) -> int:
        return private.sign(data)

    def verify(self, public: RsaPublicKey, data: bytes, value: Any) -> bool:
        if not isinstance(value, int):
            return False
        return public.verify(data, value)


class HmacScheme(SignatureScheme):
    """HMAC-SHA256 per-identity MAC.

    Functionally interchangeable with :class:`RsaScheme` inside the
    simulation (the keystore is trusted infrastructure); orders of
    magnitude faster in host time for large benchmark sweeps.  Simulated
    time is unaffected -- costs come from :class:`CryptoCostModel`.
    """

    def generate(self, rng: random.Random) -> tuple[bytes, bytes]:
        secret = rng.getrandbits(256).to_bytes(32, "big")
        return secret, secret

    def sign(self, private: bytes, data: bytes) -> bytes:
        return hmac.new(private, data, hashlib.sha256).digest()

    def verify(self, public: bytes, data: bytes, value: Any) -> bool:
        if not isinstance(value, (bytes, bytearray)):
            return False
        expected = hmac.new(public, data, hashlib.sha256).digest()
        return hmac.compare_digest(expected, bytes(value))


class Signer:
    """Private signing capability bound to one identity.

    Created through :meth:`repro.crypto.KeyStore.new_signer`, which also
    registers the public half for verification.
    """

    def __init__(self, identity: str, scheme: SignatureScheme, private: Any) -> None:
        self.identity = identity
        self._scheme = scheme
        self._private = private

    def sign_bytes(self, data: bytes) -> Signature:
        return Signature(self.identity, self._scheme.sign(self._private, data))

    def sign_payload(self, payload: Any) -> Signed:
        """Single-sign an arbitrary canonical-encodable payload."""
        return Signed(payload, self.sign_bytes(_payload_bytes(payload)))

    def countersign(self, signed: Signed) -> DoubleSigned:
        """Add a second signature over (payload, first signature)."""
        value = self.sign_bytes(_countersign_bytes(signed.payload, signed.signature))
        return DoubleSigned(payload=signed.payload, first=signed.signature, second=value)

    def __repr__(self) -> str:
        return f"<Signer {self.identity!r}>"
