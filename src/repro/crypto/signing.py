"""Signature schemes, signers and signed-message containers.

The fail-signal protocol needs exactly three signing operations:

* single-sign an output before forwarding it to the peer Compare thread;
* countersign a peer's single-signed message, producing the double-signed
  output that destinations accept as valid (both signatures, in either
  order, section 2.1);
* countersign the peer-supplied fail-signal blank when signalling.

A countersignature binds to the first signature, not just the payload, so
a faulty node cannot graft a stale second signature onto new content.
"""

from __future__ import annotations

import abc
import dataclasses
import hmac
import random
from typing import Any, Callable, Sequence

from repro.crypto.canonical import canonical_encode
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.perf import VerifyCache, countersign_cache

#: The default signing codec: self-describing canonical encoding.
DEFAULT_CODEC = "canonical"


def payload_codec(codec: str | None) -> Callable[[Any], bytes]:
    """Resolve a signing-codec name to its encode function.

    ``None``/``"canonical"`` is the self-describing reference encoding;
    ``"binwire"`` is the compact binary codec.  Signers and keystores on
    the same run must agree on the codec -- the bytes being signed
    differ between the two.
    """
    if codec is None or codec == "canonical":
        return canonical_encode
    if codec == "binwire":
        from repro.crypto.binwire import binwire_encode

        return binwire_encode
    raise ValueError(
        f"unknown signing codec {codec!r}; known: ['binwire', 'canonical']"
    )


@dataclasses.dataclass(frozen=True, slots=True)
class Signature:
    """A signature value attributed to a named identity."""

    signer: str
    value: Any


@dataclasses.dataclass(frozen=True, slots=True)
class Signed:
    """A payload with one signature."""

    payload: Any
    signature: Signature

    @property
    def signer(self) -> str:
        return self.signature.signer


@dataclasses.dataclass(frozen=True, slots=True)
class DoubleSigned:
    """A payload carrying two signatures; ``first`` was applied first.

    This is the only message form a correct process accepts as the output
    of a fail-signal process.
    """

    payload: Any
    first: Signature
    second: Signature

    @property
    def signers(self) -> tuple[str, str]:
        return (self.first.signer, self.second.signer)


def _payload_bytes(
    payload: Any, encode: Callable[[Any], bytes] = canonical_encode
) -> bytes:
    return encode(payload)


def _countersign_bytes(
    payload: Any,
    first: Signature,
    encode: Callable[[Any], bytes] = canonical_encode,
) -> bytes:
    return encode((payload, first.signer, first.value))


def _double_countersign_bytes(
    message: DoubleSigned,
    codec: str = DEFAULT_CODEC,
    encode: Callable[[Any], bytes] = canonical_encode,
) -> bytes:
    """Countersign bytes of a double-signed message, memoised by the
    message's identity (safe: ``DoubleSigned`` is frozen, so the same
    object always yields the same ``(payload, first)`` pair -- a grafted
    second signature necessarily lives in a *different* message object).
    Entries record the codec they were derived under, so a message
    crossing between differently-configured keystores (the differential
    suite does exactly that) can never serve bytes from the wrong codec.
    """
    cached = countersign_cache.get(message)
    if cached is not None and cached[0] == codec:
        return cached[1]
    data = _countersign_bytes(message.payload, message.first, encode)
    countersign_cache.put(message, (codec, data))
    return data


class SignatureScheme(abc.ABC):
    """Key generation plus raw sign/verify over byte strings."""

    #: Entry bound of the per-instance verification memo.
    verify_cache_size = 16384

    @abc.abstractmethod
    def generate(self, rng: random.Random) -> tuple[Any, Any]:
        """Return ``(private_material, public_material)``."""

    @abc.abstractmethod
    def sign(self, private: Any, data: bytes) -> Any:
        """Produce a signature value for ``data``."""

    @abc.abstractmethod
    def verify(self, public: Any, data: bytes, value: Any) -> bool:
        """Check a signature value against ``data``."""

    def verify_cached(self, public: Any, data: bytes, value: Any) -> bool:
        """:meth:`verify`, memoised per scheme instance.

        The n destinations of a double-signed multicast all check the
        same ``(signer, message digest, signature)`` triple; the first
        check does the work, the rest hit the memo.  The signer is keyed
        by its *public material* rather than its identity string, so the
        cache stays correct even if two callers bind the same name to
        different keys.  The message is keyed by its full canonical
        bytes: CPython caches a bytes object's hash, and the encode memo
        hands every verifier the *same* bytes object, so the digesting
        is paid once per message rather than per check (and, unlike a
        truncated digest, cannot collide).  Unhashable signature values
        fall back to direct verification.

        The cache lives on the scheme instance (one per simulation's
        keystore), created lazily so subclasses need no ``__init__``
        cooperation.
        """
        cache = getattr(self, "_verify_cache", None) or self._make_verify_cache()
        key = (public, data, value)
        try:
            verdict = cache.get(key)
        except TypeError:
            return self.verify(public, data, value)
        if verdict is None:
            verdict = self.verify(public, data, value)
            cache.put(key, verdict)
        return verdict

    def seed_verified(self, public: Any, data: bytes, value: Any) -> None:
        """Record that ``value`` is ``public``'s valid signature of
        ``data`` without running verification.

        Only the *signer* may call this, for a signature it just
        produced: ``verify(public, data, sign(private, data))`` is an
        identity of the scheme, so the seeded verdict is exactly what
        :meth:`verify_cached` would compute -- the first destination
        simply no longer pays for it.  The verdict is keyed by the full
        ``(public material, message bytes, signature)`` triple, so it
        says nothing about any *other* data or signature value.
        """
        cache = getattr(self, "_verify_cache", None) or self._make_verify_cache()
        try:
            cache.put((public, data, value), True)
        except TypeError:
            pass

    def verify_many(self, items: Sequence[tuple[Any, bytes, Any]]) -> bool:
        """All-or-nothing verification of a batch of
        ``(public, data, value)`` triples.

        The reference implementation loops :meth:`verify_cached`; it
        deliberately checks every item rather than short-circuiting, so
        the memo is warm for whichever destination checks next.
        Providers with genuinely amortised batch verification override
        this (see :class:`repro.crypto.ed25519.Ed25519Scheme`), and the
        batched compare path feeds both signatures of a double-signed
        output through it in one call.
        """
        ok = True
        for public, data, value in items:
            if not self.verify_cached(public, data, value):
                ok = False
        return ok

    def _make_verify_cache(self) -> VerifyCache:
        """Lazy per-instance cache creation (subclasses need no
        ``__init__`` cooperation)."""
        cache = VerifyCache(self.verify_cache_size)
        self._verify_cache = cache
        return cache


class RsaScheme(SignatureScheme):
    """MD5-with-RSA, as in the paper's testbed.  From-scratch RSA."""

    def __init__(self, bits: int = 512) -> None:
        self.bits = bits

    def generate(self, rng: random.Random) -> tuple[RsaKeyPair, RsaPublicKey]:
        pair = generate_rsa_keypair(self.bits, rng)
        return pair, pair.public

    def sign(self, private: RsaKeyPair, data: bytes) -> int:
        return private.sign(data)

    def verify(self, public: RsaPublicKey, data: bytes, value: Any) -> bool:
        if not isinstance(value, int):
            return False
        return public.verify(data, value)


class HmacScheme(SignatureScheme):
    """HMAC-SHA256 per-identity MAC.

    Functionally interchangeable with :class:`RsaScheme` inside the
    simulation (the keystore is trusted infrastructure); orders of
    magnitude faster in host time for large benchmark sweeps.  Simulated
    time is unaffected -- costs come from :class:`CryptoCostModel`.
    """

    def generate(self, rng: random.Random) -> tuple[bytes, bytes]:
        secret = rng.getrandbits(256).to_bytes(32, "big")
        return secret, secret

    def sign(self, private: bytes, data: bytes) -> bytes:
        # hmac.digest is the one-shot C path -- same output as
        # hmac.new(...).digest(), materially faster per call.
        return hmac.digest(private, data, "sha256")

    def verify(self, public: bytes, data: bytes, value: Any) -> bool:
        if not isinstance(value, (bytes, bytearray)):
            return False
        expected = hmac.digest(public, data, "sha256")
        return hmac.compare_digest(expected, bytes(value))


class Signer:
    """Private signing capability bound to one identity.

    Created through :meth:`repro.crypto.KeyStore.new_signer`, which also
    registers the public half for verification.  When the signer knows
    its own public material it seeds the scheme's verification memo for
    each signature it produces (see :meth:`SignatureScheme.seed_verified`).
    """

    def __init__(
        self,
        identity: str,
        scheme: SignatureScheme,
        private: Any,
        public: Any = None,
        codec: str | None = None,
    ) -> None:
        self.identity = identity
        self._scheme = scheme
        self._private = private
        self._public = public
        self._codec = codec if codec is not None else DEFAULT_CODEC
        self._encode = payload_codec(codec)

    @property
    def scheme_name(self) -> str:
        """The signature scheme's class name (metric label material)."""
        return type(self._scheme).__name__

    @property
    def codec(self) -> str:
        """The signing codec this signer encodes payloads with."""
        return self._codec

    def sign_bytes(self, data: bytes) -> Signature:
        value = self._scheme.sign(self._private, data)
        if self._public is not None:
            self._scheme.seed_verified(self._public, data, value)
        return Signature(self.identity, value)

    def sign_payload(self, payload: Any) -> Signed:
        """Single-sign an arbitrary encodable payload."""
        return Signed(payload, self.sign_bytes(_payload_bytes(payload, self._encode)))

    def countersign(self, signed: Signed) -> DoubleSigned:
        """Add a second signature over (payload, first signature)."""
        data = _countersign_bytes(signed.payload, signed.signature, self._encode)
        value = self.sign_bytes(data)
        double = DoubleSigned(payload=signed.payload, first=signed.signature, second=value)
        # Verifiers need these exact bytes (see _double_countersign_bytes);
        # they were just computed, so seed the memo instead of letting the
        # first destination re-derive them.
        countersign_cache.put(double, (self._codec, data))
        return double

    def __repr__(self) -> str:
        return f"<Signer {self.identity!r}>"
