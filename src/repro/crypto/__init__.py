"""Message signing and authentication substrate (assumption A5).

The paper assumes: *"a process of a correct node can sign the messages it
sends and the signed message cannot be generated nor undetectably altered
by a process in another node"* (A5), realised in their testbed with the
Java security package (MD5 digests, RSA signatures).

We provide three signature schemes behind one interface, selected per
scenario through :class:`CryptoSpec` (see :mod:`repro.crypto.provider`):

* :class:`RsaScheme` -- textbook RSA built from scratch (Miller-Rabin
  prime generation, square-and-multiply modexp) over MD5 digests.  A
  Byzantine node genuinely cannot forge its peer's signature here; A5
  holds by arithmetic, not by simulator fiat.
* :class:`HmacScheme` -- an HMAC-SHA256 MAC keyed per identity.  It is
  symmetric (the keystore can both produce and check tags), which is fine
  inside a simulation where the keystore is trusted infrastructure; it
  exists because large benchmark sweeps need thousands of signatures and
  pure-Python RSA would dominate wall-clock time.
* :class:`Ed25519Scheme` -- C-backed ed25519 via the ``cryptography``
  package (``repro[fastcrypto]`` extra, import-gated with graceful
  fallback), with amortised batch verification for the batched compare
  path.

Orthogonally, the *bytes being signed and framed* come from one of two
codecs: the self-describing canonical encoding or the compact
:mod:`binwire <repro.crypto.binwire>` format.

Either way, the *simulated* CPU cost of each operation is charged
through :class:`CryptoCostModel`.  The cost table is provider-aware
(:func:`provider_cost_model`): by default a faster provider honestly
shrinks simulated deadlines, while ``CryptoSpec(costs="paper")`` pins
the paper's RSA table so simulated results stay provider-independent.
"""

from repro.crypto.binwire import BinwireError, binwire_decode, binwire_encode
from repro.crypto.canonical import CanonicalEncodingError, canonical_encode
from repro.crypto.costmodel import (
    CryptoCostModel,
    PROVIDER_COSTS,
    provider_cost_model,
)
from repro.crypto.digest import md5_digest, md5_hexdigest, md5_int
from repro.crypto.ed25519 import HAVE_ED25519, Ed25519Scheme, Ed25519Unavailable
from repro.crypto.errors import (
    CryptoError,
    SignatureInvalid,
    UnknownSigner,
)
from repro.crypto.keystore import KeyStore
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.provider import (
    CryptoSpec,
    ProviderUnavailable,
    build_scheme,
    provider_available,
    provider_names,
)
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.crypto.signing import (
    DoubleSigned,
    HmacScheme,
    RsaScheme,
    SignatureScheme,
    Signed,
    Signer,
    payload_codec,
)

__all__ = [
    "BinwireError",
    "CanonicalEncodingError",
    "CryptoCostModel",
    "CryptoError",
    "CryptoSpec",
    "DoubleSigned",
    "Ed25519Scheme",
    "Ed25519Unavailable",
    "HAVE_ED25519",
    "HmacScheme",
    "KeyStore",
    "PROVIDER_COSTS",
    "ProviderUnavailable",
    "RsaKeyPair",
    "RsaPublicKey",
    "RsaScheme",
    "SignatureInvalid",
    "SignatureScheme",
    "Signed",
    "Signer",
    "UnknownSigner",
    "binwire_decode",
    "binwire_encode",
    "build_scheme",
    "canonical_encode",
    "generate_prime",
    "generate_rsa_keypair",
    "is_probable_prime",
    "md5_digest",
    "md5_hexdigest",
    "md5_int",
    "payload_codec",
    "provider_available",
    "provider_cost_model",
    "provider_names",
]
