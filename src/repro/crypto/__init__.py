"""Message signing and authentication substrate (assumption A5).

The paper assumes: *"a process of a correct node can sign the messages it
sends and the signed message cannot be generated nor undetectably altered
by a process in another node"* (A5), realised in their testbed with the
Java security package (MD5 digests, RSA signatures).

We provide two interchangeable signature schemes behind one interface:

* :class:`RsaScheme` -- textbook RSA built from scratch (Miller-Rabin
  prime generation, square-and-multiply modexp) over MD5 digests.  A
  Byzantine node genuinely cannot forge its peer's signature here; A5
  holds by arithmetic, not by simulator fiat.
* :class:`HmacScheme` -- an HMAC-SHA256 MAC keyed per identity.  It is
  symmetric (the keystore can both produce and check tags), which is fine
  inside a simulation where the keystore is trusted infrastructure; it
  exists because large benchmark sweeps need thousands of signatures and
  pure-Python RSA would dominate wall-clock time.

Either way, the *simulated* CPU cost of each operation is charged through
:class:`CryptoCostModel`, calibrated to 2003-era MD5-with-RSA latencies,
so the choice of scheme changes host wall-clock time but never the
simulated results.
"""

from repro.crypto.canonical import CanonicalEncodingError, canonical_encode
from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.digest import md5_digest, md5_hexdigest, md5_int
from repro.crypto.errors import (
    CryptoError,
    SignatureInvalid,
    UnknownSigner,
)
from repro.crypto.keystore import KeyStore
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.crypto.signing import (
    DoubleSigned,
    HmacScheme,
    RsaScheme,
    SignatureScheme,
    Signed,
    Signer,
)

__all__ = [
    "CanonicalEncodingError",
    "CryptoCostModel",
    "CryptoError",
    "DoubleSigned",
    "HmacScheme",
    "KeyStore",
    "RsaKeyPair",
    "RsaPublicKey",
    "RsaScheme",
    "SignatureInvalid",
    "SignatureScheme",
    "Signed",
    "Signer",
    "UnknownSigner",
    "canonical_encode",
    "generate_prime",
    "generate_rsa_keypair",
    "is_probable_prime",
    "md5_digest",
    "md5_hexdigest",
    "md5_int",
]
