"""Crypto provider registry and the per-scenario ``CryptoSpec``.

The crypto engine has two independently selectable axes:

* **provider** -- which :class:`~repro.crypto.signing.SignatureScheme`
  signs and verifies: the paper-faithful pure-python ``rsa``, the fast
  pure-python ``hmac`` reference, or the C-backed ``ed25519``
  (``repro[fastcrypto]`` extra, import-gated);
* **codec** -- which byte encoding is signed and framed: the
  self-describing ``canonical`` reference or the compact ``binwire``
  format (:mod:`repro.crypto.binwire`).

:class:`CryptoSpec` names a point on that grid plus the ``costs``
policy that keeps simulated time honest: ``"provider"`` charges the
provider's measured cost table (:data:`repro.crypto.costmodel
.PROVIDER_COSTS`), ``"paper"`` pins the paper's RSA table regardless of
provider -- which is what the cross-provider differential suite uses to
demand bit-identical traces from different providers.

The registry is deliberately closed (a dict of constructors, not an
entry-point scan): an experiment spec can only name schemes this module
vouches for, and availability is probed up front so a missing extra
degrades into a clear error or an explicit fallback, never an import
crash mid-run.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.crypto.costmodel import CryptoCostModel, provider_cost_model
from repro.crypto.ed25519 import Ed25519Scheme, probe as _ed25519_probe
from repro.crypto.signing import HmacScheme, RsaScheme, SignatureScheme

#: Provider used when a spec leaves the choice open.  HMAC, not RSA:
#: same simulated timings (they share a cost table), far cheaper host
#: time, no optional dependency.
DEFAULT_PROVIDER = "hmac"

#: Codec used when a spec leaves the choice open.
DEFAULT_CODEC = "canonical"

#: Cost policy names accepted by :class:`CryptoSpec`.
COST_POLICIES = ("provider", "paper")


class ProviderUnavailable(RuntimeError):
    """A spec asked for a provider whose backend is not installed."""


@dataclasses.dataclass(frozen=True, slots=True)
class _Provider:
    """One registry row: how to build the scheme, and whether we can."""

    name: str
    factory: Callable[[], SignatureScheme]
    available: Callable[[], bool]
    requires: str | None = None


def _always(available: bool = True) -> Callable[[], bool]:
    return lambda: available


_PROVIDERS: dict[str, _Provider] = {
    "rsa": _Provider("rsa", RsaScheme, _always()),
    "hmac": _Provider("hmac", HmacScheme, _always()),
    "ed25519": _Provider(
        "ed25519", Ed25519Scheme, _ed25519_probe, requires="fastcrypto"
    ),
}


def provider_names() -> list[str]:
    """Every registered provider name, available or not."""
    return sorted(_PROVIDERS)


def provider_available(name: str) -> bool:
    """Whether ``name`` is registered and its backend works here."""
    row = _PROVIDERS.get(name)
    return row is not None and row.available()


def build_scheme(name: str) -> SignatureScheme:
    """Construct a fresh scheme instance for provider ``name``.

    A fresh instance per call: schemes carry per-instance verification
    memos, and two concurrent simulations must not share one.
    """
    row = _PROVIDERS.get(name)
    if row is None:
        raise ValueError(
            f"unknown crypto provider {name!r}; known: {provider_names()}"
        )
    if not row.available():
        extra = f" (install the {row.requires!r} extra)" if row.requires else ""
        raise ProviderUnavailable(
            f"crypto provider {name!r} is not available on this host{extra}"
        )
    return row.factory()


@dataclasses.dataclass(frozen=True, slots=True)
class CryptoSpec:
    """Crypto engine selection for one scenario.

    ``fallback=True`` (the default for specs built from CLI overlays)
    degrades an unavailable provider to :data:`DEFAULT_PROVIDER` with
    paper costs instead of raising, so a scenario file written on a
    fastcrypto host still runs -- more slowly, honestly -- on a bare
    one.  Programmatic specs that *require* the fast path set
    ``fallback=False`` and get :class:`ProviderUnavailable`.
    """

    provider: str = DEFAULT_PROVIDER
    codec: str = DEFAULT_CODEC
    costs: str = "provider"
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.provider not in _PROVIDERS:
            raise ValueError(
                f"unknown crypto provider {self.provider!r}; "
                f"known: {provider_names()}"
            )
        if self.codec not in ("canonical", "binwire"):
            raise ValueError(
                f"unknown signing codec {self.codec!r}; "
                f"known: ['binwire', 'canonical']"
            )
        if self.costs not in COST_POLICIES:
            raise ValueError(
                f"unknown crypto cost policy {self.costs!r}; "
                f"known: {list(COST_POLICIES)}"
            )
        if not isinstance(self.fallback, bool):
            raise ValueError(f"fallback must be a bool, got {self.fallback!r}")

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolved_provider(self) -> str:
        """The provider that will actually run here, honouring
        ``fallback``."""
        if provider_available(self.provider):
            return self.provider
        if self.fallback:
            return DEFAULT_PROVIDER
        raise ProviderUnavailable(
            f"crypto provider {self.provider!r} is not available on this "
            f"host and the spec forbids fallback"
        )

    def scheme(self) -> SignatureScheme:
        """A fresh scheme instance for the resolved provider."""
        return build_scheme(self.resolved_provider())

    def cost_model(self) -> CryptoCostModel:
        """The simulated cost table this spec charges.

        ``costs="provider"`` uses the resolved provider's measured
        table -- deadlines genuinely shrink with a faster provider.
        ``costs="paper"`` pins the paper's RSA table, which keeps
        simulated results identical across providers (the differential
        suite's configuration).
        """
        if self.costs == "paper":
            return CryptoCostModel()
        return provider_cost_model(self.resolved_provider())

    # ------------------------------------------------------------------
    # serialisation (ScenarioSpec round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "provider": self.provider,
            "codec": self.codec,
            "costs": self.costs,
            "fallback": self.fallback,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CryptoSpec":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CryptoSpec keys: {sorted(unknown)}")
        return cls(**data)
