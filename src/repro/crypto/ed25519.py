"""Ed25519 signature scheme backed by the ``cryptography`` package.

This is the "fast provider" half of the crypto v2 seam: the pure-python
:class:`~repro.crypto.signing.RsaScheme` stays as the paper-faithful
reference, and this scheme drops in behind the same
:class:`~repro.crypto.signing.SignatureScheme` interface when the
``repro[fastcrypto]`` extra is installed.  Import is gated: the module
always imports, :data:`HAVE_ED25519` says whether the backing library
is present, and constructing :class:`Ed25519Scheme` without it raises a
clear error (the provider registry reports availability up front, see
:mod:`repro.crypto.provider`).

Determinism contract: key material is derived from the keystore RNG
(32-byte seed from ``rng.getrandbits``), exactly like the pure-python
schemes -- the same scenario seed yields the same keys, signatures and
verdicts run over run, which is what the cross-provider differential
suite pins.

Host-time behaviour: sign/verify run in C (OpenSSL), and
:meth:`Ed25519Scheme.verify_many` amortises batch verification by
parsing each public key once and draining the whole batch in one pass
-- the batched compare path hands it both signatures of a
``DoubleSigned`` output together.  Simulated time is still charged by
the cost model; selecting this provider switches to the measured
ed25519 cost table unless the spec pins ``costs="paper"``
(see :mod:`repro.crypto.costmodel`).
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.crypto.signing import SignatureScheme

try:  # pragma: no cover - exercised via HAVE_ED25519 in both states
    from cryptography.exceptions import InvalidSignature
    from cryptography.hazmat.primitives.asymmetric.ed25519 import (
        Ed25519PrivateKey,
        Ed25519PublicKey,
    )

    HAVE_ED25519 = True
except ImportError:  # pragma: no cover
    InvalidSignature = None  # type: ignore[assignment]
    Ed25519PrivateKey = None  # type: ignore[assignment]
    Ed25519PublicKey = None  # type: ignore[assignment]
    HAVE_ED25519 = False

#: Length of both private seeds and public keys, in bytes.
KEY_BYTES = 32
#: Length of an ed25519 signature, in bytes.
SIGNATURE_BYTES = 64


class Ed25519Unavailable(RuntimeError):
    """Raised when the ``cryptography`` backend is not installed."""

    def __init__(self) -> None:
        super().__init__(
            "the ed25519 provider needs the 'cryptography' package; "
            "install the fastcrypto extra (pip install 'repro[fastcrypto]') "
            "or select a pure-python provider"
        )


class Ed25519Scheme(SignatureScheme):
    """Ed25519 over raw 32-byte seeds and public keys.

    Key *material* is plain bytes -- a 32-byte private seed and the
    matching 32-byte public key -- so keys stay hashable (the
    verification memo keys on public material) and picklable, and the
    differential suite can compare keystores byte-for-byte.  Parsed
    key objects are memoised per scheme instance: one simulation signs
    with a handful of identities but verifies millions of times, so
    parsing is paid once per key, not per operation.
    """

    def __init__(self) -> None:
        if not HAVE_ED25519:
            raise Ed25519Unavailable()
        self._private_keys: dict[bytes, Any] = {}
        self._public_keys: dict[bytes, Any] = {}

    def generate(self, rng: random.Random) -> tuple[bytes, bytes]:
        seed = rng.getrandbits(8 * KEY_BYTES).to_bytes(KEY_BYTES, "big")
        public = (
            Ed25519PrivateKey.from_private_bytes(seed)
            .public_key()
            .public_bytes_raw()
        )
        return seed, public

    def _private_key(self, seed: bytes) -> Any:
        key = self._private_keys.get(seed)
        if key is None:
            key = Ed25519PrivateKey.from_private_bytes(seed)
            self._private_keys[seed] = key
        return key

    def _public_key(self, public: bytes) -> Any:
        key = self._public_keys.get(public)
        if key is None:
            key = Ed25519PublicKey.from_public_bytes(public)
            self._public_keys[public] = key
        return key

    def sign(self, private: bytes, data: bytes) -> bytes:
        return self._private_key(private).sign(data)

    def verify(self, public: bytes, data: bytes, value: Any) -> bool:
        if not isinstance(value, (bytes, bytearray)):
            return False
        if len(value) != SIGNATURE_BYTES:
            return False
        if not isinstance(public, (bytes, bytearray)) or len(public) != KEY_BYTES:
            return False
        try:
            self._public_key(bytes(public)).verify(bytes(value), data)
        except InvalidSignature:
            return False
        return True

    def verify_many(
        self, items: Sequence[tuple[Any, bytes, Any]]
    ) -> bool:
        """Amortised batch verification: all-or-nothing over ``items``.

        The base implementation (see :class:`SignatureScheme`) loops
        ``verify_cached``; this override keeps the memo but short-cuts
        the miss path -- every missed item is checked against its
        pre-parsed key in one drain, and the memo is seeded for the
        whole batch, so the n destinations of a multicast collectively
        pay one pass of C-level verifies.
        """
        cache = getattr(self, "_verify_cache", None) or self._make_verify_cache()
        pending: list[tuple[Any, Any, bytes, Any]] = []
        ok = True
        for public, data, value in items:
            key = (public, data, value)
            try:
                verdict = cache.get(key)
            except TypeError:
                verdict = self.verify(public, data, value)
                key = None
            if verdict is None:
                pending.append((key, public, data, value))
            elif not verdict:
                ok = False
        for key, public, data, value in pending:
            verdict = self.verify(public, data, value)
            if key is not None:
                cache.put(key, verdict)
            if not verdict:
                ok = False
        return ok


def probe() -> bool:
    """True when the backend is importable *and* functional (a broken
    OpenSSL build should fall back, not crash the runner)."""
    if not HAVE_ED25519:
        return False
    try:
        scheme = Ed25519Scheme()
        private, public = scheme.generate(random.Random(0))
        return scheme.verify(public, b"probe", scheme.sign(private, b"probe"))
    except Exception:  # pragma: no cover - defensive
        return False
