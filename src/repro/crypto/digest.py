"""MD5 digests.

The paper's testbed signs MD5 digests ("MD5 using RSA encryption
signature algorithm", section 4).  MD5 is cryptographically broken today,
but fidelity to the paper matters more than collision resistance inside a
simulation, and ``hashlib`` provides a well-tested implementation.
"""

from __future__ import annotations

import hashlib


def md5_digest(data: bytes) -> bytes:
    """16-byte MD5 digest of ``data``."""
    return hashlib.md5(data).digest()


def md5_hexdigest(data: bytes) -> str:
    """Hex form of :func:`md5_digest`."""
    return hashlib.md5(data).hexdigest()


def md5_int(data: bytes) -> int:
    """MD5 digest interpreted as a big-endian integer.

    This is the value the textbook-RSA signer exponentiates; it is always
    below any modulus of 129 bits or more.
    """
    return int.from_bytes(md5_digest(data), "big")
