"""Simulated CPU cost of cryptographic operations.

The paper attributes FS-NewTOP's extra latency to three sources, two of
them cryptographic: "authenticating input messages ... and the signing of
output messages (performed using the Java security package with MD5 using
RSA encryption signature algorithm)".  This model charges those costs to
the node CPU in virtual time.

Defaults are calibrated jointly with :class:`repro.corba.OrbCostModel`:
what the figures reproduce is the *ratio* of signing work to protocol
work, so the RSA private-key operation is set to about one ORB dispatch
(the paper's JVM dispatch path was heavyweight relative to its crypto),
a public-key verification to a small fraction of that, and MD5 linear
in message size.  The crypto-cost ablation benchmark sweeps the whole
model up and down around these defaults.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class CryptoCostModel:
    """Per-operation virtual CPU costs, in milliseconds."""

    sign_base_ms: float = 0.5
    verify_base_ms: float = 0.15
    digest_ms_per_kb: float = 0.05
    digest_base_ms: float = 0.005
    #: Cost of checking *both* signatures of a double-signed output,
    #: relative to one verification.  The sequential reference path pays
    #: the full 2.0; a provider with amortised batch verification (one
    #: key-parse pass, one digest walk for both checks) pays less.
    pair_verify_factor: float = 2.0

    def digest_cost(self, size_bytes: int) -> float:
        """Cost of hashing ``size_bytes`` of input."""
        return self.digest_base_ms + self.digest_ms_per_kb * (size_bytes / 1024.0)

    def sign_cost(self, size_bytes: int) -> float:
        """Cost of one signature: digest the message, then one RSA
        private-key exponentiation (size-independent)."""
        return self.sign_base_ms + self.digest_cost(size_bytes)

    def verify_cost(self, size_bytes: int) -> float:
        """Cost of one verification: digest plus a cheap public-key op."""
        return self.verify_base_ms + self.digest_cost(size_bytes)

    def double_verify_cost(self, size_bytes: int) -> float:
        """Cost of accepting a double-signed message (both signatures)."""
        return self.verify_cost(size_bytes) * self.pair_verify_factor

    def scaled(self, factor: float) -> "CryptoCostModel":
        """A copy with every per-operation cost multiplied by ``factor``
        (used by the crypto-cost ablation benchmark).  The pair factor
        is a *ratio*, so it is carried, not scaled."""
        return CryptoCostModel(
            sign_base_ms=self.sign_base_ms * factor,
            verify_base_ms=self.verify_base_ms * factor,
            digest_ms_per_kb=self.digest_ms_per_kb * factor,
            digest_base_ms=self.digest_base_ms * factor,
            pair_verify_factor=self.pair_verify_factor,
        )


#: Zero-cost model: crypto is free.  Used to isolate protocol-structure
#: overhead from crypto overhead in ablations.
FREE_CRYPTO = CryptoCostModel(
    sign_base_ms=0.0, verify_base_ms=0.0, digest_ms_per_kb=0.0, digest_base_ms=0.0
)


#: Per-provider simulated cost tables.  The paper's table ("rsa") is
#: the calibration anchor; "hmac" deliberately reuses it -- the HMAC
#: scheme exists to cut *host* time on big sweeps while reproducing the
#: paper's *simulated* timings bit-for-bit.  The "ed25519" table models
#: the measured C-backed provider: roughly 10x cheaper signatures, ~7x
#: cheaper verifies, faster digesting, and a sub-2.0 pair factor from
#: amortised batch verification of the two signatures on a
#: double-signed output.
PROVIDER_COSTS: dict[str, CryptoCostModel] = {
    "rsa": CryptoCostModel(),
    "hmac": CryptoCostModel(),
    "ed25519": CryptoCostModel(
        sign_base_ms=0.05,
        verify_base_ms=0.02,
        digest_ms_per_kb=0.01,
        digest_base_ms=0.001,
        pair_verify_factor=1.25,
    ),
}


def provider_cost_model(provider: str) -> CryptoCostModel:
    """The simulated cost table for a named crypto provider."""
    try:
        return PROVIDER_COSTS[provider]
    except KeyError:
        raise ValueError(
            f"no cost table for crypto provider {provider!r}; "
            f"known: {sorted(PROVIDER_COSTS)}"
        ) from None
