"""Crypto-layer exceptions."""


class CryptoError(Exception):
    """Base class for crypto substrate failures."""


class SignatureInvalid(CryptoError):
    """A signature failed verification (wrong key, tampered payload...)."""


class UnknownSigner(CryptoError):
    """The keystore has no public key registered for the claimed signer."""
