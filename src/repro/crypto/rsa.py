"""Textbook RSA, implemented from scratch.

Signatures are RSA exponentiations of MD5 digests ("MD5 with RSA", as the
paper's testbed).  No padding scheme is applied: the message space is the
16-byte digest, far below the modulus, and the adversary model of the
paper (a faulty *node*, not a cryptanalyst) does not include chosen-
message forgery games.  What matters for assumption A5 -- that a replica
cannot fabricate its peer's signature -- holds.
"""

from __future__ import annotations

import dataclasses
import random

from repro.crypto.digest import md5_int
from repro.crypto.primes import generate_prime


def reduce_digest(digest: int, modulus: int) -> int:
    """The digest-reduction rule shared by signing and verification.

    RSA operates on residues mod ``n``, so a digest at or above the
    modulus is signed -- and must be verified -- as ``digest % n``.
    With the enforced >= 136-bit modulus an MD5 digest (128 bits) never
    actually reduces; the rule exists so that callers feeding raw
    integers get one explicit, symmetric behaviour instead of an
    implicit ``%`` on one side only.  Negative digests have no defined
    encoding and are rejected outright.
    """
    if digest < 0:
        raise ValueError(f"digest must be >= 0, got {digest}")
    return digest % modulus


@dataclasses.dataclass(frozen=True, slots=True)
class RsaPublicKey:
    """Public half of an RSA keypair: modulus and public exponent."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def verify_int(self, digest: int, signature: int) -> bool:
        """Check ``signature^e mod n == reduce_digest(digest, n)``."""
        if not 0 <= signature < self.n:
            return False
        return pow(signature, self.e, self.n) == reduce_digest(digest, self.n)

    def verify(self, data: bytes, signature: int) -> bool:
        return self.verify_int(md5_int(data), signature)


@dataclasses.dataclass(frozen=True, slots=True)
class RsaKeyPair:
    """Full RSA keypair.  Only the owner process holds this object."""

    public: RsaPublicKey
    d: int

    def sign_int(self, digest: int) -> int:
        return pow(reduce_digest(digest, self.public.n), self.d, self.public.n)

    def sign(self, data: bytes) -> int:
        """Sign the MD5 digest of ``data``."""
        return self.sign_int(md5_int(data))


def _modinv(a: int, m: int) -> int:
    """Modular inverse by extended Euclid."""
    g, x = _extended_gcd(a, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return (gcd, x) with a*x === gcd (mod b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    return old_r, old_s


def generate_rsa_keypair(bits: int = 512, rng: random.Random | None = None) -> RsaKeyPair:
    """Generate an RSA keypair with a ``bits``-bit modulus.

    512-bit keys are the default: era-appropriate (the paper predates
    widespread 2048-bit deployment) and fast enough for pure-Python
    simulation.  The modulus must exceed 128 bits so MD5 digests embed
    without reduction.
    """
    if bits < 136:
        raise ValueError(f"modulus must be >= 136 bits to sign MD5 digests, got {bits}")
    if rng is None:
        rng = random.Random()
    e = 65537
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = _modinv(e, phi)
        return RsaKeyPair(public=RsaPublicKey(n=n, e=e), d=d)
