"""Compact binary wire codec (the "binwire" format).

The canonical encoding (:mod:`repro.crypto.canonical`) is deliberately
self-describing: every dataclass instance carries its qualname and every
field carries its name, all behind 4-byte lengths.  That redundancy is
what makes the reference decoder in :mod:`repro.transport.wire` strict
and debuggable, but on the signing and TCP-framing hot paths it is pure
overhead -- a 3-byte ``FsOutput`` payload encodes to hundreds of bytes,
most of them field-name strings the receiver already knows.

Binwire is the compact alternative behind the same seam
(:class:`repro.crypto.provider.CryptoSpec` selects it per run):

* one explicit **version byte** leads every encoding, so a format
  change can never be confused for the old layout;
* single-byte numeric type tags and LEB128 varints replace the ASCII
  tags and 4-byte lengths;
* a dataclass encodes as a fixed 4-byte **type id** -- the truncated
  MD5 of its qualname, collision-checked against the closed wire-type
  registry -- followed by its field *values* in declaration order.
  Field names and counts are never transmitted: the decoder recovers
  them from the registered class, which is exactly why only registered
  types decode.

Like the canonical encoder, binwire is deterministic (dict entries sort
by encoded key, frozensets by encoded element) and memoises the
encodings of frozen protocol messages by object identity
(:data:`repro.perf.binwire_cache`), so an n-destination multicast
encodes once.  The decoder is strict: unknown tags, unknown type ids,
bad versions, truncated values and trailing bytes all raise
:class:`BinwireError`.

The closed type registry is *shared* with the canonical reference
decoder (:mod:`repro.transport.wire`): both codecs accept exactly the
same set of protocol dataclasses, so switching codecs can never widen
the attack surface.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from typing import Any

from repro.crypto.canonical import CanonicalEncodingError, canonical_encode
from repro.perf import binwire_cache

#: Format version transmitted as the first byte of every encoding.
BINWIRE_VERSION = 1

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_TUPLE = 0x08
_TAG_DICT = 0x09
_TAG_OBJECT = 0x0A
_TAG_SET = 0x0B

_DOUBLE = struct.Struct(">d")


class BinwireError(ValueError):
    """Raised for unencodable values and malformed binwire bytes."""


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
def _encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, at: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if at >= len(data):
            raise BinwireError(f"truncated varint at offset {at}")
        byte = data[at]
        at += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, at
        shift += 7
        if shift > 70:
            raise BinwireError("varint longer than 10 bytes")


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# ----------------------------------------------------------------------
# type-id table (shared closed registry, content-derived ids)
# ----------------------------------------------------------------------
def type_id_of(qualname: str) -> bytes:
    """The 4-byte binwire type id of a registered qualname: the MD5
    prefix of the name, so ids are stable under registry growth (adding
    a type can never renumber the others -- only a genuine format
    change moves bytes, which is what the golden fixture pins)."""
    return hashlib.md5(qualname.encode("utf-8")).digest()[:4]


_ID_TO_CLASS: dict[bytes, type] = {}
_CLASS_TO_ID: dict[type, bytes] = {}
_TABLE_SIZE = -1


def _registry() -> dict[str, type]:
    # Deferred import: the closed registry (and its population with
    # every protocol module's dataclasses) lives with the canonical
    # reference decoder; importing it lazily avoids a cycle at package
    # import time.
    from repro.transport.wire import registered_wire_types

    return registered_wire_types()


def _rebuild_table() -> None:
    global _TABLE_SIZE
    registry = _registry()
    _ID_TO_CLASS.clear()
    _CLASS_TO_ID.clear()
    for qualname, cls in registry.items():
        type_id = type_id_of(qualname)
        clash = _ID_TO_CLASS.get(type_id)
        if clash is not None and clash is not cls:
            raise BinwireError(
                f"binwire type-id collision: {qualname!r} vs "
                f"{clash.__qualname__!r} both hash to {type_id.hex()}"
            )
        _ID_TO_CLASS[type_id] = cls
        _CLASS_TO_ID[cls] = type_id
    _TABLE_SIZE = len(registry)


def _class_id(cls: type) -> bytes:
    type_id = _CLASS_TO_ID.get(cls)
    if type_id is None:
        if len(_registry()) != _TABLE_SIZE:
            _rebuild_table()
            type_id = _CLASS_TO_ID.get(cls)
        if type_id is None:
            raise BinwireError(
                f"{cls.__qualname__!r} is not a registered wire type; "
                f"binwire only encodes the closed protocol set"
            )
    return type_id


def _id_class(type_id: bytes) -> type:
    cls = _ID_TO_CLASS.get(type_id)
    if cls is None:
        if len(_registry()) != _TABLE_SIZE:
            _rebuild_table()
            cls = _ID_TO_CLASS.get(type_id)
        if cls is None:
            raise BinwireError(f"unknown binwire type id {type_id.hex()}")
    return cls


# ----------------------------------------------------------------------
# encoder
# ----------------------------------------------------------------------
def _encode_into(value: Any, out: list[bytes]) -> None:
    cls = value.__class__
    handler = _DISPATCH.get(cls)
    if handler is not None:
        handler(value, out)
        return
    _encode_fallback(value, out)


def _encode_none(value: Any, out: list[bytes]) -> None:
    out.append(b"\x00")


def _encode_bool(value: Any, out: list[bytes]) -> None:
    out.append(b"\x01" if value else b"\x02")


def _encode_int(value: Any, out: list[bytes]) -> None:
    out.append(b"\x03")
    out.append(_encode_varint(_zigzag(int(value))))


def _encode_float(value: Any, out: list[bytes]) -> None:
    out.append(b"\x04")
    out.append(_DOUBLE.pack(value))


def _encode_str(value: Any, out: list[bytes]) -> None:
    body = value.encode("utf-8")
    out.append(b"\x05")
    out.append(_encode_varint(len(body)))
    out.append(body)


def _encode_bytes(value: Any, out: list[bytes]) -> None:
    body = bytes(value)
    out.append(b"\x06")
    out.append(_encode_varint(len(body)))
    out.append(body)


def _encode_list(value: Any, out: list[bytes]) -> None:
    out.append(b"\x07")
    out.append(_encode_varint(len(value)))
    for item in value:
        _encode_into(item, out)


def _encode_tuple(value: Any, out: list[bytes]) -> None:
    out.append(b"\x08")
    out.append(_encode_varint(len(value)))
    for item in value:
        _encode_into(item, out)


def _encode_dict(value: Any, out: list[bytes]) -> None:
    # Entries sort by their encoded key -- the same total order the
    # canonical encoder imposes, so signing determinism carries over.
    entries = [(_encode_value(k), v) for k, v in value.items()]
    entries.sort(key=lambda e: e[0])
    out.append(b"\x09")
    out.append(_encode_varint(len(entries)))
    for key_bytes, item in entries:
        out.append(key_bytes)
        _encode_into(item, out)


def _encode_frozenset(value: Any, out: list[bytes]) -> None:
    encoded = sorted(_encode_value(item) for item in value)
    out.append(b"\x0b")
    out.append(_encode_varint(len(encoded)))
    out.extend(encoded)


def _encode_dataclass(value: Any, out: list[bytes]) -> None:
    from repro.crypto.canonical import is_identity_cacheable

    cls = value.__class__
    if is_identity_cacheable(value):
        entry = binwire_cache._entries.get(id(value))
        if entry is not None:
            binwire_cache._hits += 1
            out.append(entry[1])
            return
        binwire_cache._misses += 1
        sub: list[bytes] = []
        sub.append(b"\x0a")
        sub.append(_class_id(cls))
        for field in dataclasses.fields(cls):
            _encode_into(getattr(value, field.name), sub)
        cached = b"".join(sub)
        binwire_cache.put(value, cached)
        out.append(cached)
        return
    out.append(b"\x0a")
    out.append(_class_id(cls))
    for field in dataclasses.fields(cls):
        _encode_into(getattr(value, field.name), out)


def _encode_fallback(value: Any, out: list[bytes]) -> None:
    """Precedence-ordered chain for subclasses of the builtins and for
    dataclass types seen for the first time (mirrors the canonical
    encoder's fallback, so both codecs accept the same value domain)."""
    if value is None:
        _encode_none(value, out)
    elif value is True or value is False:
        _encode_bool(value, out)
    elif isinstance(value, bool):
        _encode_bool(value, out)
    elif isinstance(value, int):
        _encode_int(value, out)
    elif isinstance(value, float):
        _encode_float(value, out)
    elif isinstance(value, str):
        _encode_str(value, out)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        _encode_bytes(value, out)
    elif isinstance(value, list):
        _encode_list(value, out)
    elif isinstance(value, tuple):
        _encode_tuple(value, out)
    elif isinstance(value, dict):
        _encode_dict(value, out)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        _DISPATCH[value.__class__] = _encode_dataclass
        _encode_dataclass(value, out)
    elif isinstance(value, frozenset):
        _encode_frozenset(value, out)
    else:
        raise BinwireError(
            f"no binwire encoding for {type(value).__name__}: {value!r}"
        )


_DISPATCH: dict[type, Any] = {
    type(None): _encode_none,
    bool: _encode_bool,
    int: _encode_int,
    float: _encode_float,
    str: _encode_str,
    bytes: _encode_bytes,
    list: _encode_list,
    tuple: _encode_tuple,
    dict: _encode_dict,
    frozenset: _encode_frozenset,
}


def _encode_value(value: Any) -> bytes:
    out: list[bytes] = []
    _encode_into(value, out)
    if len(out) == 1:
        return out[0]
    return b"".join(out)


def binwire_encode(value: Any) -> bytes:
    """Encode ``value`` as versioned binwire bytes.

    Accepts exactly the canonical encoder's value domain, except that
    dataclass instances must belong to the closed wire-type registry.
    """
    try:
        return bytes([BINWIRE_VERSION]) + _encode_value(value)
    except RecursionError:  # pragma: no cover - pathological nesting
        raise BinwireError("value nests too deeply for binwire") from None


# ----------------------------------------------------------------------
# strict decoder
# ----------------------------------------------------------------------
def _construct(cls: type, values: dict[str, Any]) -> Any:
    try:
        return cls(**values)
    except TypeError:
        # init=False fields (lazy wire-size memos and the like) cannot
        # come back through __init__; restore field state directly.
        obj = cls.__new__(cls)
        for key, value in values.items():
            object.__setattr__(obj, key, value)
        return obj


def _decode(data: bytes, at: int) -> tuple[Any, int]:
    if at >= len(data):
        raise BinwireError("truncated value")
    tag = data[at]
    at += 1
    if tag == _TAG_NONE:
        return None, at
    if tag == _TAG_TRUE:
        return True, at
    if tag == _TAG_FALSE:
        return False, at
    if tag == _TAG_INT:
        raw, at = _decode_varint(data, at)
        return _unzigzag(raw), at
    if tag == _TAG_FLOAT:
        if at + 8 > len(data):
            raise BinwireError(f"truncated float at offset {at}")
        return _DOUBLE.unpack_from(data, at)[0], at + 8
    if tag in (_TAG_STR, _TAG_BYTES):
        length, at = _decode_varint(data, at)
        if at + length > len(data):
            raise BinwireError(f"truncated body at offset {at}")
        body = data[at : at + length]
        at += length
        if tag == _TAG_STR:
            return body.decode("utf-8"), at
        return bytes(body), at
    if tag in (_TAG_LIST, _TAG_TUPLE, _TAG_SET):
        count, at = _decode_varint(data, at)
        items = []
        for __ in range(count):
            item, at = _decode(data, at)
            items.append(item)
        if tag == _TAG_LIST:
            return items, at
        if tag == _TAG_TUPLE:
            return tuple(items), at
        return frozenset(items), at
    if tag == _TAG_DICT:
        count, at = _decode_varint(data, at)
        mapping = {}
        for __ in range(count):
            key, at = _decode(data, at)
            value, at = _decode(data, at)
            mapping[key] = value
        return mapping, at
    if tag == _TAG_OBJECT:
        if at + 4 > len(data):
            raise BinwireError(f"truncated type id at offset {at}")
        cls = _id_class(bytes(data[at : at + 4]))
        at += 4
        values: dict[str, Any] = {}
        for field in dataclasses.fields(cls):
            value, at = _decode(data, at)
            values[field.name] = value
        return _construct(cls, values), at
    raise BinwireError(f"unknown binwire tag 0x{tag:02x} at offset {at - 1}")


def binwire_decode(data: bytes) -> Any:
    """Decode one versioned binwire value; strict on every axis --
    version byte, tags, type ids, truncation and trailing bytes."""
    data = bytes(data)
    if not data:
        raise BinwireError("empty binwire payload")
    if data[0] != BINWIRE_VERSION:
        raise BinwireError(
            f"bad binwire version {data[0]} (expected {BINWIRE_VERSION})"
        )
    value, end = _decode(data, 1)
    if end != len(data):
        raise BinwireError(f"{len(data) - end} trailing bytes after value")
    return value


def binwire_equivalent(value: Any) -> bool:
    """True when ``value`` encodes under both codecs (used by tests to
    keep the two value domains aligned)."""
    try:
        canonical_encode(value)
        binwire_encode(value)
        return True
    except (CanonicalEncodingError, BinwireError):
        return False
