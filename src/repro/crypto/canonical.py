"""Deterministic canonical byte encoding.

Signatures are computed over bytes, so every message must map to one and
exactly one byte string regardless of dict insertion order or replica.
This module defines that mapping: a small, self-describing, length-
prefixed tag format covering the value types that protocol messages use.

The same encoding doubles as the wire format used by the ORB's marshaller
for message-size accounting (see :mod:`repro.corba.marshal`).
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any


class CanonicalEncodingError(TypeError):
    """Raised for values with no defined canonical form."""


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_TUPLE = b"U"
_TAG_DICT = b"M"
_TAG_OBJECT = b"O"


def _encode_length(n: int) -> bytes:
    return struct.pack(">I", n)


def _encode_into(value: Any, out: list[bytes]) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out.append(_TAG_INT)
        out.append(_encode_length(len(body)))
        out.append(body)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_encode_length(len(body)))
        out.append(body)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        body = bytes(value)
        out.append(_TAG_BYTES)
        out.append(_encode_length(len(body)))
        out.append(body)
    elif isinstance(value, list):
        out.append(_TAG_LIST)
        out.append(_encode_length(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE)
        out.append(_encode_length(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, (dict,)):
        # Keys are sorted by their own canonical encoding, which both
        # imposes a total order and permits mixed key types.
        entries = [(canonical_encode(k), k, v) for k, v in value.items()]
        entries.sort(key=lambda e: e[0])
        out.append(_TAG_DICT)
        out.append(_encode_length(len(entries)))
        for key_bytes, __, item in entries:
            out.append(key_bytes)
            _encode_into(item, out)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(_TAG_OBJECT)
        name = type(value).__qualname__.encode("utf-8")
        out.append(_encode_length(len(name)))
        out.append(name)
        fields = dataclasses.fields(value)
        out.append(_encode_length(len(fields)))
        for field in fields:
            _encode_into(field.name, out)
            _encode_into(getattr(value, field.name), out)
    elif isinstance(value, frozenset):
        encoded = sorted(canonical_encode(item) for item in value)
        out.append(_TAG_LIST)
        out.append(_encode_length(len(encoded)))
        out.extend(encoded)
    else:
        raise CanonicalEncodingError(
            f"no canonical encoding for {type(value).__name__}: {value!r}"
        )


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into its unique canonical byte string.

    Supported: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``-likes, ``list``, ``tuple``, ``dict`` (any canonically
    encodable keys), ``frozenset`` and dataclass instances.
    """
    out: list[bytes] = []
    _encode_into(value, out)
    return b"".join(out)
