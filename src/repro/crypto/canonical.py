"""Deterministic canonical byte encoding.

Signatures are computed over bytes, so every message must map to one and
exactly one byte string regardless of dict insertion order or replica.
This module defines that mapping: a small, self-describing, length-
prefixed tag format covering the value types that protocol messages use.

The same encoding doubles as the wire format used by the ORB's marshaller
for message-size accounting (see :mod:`repro.corba.marshal`).

Encodings of immutable protocol messages are memoised through
:data:`repro.perf.encode_cache`: a frozen dataclass whose fields are all
``init=True, compare=True`` is encoded once and the bytes are reused on
every later encode of the *same object* -- which is what turns an
n-destination multicast's n sign/size/verify encodings into one.
Dataclasses with lazily-written memo fields (declared ``compare=False``,
e.g. the PBFT wire-size memos) are excluded because their encoding is
not a pure function of object identity.
"""

from __future__ import annotations

import dataclasses
import operator
import struct
from typing import Any

from repro.perf import encode_cache


class CanonicalEncodingError(TypeError):
    """Raised for values with no defined canonical form."""


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_TUPLE = b"U"
_TAG_DICT = b"M"
_TAG_OBJECT = b"O"


def _encode_length(n: int) -> bytes:
    return struct.pack(">I", n)


#: Short strings (identities, method names, service names) recur on
#: every message, so their encodings are memoised by value.  The memo is
#: cleared wholesale on overflow: identifier vocabularies are small, so
#: overflow means unbounded payload strings are leaking in and the whole
#: set is suspect.
_STR_MEMO: dict[str, bytes] = {}
_STR_MEMO_MAX = 4096
_STR_MEMO_LEN_LIMIT = 64


def _encode_str(value: str) -> bytes:
    cached = _STR_MEMO.get(value)
    if cached is not None:
        return cached
    body = value.encode("utf-8")
    encoded = _TAG_STR + _encode_length(len(body)) + body
    if len(value) <= _STR_MEMO_LEN_LIMIT:
        if len(_STR_MEMO) >= _STR_MEMO_MAX:
            _STR_MEMO.clear()
        _STR_MEMO[value] = encoded
    return encoded


@dataclasses.dataclass(frozen=True, slots=True)
class _DataclassShape:
    """Per-type encoding plan, computed once per dataclass type.

    ``header`` is the constant prefix (object tag, qualname, field
    count); ``names`` holds each field's pre-encoded name, and
    ``getter`` reads all field values in one C-level call;
    ``cacheable`` says whether instances may be memoised by identity
    (frozen, no lazily-mutated fields).
    """

    header: bytes
    names: tuple[bytes, ...]
    getter: Any  # operator.attrgetter over all fields (tuple result)
    single: bool  # attrgetter returns a bare value for 1-field types
    cacheable: bool


_SHAPES: dict[type, _DataclassShape] = {}


def _shape_for(cls: type) -> _DataclassShape:
    shape = _SHAPES.get(cls)
    if shape is None:
        fields = dataclasses.fields(cls)
        name = cls.__qualname__.encode("utf-8")
        header = (
            _TAG_OBJECT
            + _encode_length(len(name))
            + name
            + _encode_length(len(fields))
        )
        cacheable = cls.__dataclass_params__.frozen and all(
            f.init and f.compare for f in fields
        )
        shape = _DataclassShape(
            header=header,
            names=tuple(_encode_str(f.name) for f in fields),
            getter=operator.attrgetter(*(f.name for f in fields)) if fields else None,
            single=len(fields) == 1,
            cacheable=cacheable,
        )
        _SHAPES[cls] = shape
    return shape


#: Per-type verdicts for :func:`is_identity_cacheable`, covering *all*
#: types (False for non-dataclasses) so the hot path is one dict lookup.
_CACHEABLE_TYPES: dict[type, bool] = {}


def is_identity_cacheable(value: Any) -> bool:
    """True for frozen dataclass *instances* whose derived values
    (canonical encoding, wire size) are safe to memoise by object
    identity -- i.e. every field is ``init=True, compare=True`` (no
    lazily-written memo fields)."""
    cls = value.__class__
    cacheable = _CACHEABLE_TYPES.get(cls)
    if cacheable is None:
        cacheable = dataclasses.is_dataclass(cls) and _shape_for(cls).cacheable
        _CACHEABLE_TYPES[cls] = cacheable
    return cacheable


def _encode_dataclass(value: Any, shape: _DataclassShape, out: list[bytes]) -> None:
    out.append(shape.header)
    if shape.getter is None:
        return
    values = shape.getter(value)
    if shape.single:
        out.append(shape.names[0])
        _encode_into(values, out)
        return
    for encoded_name, item in zip(shape.names, values):
        out.append(encoded_name)
        _encode_into(item, out)


def _encode_dataclass_node(value: Any, out: list[bytes]) -> None:
    shape = _shape_for(value.__class__)
    if shape.cacheable:
        # Inlined encode_cache.get/put (stats kept): this is the single
        # hottest lookup in a signed multicast fan-out.
        entry = encode_cache._entries.get(id(value))
        if entry is not None:
            encode_cache._hits += 1
            out.append(entry[1])
            return
        encode_cache._misses += 1
        sub: list[bytes] = []
        _encode_dataclass(value, shape, sub)
        cached = b"".join(sub)
        encode_cache.put(value, cached)
        out.append(cached)
    else:
        _encode_dataclass(value, shape, out)


def _encode_none(value: Any, out: list[bytes]) -> None:
    out.append(_TAG_NONE)


def _encode_bool(value: Any, out: list[bytes]) -> None:
    out.append(_TAG_TRUE if value else _TAG_FALSE)


#: Small integers (sequence numbers, view ids, lamport clocks) recur on
#: every message; same overflow policy as the string memo.
_INT_MEMO: dict[int, bytes] = {}
_INT_MEMO_MAX = 8192
_INT_MEMO_LIMIT = 1 << 20


def _encode_int(value: Any, out: list[bytes]) -> None:
    # The memo is exact-int only: an int subclass (e.g. an IntEnum)
    # hashes equal to its value but may stringify differently.
    if value.__class__ is int:
        encoded = _INT_MEMO.get(value)
        if encoded is None:
            body = str(value).encode("ascii")
            encoded = _TAG_INT + _encode_length(len(body)) + body
            if -_INT_MEMO_LIMIT <= value <= _INT_MEMO_LIMIT:
                if len(_INT_MEMO) >= _INT_MEMO_MAX:
                    _INT_MEMO.clear()
                _INT_MEMO[value] = encoded
        out.append(encoded)
        return
    body = str(value).encode("ascii")
    out.append(_TAG_INT)
    out.append(_encode_length(len(body)))
    out.append(body)


def _encode_float(value: Any, out: list[bytes]) -> None:
    out.append(_TAG_FLOAT)
    out.append(struct.pack(">d", value))


def _encode_str_node(value: Any, out: list[bytes]) -> None:
    encoded = _STR_MEMO.get(value)
    if encoded is None:
        body = value.encode("utf-8")
        encoded = _TAG_STR + _encode_length(len(body)) + body
        if len(value) <= _STR_MEMO_LEN_LIMIT:
            if len(_STR_MEMO) >= _STR_MEMO_MAX:
                _STR_MEMO.clear()
            _STR_MEMO[value] = encoded
    out.append(encoded)


def _encode_bytes(value: Any, out: list[bytes]) -> None:
    body = bytes(value)
    out.append(_TAG_BYTES)
    out.append(_encode_length(len(body)))
    out.append(body)


def _encode_list(value: Any, out: list[bytes]) -> None:
    out.append(_TAG_LIST)
    out.append(_encode_length(len(value)))
    for item in value:
        _encode_into(item, out)


def _encode_tuple(value: Any, out: list[bytes]) -> None:
    out.append(_TAG_TUPLE)
    out.append(_encode_length(len(value)))
    for item in value:
        _encode_into(item, out)


def _encode_dict(value: Any, out: list[bytes]) -> None:
    # Keys are sorted by their own canonical encoding, which both
    # imposes a total order and permits mixed key types.
    entries = [(canonical_encode(k), k, v) for k, v in value.items()]
    entries.sort(key=lambda e: e[0])
    out.append(_TAG_DICT)
    out.append(_encode_length(len(entries)))
    for key_bytes, __, item in entries:
        out.append(key_bytes)
        _encode_into(item, out)


#: Exact-type fast dispatch.  Correct only for exact builtin types (a
#: subclass must take the precedence-ordered fallback chain below);
#: dataclass types are *learned* into it the first time an instance
#: comes through the fallback, which proves no earlier branch claims
#: that exact type.
_DISPATCH: dict[type, Any] = {
    type(None): _encode_none,
    bool: _encode_bool,
    int: _encode_int,
    float: _encode_float,
    str: _encode_str_node,
    bytes: _encode_bytes,
    list: _encode_list,
    tuple: _encode_tuple,
    dict: _encode_dict,
}


def _encode_into(value: Any, out: list[bytes]) -> None:
    handler = _DISPATCH.get(value.__class__)
    if handler is not None:
        handler(value, out)
        return
    _encode_fallback(value, out)


def _encode_fallback(value: Any, out: list[bytes]) -> None:
    """The precedence-ordered type chain, for anything not (yet) in the
    exact-type dispatch table: subclasses of the builtins, bytearray and
    memoryview views, frozensets, and dataclasses."""
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        _encode_int(value, out)
    elif isinstance(value, float):
        _encode_float(value, out)
    elif isinstance(value, str):
        out.append(_encode_str(value))
    elif isinstance(value, (bytes, bytearray, memoryview)):
        _encode_bytes(value, out)
    elif isinstance(value, list):
        _encode_list(value, out)
    elif isinstance(value, tuple):
        _encode_tuple(value, out)
    elif isinstance(value, (dict,)):
        _encode_dict(value, out)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Reaching this branch proves every earlier isinstance was False
        # for this exact type, so it can take the fast path from now on.
        _DISPATCH[value.__class__] = _encode_dataclass_node
        _encode_dataclass_node(value, out)
    elif isinstance(value, frozenset):
        encoded = sorted(canonical_encode(item) for item in value)
        out.append(_TAG_LIST)
        out.append(_encode_length(len(encoded)))
        out.extend(encoded)
    else:
        raise CanonicalEncodingError(
            f"no canonical encoding for {type(value).__name__}: {value!r}"
        )


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into its unique canonical byte string.

    Supported: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``-likes, ``list``, ``tuple``, ``dict`` (any canonically
    encodable keys), ``frozenset`` and dataclass instances.
    """
    out: list[bytes] = []
    _encode_into(value, out)
    if len(out) == 1:
        return out[0]
    return b"".join(out)
