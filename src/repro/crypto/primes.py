"""Prime generation for RSA key material.

Implemented from scratch (trial division + Miller-Rabin) so that the
crypto substrate has no dependencies beyond the standard library.  All
randomness comes from a caller-supplied ``random.Random``, keeping key
generation deterministic per simulation seed.
"""

from __future__ import annotations

import random

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def _miller_rabin_witness(a: int, d: int, r: int, n: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for __ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rng: random.Random | None = None, rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    With 40 random rounds the error probability is below 4^-40; for the
    deterministic small bases used first, the test is exact for
    n < 3.3 * 10^24.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # Deterministic small bases catch almost everything cheaply.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if a >= n:
            continue
        if _miller_rabin_witness(a, d, r, n):
            return False
    if rng is not None:
        for __ in range(rounds):
            a = rng.randrange(2, n - 1)
            if _miller_rabin_witness(a, d, r, n):
                return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"bits must be >= 8, got {bits}")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # full bit-length, odd
        if is_probable_prime(candidate, rng):
            return candidate
