"""Public-key registry and signed-message verification."""

from __future__ import annotations

import random
from typing import Any

from repro.crypto.errors import SignatureInvalid, UnknownSigner
from repro.crypto.signing import (
    DEFAULT_CODEC,
    DoubleSigned,
    SignatureScheme,
    Signed,
    Signer,
    _double_countersign_bytes,
    _payload_bytes,
    payload_codec,
)
from repro.perf import IdentityCache


class KeyStore:
    """Maps identities to public verification material.

    One keystore per simulation models the PKI the paper presupposes:
    keys are distributed correctly at start-up (nodes are correct when
    paired, assumption A1), and verification needs no network round
    trips.

    ``codec`` selects the signing codec (canonical or binwire); every
    signer this keystore mints encodes with the same codec, so signers
    and verifiers agree on the bytes being signed.
    """

    def __init__(self, scheme: SignatureScheme, codec: str | None = None) -> None:
        self.scheme = scheme
        self.codec = codec if codec is not None else DEFAULT_CODEC
        self._encode = payload_codec(codec)
        self._public: dict[str, Any] = {}
        # Whole-message verdicts keyed by DoubleSigned identity: sound
        # because the message is frozen and key material is append-only
        # and immutable per identity, so a verdict can never go stale.
        # This turns the n-destination re-check of one multicast into a
        # dict hit (an unknown signer raises instead of returning, so
        # late registration cannot be masked by a cached verdict).
        self._double_verdicts = IdentityCache(maxsize=131072)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def new_signer(self, identity: str, rng: random.Random) -> Signer:
        """Generate key material for ``identity`` and register it.

        Re-using an identity is a configuration bug, not an attack we
        model, so it raises.
        """
        if identity in self._public:
            raise ValueError(f"identity {identity!r} already registered")
        private, public = self.scheme.generate(rng)
        self._public[identity] = public
        return Signer(identity, self.scheme, private, public=public, codec=self.codec)

    def knows(self, identity: str) -> bool:
        return identity in self._public

    def identities(self) -> list[str]:
        return sorted(self._public)

    def _public_for(self, identity: str) -> Any:
        public = self._public.get(identity)
        if public is None:
            raise UnknownSigner(f"no public key for {identity!r}")
        return public

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_signed(self, signed: Signed) -> bool:
        """Verify a single-signed message (no exception on bad sig)."""
        public = self._public_for(signed.signature.signer)
        return self.scheme.verify_cached(
            public, _payload_bytes(signed.payload, self._encode), signed.signature.value
        )

    def check_double(self, message: DoubleSigned) -> bool:
        """Verify a double-signed message: first signature over the
        payload, second over (payload, first).

        The verdict is memoised by message identity, and both underlying
        checks go through the scheme's verification memo -- so the n
        destinations of one multicast pay for one real verification
        pair, not n.
        """
        cached = self._double_verdicts.get(message)
        if cached is None:
            cached = self._check_double_uncached(message)
            self._double_verdicts.put(message, cached)
        return cached

    def _check_double_uncached(self, message: DoubleSigned) -> bool:
        # Both signatures go through the scheme's batch entry point in
        # one call, so a provider with amortised verification (ed25519)
        # drains the pair in a single C-level pass.
        first_public = self._public_for(message.first.signer)
        second_public = self._public_for(message.second.signer)
        return self.scheme.verify_many(
            (
                (
                    first_public,
                    _payload_bytes(message.payload, self._encode),
                    message.first.value,
                ),
                (
                    second_public,
                    _double_countersign_bytes(message, self.codec, self._encode),
                    message.second.value,
                ),
            )
        )

    def require_double(
        self, message: DoubleSigned, expected_signers: tuple[str, str] | None = None
    ) -> None:
        """Verify a double-signed message, raising on failure.

        ``expected_signers`` (order-insensitive) additionally pins *who*
        must have signed -- the check a destination applies to outputs of
        a specific FS process.
        """
        if expected_signers is not None:
            if set(message.signers) != set(expected_signers):
                raise SignatureInvalid(
                    f"signed by {message.signers}, expected {expected_signers}"
                )
        if not self.check_double(message):
            raise SignatureInvalid(f"bad double signature from {message.signers}")
