"""Public-key registry and signed-message verification."""

from __future__ import annotations

import random
from typing import Any

from repro.crypto.errors import SignatureInvalid, UnknownSigner
from repro.crypto.signing import (
    DoubleSigned,
    SignatureScheme,
    Signed,
    Signer,
    _countersign_bytes,
    _payload_bytes,
)


class KeyStore:
    """Maps identities to public verification material.

    One keystore per simulation models the PKI the paper presupposes:
    keys are distributed correctly at start-up (nodes are correct when
    paired, assumption A1), and verification needs no network round
    trips.
    """

    def __init__(self, scheme: SignatureScheme) -> None:
        self.scheme = scheme
        self._public: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def new_signer(self, identity: str, rng: random.Random) -> Signer:
        """Generate key material for ``identity`` and register it.

        Re-using an identity is a configuration bug, not an attack we
        model, so it raises.
        """
        if identity in self._public:
            raise ValueError(f"identity {identity!r} already registered")
        private, public = self.scheme.generate(rng)
        self._public[identity] = public
        return Signer(identity, self.scheme, private)

    def knows(self, identity: str) -> bool:
        return identity in self._public

    def identities(self) -> list[str]:
        return sorted(self._public)

    def _public_for(self, identity: str) -> Any:
        public = self._public.get(identity)
        if public is None:
            raise UnknownSigner(f"no public key for {identity!r}")
        return public

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_signed(self, signed: Signed) -> bool:
        """Verify a single-signed message (no exception on bad sig)."""
        public = self._public_for(signed.signature.signer)
        return self.scheme.verify(
            public, _payload_bytes(signed.payload), signed.signature.value
        )

    def check_double(self, message: DoubleSigned) -> bool:
        """Verify a double-signed message: first signature over the
        payload, second over (payload, first)."""
        first_public = self._public_for(message.first.signer)
        if not self.scheme.verify(
            first_public, _payload_bytes(message.payload), message.first.value
        ):
            return False
        second_public = self._public_for(message.second.signer)
        return self.scheme.verify(
            second_public,
            _countersign_bytes(message.payload, message.first),
            message.second.value,
        )

    def require_double(
        self, message: DoubleSigned, expected_signers: tuple[str, str] | None = None
    ) -> None:
        """Verify a double-signed message, raising on failure.

        ``expected_signers`` (order-insensitive) additionally pins *who*
        must have signed -- the check a destination applies to outputs of
        a specific FS process.
        """
        if expected_signers is not None:
            if set(message.signers) != set(expected_signers):
                raise SignatureInvalid(
                    f"signed by {message.signers}, expected {expected_signers}"
                )
        if not self.check_double(message):
            raise SignatureInvalid(f"bad double signature from {message.signers}")
