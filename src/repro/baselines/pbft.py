"""A PBFT-style authenticated Byzantine atomic broadcast (the 3f+1
from-scratch comparator, after Castro & Liskov [CL99]).

Normal case, for a cluster of n = 3f+1 replicas:

1. the client's request reaches the primary of the current view;
2. primary assigns a sequence number and multicasts PRE-PREPARE;
3. every replica multicasts PREPARE; a replica is *prepared* once it
   holds the pre-prepare plus 2f matching prepares;
4. prepared replicas multicast COMMIT; with 2f+1 matching commits the
   request is executed (delivered) in sequence order.

View change: backups set a timer whenever they know of a pending
request; if the primary does not get it committed in time they multicast
VIEW-CHANGE, and on 2f+1 such messages the next primary installs the new
view and re-drives pending requests.  **The timer is the point**: this
protocol's termination rests on a timeout chosen against unknown network
delays -- the liveness requirement the fail-signal approach removes.

Messages are authenticated (per-message signature via the shared
keystore; costs charged through the node's crypto cost model), matching
the "authenticated Byzantine" fault model of the paper.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.corba.node import Node
from repro.corba.orb import ObjectRef, Request, Servant
from repro.net.message import wire_size
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


@dataclasses.dataclass(frozen=True, slots=True)
class ClientRequest:
    client: str
    op_id: int
    payload: typing.Any
    # Serialising the payload is the expensive part of sizing a message,
    # and a request's size is consulted on every (re)transmission --
    # including the view-change path, which re-ships every pending
    # request.  The payload is immutable once submitted, so the size is
    # computed once, lazily.
    _size: int | None = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def wire_size(self) -> int:
        if self._size is None:
            object.__setattr__(self, "_size", wire_size(self.payload) + 16)
        return self._size

    @property
    def digest(self) -> tuple:
        return (self.client, self.op_id)


@dataclasses.dataclass(frozen=True, slots=True)
class PrePrepare:
    view: int
    seq: int
    request: ClientRequest

    @property
    def wire_size(self) -> int:
        return 32 + self.request.wire_size


@dataclasses.dataclass(frozen=True, slots=True)
class Prepare:
    view: int
    seq: int
    digest: tuple
    replica: str

    @property
    def wire_size(self) -> int:
        return 96  # header + digest + signature


@dataclasses.dataclass(frozen=True, slots=True)
class Commit:
    view: int
    seq: int
    digest: tuple
    replica: str

    @property
    def wire_size(self) -> int:
        return 96


@dataclasses.dataclass(frozen=True, slots=True)
class ViewChange:
    new_view: int
    replica: str
    pending: tuple  # requests the replica has seen but not executed
    _size: int | None = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def wire_size(self) -> int:
        if self._size is None:
            object.__setattr__(
                self, "_size", 64 + sum(req.wire_size for req in self.pending)
            )
        return self._size


@dataclasses.dataclass(frozen=True, slots=True)
class NewView:
    view: int
    pending: tuple
    _size: int | None = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def wire_size(self) -> int:
        if self._size is None:
            object.__setattr__(
                self, "_size", 48 + sum(req.wire_size for req in self.pending)
            )
        return self._size


@dataclasses.dataclass(slots=True)
class _SlotState:
    request: ClientRequest | None = None
    prepares: set = dataclasses.field(default_factory=set)
    commits: set = dataclasses.field(default_factory=set)
    prepared: bool = False
    committed: bool = False


class PbftReplica(Process, Servant):
    """One replica of the PBFT-style cluster."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        replica_id: str,
        cluster: "PbftCluster",
        view_timeout: float,
    ) -> None:
        Process.__init__(self, sim, f"pbft/{replica_id}")
        self.node = node
        self.replica_id = replica_id
        self.cluster = cluster
        self.view_timeout = view_timeout
        self.view = 0
        self.next_seq = 1  # primary-side allocation
        self.exec_seq = 1  # next sequence to execute
        self._slots: dict[tuple[int, int], _SlotState] = {}
        self._pending: dict[tuple, ClientRequest] = {}
        self._executed_digests: set[tuple] = set()
        self._view_votes: dict[int, set[str]] = {}
        self.executed: list[ClientRequest] = []
        self.on_execute: typing.Callable[[ClientRequest], None] | None = None
        self.view_changes = 0
        self.byzantine_silent = False  # fault injection: stop participating

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def f(self) -> int:
        return self.cluster.f

    def _primary_of(self, view: int) -> str:
        return self.cluster.replica_ids[view % len(self.cluster.replica_ids)]

    @property
    def is_primary(self) -> bool:
        return self._primary_of(self.view) == self.replica_id

    def _multicast(self, method: str, msg: typing.Any) -> None:
        if self.byzantine_silent:
            return
        sign = self.node.crypto_costs.sign_cost(msg.wire_size)
        # Authentication cost is charged as part of issuing the message.
        self.node.cpu.execute(sign, self._do_multicast, method, msg)

    def _do_multicast(self, method: str, msg: typing.Any) -> None:
        if not self.alive:
            return
        for replica_id, ref in self.cluster.refs.items():
            if replica_id == self.replica_id:
                getattr(self, method)(msg)
            else:
                self.node.orb.oneway(ref, method, msg)

    def _slot(self, view: int, seq: int) -> _SlotState:
        return self._slots.setdefault((view, seq), _SlotState())

    def invocation_cost(self, request: Request) -> float:
        return self.node.crypto_costs.verify_cost(request.size)

    # ------------------------------------------------------------------
    # protocol: normal case
    # ------------------------------------------------------------------
    def submit(self, request: ClientRequest) -> None:
        """Client entry point (invoked at any replica; forwarded)."""
        if self.byzantine_silent:
            return
        if request.digest in self._pending or request.digest in self._executed_digests:
            return
        self._pending[request.digest] = request
        if self.is_primary:
            self._allocate(request)
        else:
            self.node.orb.oneway(
                self.cluster.refs[self._primary_of(self.view)], "submit", request
            )
        # Backup liveness watch: the request must commit within the
        # timeout or the primary is suspected.
        self.set_timer(("watch", request.digest), self.view_timeout, request.digest)

    def _allocate(self, request: ClientRequest) -> None:
        seq = self.next_seq
        self.next_seq += 1
        self._multicast("pre_prepare", PrePrepare(view=self.view, seq=seq, request=request))

    def pre_prepare(self, msg: PrePrepare) -> None:
        if not self.alive or self.byzantine_silent:
            return
        if msg.view != self.view:
            return
        slot = self._slot(msg.view, msg.seq)
        if slot.request is not None and slot.request.digest != msg.request.digest:
            return  # equivocating primary; the timeout will catch it
        slot.request = msg.request
        self._pending.setdefault(msg.request.digest, msg.request)
        self._multicast(
            "prepare",
            Prepare(view=msg.view, seq=msg.seq, digest=msg.request.digest, replica=self.replica_id),
        )
        self._check_prepared(msg.view, msg.seq)

    def prepare(self, msg: Prepare) -> None:
        if not self.alive or self.byzantine_silent or msg.view != self.view:
            return
        slot = self._slot(msg.view, msg.seq)
        slot.prepares.add(msg.replica)
        self._check_prepared(msg.view, msg.seq)

    def _check_prepared(self, view: int, seq: int) -> None:
        slot = self._slot(view, seq)
        if slot.prepared or slot.request is None:
            return
        if len(slot.prepares) >= 2 * self.f:
            slot.prepared = True
            self._multicast(
                "commit",
                Commit(view=view, seq=seq, digest=slot.request.digest, replica=self.replica_id),
            )
            self._check_committed(view, seq)

    def commit(self, msg: Commit) -> None:
        if not self.alive or self.byzantine_silent or msg.view != self.view:
            return
        slot = self._slot(msg.view, msg.seq)
        slot.commits.add(msg.replica)
        self._check_committed(msg.view, msg.seq)

    def _check_committed(self, view: int, seq: int) -> None:
        slot = self._slot(view, seq)
        if slot.committed or not slot.prepared:
            return
        if len(slot.commits) >= 2 * self.f + 1:
            slot.committed = True
            self._execute_ready()

    def _execute_ready(self) -> None:
        while True:
            slot = self._slots.get((self.view, self.exec_seq))
            if slot is None or not slot.committed or slot.request is None:
                return
            request = slot.request
            self.exec_seq += 1
            self._pending.pop(request.digest, None)
            self.cancel_timer(("watch", request.digest))
            if request.digest in self._executed_digests:
                continue  # re-proposed across a view change; execute once
            self._executed_digests.add(request.digest)
            self.executed.append(request)
            self.trace("pbft", "execute", seq=self.exec_seq - 1, op=request.op_id)
            if self.on_execute is not None:
                self.on_execute(request)

    # ------------------------------------------------------------------
    # protocol: view change (the liveness dependency)
    # ------------------------------------------------------------------
    def on_timer(self, tag, *args) -> None:
        if isinstance(tag, tuple) and tag[0] == "watch":
            digest = args[0]
            if digest in self._pending and not self.byzantine_silent:
                self._start_view_change()

    def _start_view_change(self) -> None:
        target = self.view + 1
        self.trace("pbft", "view-change", target=target)
        self._multicast(
            "view_change",
            ViewChange(
                new_view=target,
                replica=self.replica_id,
                pending=tuple(self._pending.values()),
            ),
        )

    def view_change(self, msg: ViewChange) -> None:
        if not self.alive or self.byzantine_silent or msg.new_view <= self.view:
            return
        votes = self._view_votes.setdefault(msg.new_view, set())
        votes.add(msg.replica)
        self._merge_pending(msg.pending)
        if len(votes) >= 2 * self.f + 1 and self._primary_of(msg.new_view) == self.replica_id:
            self._multicast(
                "new_view",
                NewView(view=msg.new_view, pending=tuple(self._pending.values())),
            )

    def new_view(self, msg: NewView) -> None:
        if not self.alive or self.byzantine_silent or msg.view <= self.view:
            return
        self.view = msg.view
        self.view_changes += 1
        self.next_seq = self.exec_seq
        self._merge_pending(msg.pending)
        self.trace("pbft", "new-view", view=msg.view)
        if self.is_primary:
            for digest in sorted(self._pending):
                self._allocate(self._pending[digest])
        else:
            for digest in sorted(self._pending):
                self.set_timer(("watch", digest), self.view_timeout, digest)

    def _merge_pending(self, requests: tuple) -> None:
        for req in requests:
            if req.digest not in self._executed_digests:
                self._pending.setdefault(req.digest, req)

    # Process API (timers only; messages come through the ORB).
    def on_message(self, message) -> None:  # pragma: no cover - defensive
        raise NotImplementedError("PbftReplica communicates via ORB invocations")


class PbftCluster:
    """A wired 3f+1 replica cluster on dedicated nodes."""

    def __init__(
        self,
        sim: Simulator,
        f: int,
        network,
        view_timeout: float = 500.0,
        node_kwargs: dict | None = None,
    ) -> None:
        if f < 1:
            raise ValueError(f"f must be >= 1, got {f}")
        self.sim = sim
        self.f = f
        self.n = 3 * f + 1
        self.replica_ids = [f"pbft-{i}" for i in range(self.n)]
        self.refs: dict[str, ObjectRef] = {}
        self.replicas: dict[str, PbftReplica] = {}
        self.nodes: dict[str, Node] = {}
        kwargs = node_kwargs or {}
        for replica_id in self.replica_ids:
            node = Node(sim, replica_id, network, **kwargs)
            self.nodes[replica_id] = node
            replica = PbftReplica(sim, node, replica_id, self, view_timeout)
            self.replicas[replica_id] = replica
            self.refs[replica_id] = node.activate("pbft", replica)
        self._op_counter = 0

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, payload: typing.Any, client: str = "client") -> ClientRequest:
        """Inject a request at every replica (client multicasts, as PBFT
        clients do when the primary might be faulty)."""
        self._op_counter += 1
        request = ClientRequest(client=client, op_id=self._op_counter, payload=payload)
        for replica in self.replicas.values():
            self.sim.schedule(0.0, replica.submit, request)
        return request

    def executed_sequences(self) -> list[list[int]]:
        return [
            [req.op_id for req in self.replicas[r].executed] for r in self.replica_ids
        ]

    def crash(self, replica_id: str) -> None:
        self.replicas[replica_id].kill()
        self.nodes[replica_id].crash()

    def make_byzantine_silent(self, replica_id: str) -> None:
        self.replicas[replica_id].byzantine_silent = True
