"""Comparator baselines.

The paper positions FS-NewTOP against Byzantine-tolerant protocols
"developed almost 'from scratch'" (section 1, citing SecureRing,
Byzantine quorums, and PBFT [CL99]): they need only 3f+1 nodes but at
least one extra communication round and a liveness requirement for
termination.  :mod:`repro.baselines.pbft` implements such a protocol --
a PBFT-style authenticated atomic broadcast -- so the trade-off the
paper argues (nodes and rounds vs liveness assumptions) can be measured
rather than cited.
"""

from repro.baselines.pbft import PbftCluster, PbftReplica

__all__ = ["PbftCluster", "PbftReplica"]
