"""Command-line experiment runner.

Two interfaces share this entry point:

* the original single-experiment flags (kept for quick pokes and
  backwards compatibility)::

      python -m repro --system fs-newtop --members 6 --messages 10
      python -m repro --compare --members 8 --interval 150

* the scenario/campaign subcommands driving the declarative engine in
  :mod:`repro.experiments`::

      python -m repro list
      python -m repro run --scenario byzantine_flood
      python -m repro campaign --scenario fig7_throughput --repeats 4 --jobs 4
      python -m repro report --results results/fig7_throughput.jsonl
      python -m repro audit --scenario adv_equivocation
      python -m repro audit --scenario fig6_latency --adversary replay
      python -m repro obs --scenario fig7_throughput --out obs.json
      python -m repro obs --url http://127.0.0.1:9464/metrics
"""

from __future__ import annotations

import argparse
import pathlib

from repro.analysis import (
    aggregate_records,
    batching_summary,
    format_series_table,
    obs_summary,
    service_summary,
    shard_summary,
)
from repro.newtop.services import ServiceType
from repro.workloads import run_ordering_experiment

SUBCOMMANDS = ("list", "run", "campaign", "report", "bench", "audit", "serve", "obs")

#: Metrics the report prints, in order, with display units.  The shard
#: columns only appear for runs that carry them (sharded deployments);
#: a metric absent from every record prints no table.
REPORT_METRICS = (
    ("throughput_msgs_per_s", "msg/s"),
    ("latency_mean_ms", "ms"),
    ("ordered", "msgs"),
    ("fail_signals", ""),
    ("view_changes", ""),
    ("signatures_per_ordered", "sig/msg"),
    ("per_shard_throughput", "msg/s"),
    ("cross_shard_latency_mean_ms", "ms"),
    ("load_imbalance", "x"),
    ("service_admitted", "ops"),
    ("service_rejected", "ops"),
    ("service_submit_p50_ms", "ms"),
    ("service_submit_p99_ms", "ms"),
    ("service_submit_p999_ms", "ms"),
    ("app_ops_applied", "ops"),
    ("app_checkpoints", ""),
    ("app_recoveries", ""),
    ("app_replay_ops", "ops"),
    ("app_transfer_bytes", "B"),
    ("wall_elapsed_s", "s"),
    ("timer_slack_mean_ms", "ms"),
    ("timer_slack_max_ms", "ms"),
    ("calibrated_delta_ms", "ms"),
    ("deadline_margin_ms", "ms"),
    ("obs_sign_p99_ms", "ms"),
    ("obs_verify_p99_ms", "ms"),
    ("obs_countersign_p99_ms", "ms"),
)

#: ``repro list`` groups scenarios into these families, in this order.
#: A scenario's family is its name's prefix before the first separator;
#: anything unrecognised lands in the stress bucket.
SCENARIO_FAMILIES = (
    ("fig", "Paper figures"),
    ("adv", "Adversarial audits"),
    ("scale", "Scale & batching"),
    ("svc", "Client-facing service"),
    ("app", "Replicated KV application"),
    ("stress", "Stress & comparators"),
)


def scenario_family(name: str) -> str:
    """The family key a scenario name sorts under in ``repro list``."""
    prefix = name.split("_", 1)[0]
    if prefix.startswith("fig"):
        return "fig"
    if prefix in ("adv", "scale", "svc", "app"):
        return prefix
    return "stress"


def build_parser() -> argparse.ArgumentParser:
    """The legacy single-experiment parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FS-NewTOP reproduction: run one ordering experiment. "
        "Scenario subcommands: " + ", ".join(SUBCOMMANDS),
    )
    parser.add_argument(
        "--system",
        choices=["newtop", "fs-newtop"],
        default="fs-newtop",
        help="which middleware stack to run (default: fs-newtop)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run both systems with identical workloads and show both",
    )
    parser.add_argument("--members", type=int, default=4, help="group size (default 4)")
    parser.add_argument(
        "--messages", type=int, default=10, help="multicasts per member (default 10)"
    )
    parser.add_argument(
        "--interval", type=float, default=150.0, help="send interval in ms (default 150)"
    )
    parser.add_argument(
        "--size", type=int, default=3, help="message payload bytes (default 3)"
    )
    parser.add_argument(
        "--service",
        choices=[s.value for s in ServiceType],
        default=ServiceType.SYMMETRIC_TOTAL.value,
        help="NewTOP service type (default symmetric_total)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed (default 0)")
    return parser


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def build_command_parser() -> argparse.ArgumentParser:
    """The scenario/campaign subcommand parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Declarative scenario and campaign runner."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser("list", help="catalogue the registered scenarios")
    lister.add_argument(
        "--family",
        help="only list this family (fig/adv/scale/svc/app/stress) or "
        "scenarios whose name starts with this prefix (e.g. scale_shard)",
    )

    run = sub.add_parser("run", help="run one scenario's grid once and print tables")
    run.add_argument("--scenario", required=True, help="registered scenario name")
    run.add_argument("--systems", help="comma-separated subset of the scenario's systems")
    run.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    run.add_argument(
        "--jobs", type=_positive_int, default=1, help="parallel worker processes"
    )
    run.add_argument(
        "--shards",
        type=_positive_int,
        help="deploy as this many keyspace shards (fs-newtop scenarios; "
        "overrides the scenario's base, sweep points still win)",
    )
    run.add_argument(
        "--cross-shard-ratio",
        type=float,
        help="with --shards: fraction of writes spanning two shards "
        "(default: the scenario's, else 0)",
    )
    _add_transport_arguments(run)

    campaign = sub.add_parser(
        "campaign", help="run a scenario's grid with repeats, in parallel, to JSONL"
    )
    campaign.add_argument("--scenario", required=True, help="registered scenario name")
    campaign.add_argument("--systems", help="comma-separated subset of systems")
    campaign.add_argument(
        "--repeats", type=_positive_int, default=1, help="repeats per grid cell"
    )
    campaign.add_argument(
        "--jobs", type=_positive_int, default=1, help="parallel worker processes"
    )
    campaign.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    campaign.add_argument(
        "--out",
        help="JSONL output path (default results/<scenario>.jsonl)",
    )

    report = sub.add_parser("report", help="aggregate stored campaign results")
    report.add_argument("--results", required=True, help="JSONL file written by campaign")
    report.add_argument("--scenario", help="only report this scenario")

    bench = sub.add_parser(
        "bench", help="run the fixed perf suite; optionally gate against a baseline"
    )
    bench.add_argument(
        "--out",
        default="results/perf_report.json",
        help="report JSON path (default results/perf_report.json)",
    )
    bench.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against this baseline JSON; exit 1 on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative throughput drop before --check fails (default 0.25)",
    )
    bench.add_argument(
        "--update",
        metavar="BASELINE",
        help="write the measured report to this baseline path as well",
    )
    bench.add_argument(
        "--only",
        help="comma-separated subset of benchmarks (default: whole suite)",
    )
    bench.add_argument(
        "--repeats",
        type=_positive_int,
        default=2,
        help="best-of-N runs per benchmark (default 2)",
    )

    audit = sub.add_parser(
        "audit",
        help="run a scenario under the invariant oracles; non-zero on violation",
    )
    audit.add_argument("--scenario", required=True, help="registered scenario name")
    audit.add_argument("--systems", help="comma-separated subset of the scenario's systems")
    audit.add_argument(
        "--adversary",
        help="overlay this named adversary strategy on every run "
        "(see `repro.adversary.PRESETS`)",
    )
    audit.add_argument(
        "--member",
        type=int,
        help="retarget the overlaid adversary at this member index",
    )
    audit.add_argument(
        "--at",
        type=float,
        help="retime the overlaid adversary's activation (ms)",
    )
    audit.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    audit.add_argument(
        "--deadline",
        type=float,
        default=5000.0,
        help="detection deadline after first manifestation, ms (default 5000)",
    )
    _add_transport_arguments(audit)

    serve = sub.add_parser(
        "serve",
        help="run the ordering service: an HTTP gateway over a live group",
    )
    serve.add_argument(
        "--scenario",
        help="base the deployment on this registered scenario's spec "
        "(default: a 4-member fs-newtop group)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8420, help="bind port (0 = pick a free one)"
    )
    serve.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    serve.add_argument(
        "--shards",
        type=_positive_int,
        help="deploy as this many keyspace shards",
    )
    serve.add_argument(
        "--for",
        dest="duration",
        type=float,
        help="serve for this many seconds, then exit (default: until Ctrl-C)",
    )
    _add_transport_arguments(serve)

    obs = sub.add_parser(
        "obs",
        help="snapshot an observability registry: scrape a live /metrics "
        "endpoint or run a scenario and dump its metrics as JSON",
    )
    source = obs.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--url",
        help="scrape this /metrics endpoint (Prometheus text) and re-emit "
        "the parsed families as JSON",
    )
    source.add_argument(
        "--scenario",
        help="run this registered scenario's base spec once with "
        "observability on and dump the registry snapshot",
    )
    obs.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    obs.add_argument(
        "--out", help="write the JSON here instead of stdout"
    )
    _add_transport_arguments(obs)
    return parser


def _add_transport_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--transport`` overlay flags (run and audit)."""
    parser.add_argument(
        "--transport",
        choices=("sim", "asyncio"),
        help="clock backend: 'sim' (default, discrete-event) or 'asyncio' "
        "(wall clock with host-calibrated deadlines)",
    )
    parser.add_argument(
        "--tcp",
        action="store_true",
        help="with --transport asyncio: carry messages over localhost TCP "
        "frames instead of in-process queues",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        help="with --transport asyncio: wall seconds per virtual second "
        "(0.5 = run the virtual timeline at double wall speed)",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="with --transport asyncio: skip host calibration and keep the "
        "spec's cost-model deadlines",
    )
    parser.add_argument(
        "--obs-port",
        type=int,
        help="force observability on and, with --transport asyncio, serve "
        "GET /metrics on this port during the run (0 = pick a free one)",
    )
    parser.add_argument(
        "--crypto",
        metavar="PROVIDER[:CODEC]",
        help="crypto overlay for fs-newtop runs: signature provider "
        "(rsa/hmac/ed25519) with an optional signing+framing codec "
        "(canonical/binwire), e.g. 'ed25519:binwire'",
    )


# ----------------------------------------------------------------------
# legacy single-experiment path
# ----------------------------------------------------------------------
def _run(system: str, args: argparse.Namespace):
    return run_ordering_experiment(
        system,
        args.members,
        seed=args.seed,
        messages_per_member=args.messages,
        interval=args.interval,
        message_size=args.size,
        service=args.service,
    )


def _legacy_main(argv: list[str] | None) -> int:
    args = build_parser().parse_args(argv)
    if args.members < 1:
        print("error: --members must be >= 1")
        return 2
    systems = ["newtop", "fs-newtop"] if args.compare else [args.system]
    results = {system: _run(system, args) for system in systems}

    metrics = [
        "mean latency (ms)",
        "p95 latency (ms)",
        "throughput (msg/s)",
        "network messages",
        "network MB",
        "fail-signals",
    ]
    series = {}
    for system, result in results.items():
        series[system] = [
            result.latency.mean,
            result.latency.p95,
            result.throughput_msgs_per_s,
            float(result.network_messages),
            result.network_bytes / 1e6,
            float(result.fail_signals),
        ]
    print(
        format_series_table(
            f"Ordering experiment: {args.members} members, "
            f"{args.messages} msgs/member @ {args.interval:.0f}ms, "
            f"{args.size}B payloads, service={args.service}",
            "metric",
            metrics,
            series,
        )
    )
    return 0


# ----------------------------------------------------------------------
# scenario subcommands
# ----------------------------------------------------------------------
def _parse_systems(value: str | None) -> tuple[str, ...] | None:
    if value is None:
        return None
    return tuple(name.strip() for name in value.split(",") if name.strip())


def _resolve_scenario(args: argparse.Namespace):
    """Shared run/campaign front half: look up the scenario and validate
    the ``--systems`` subset. Returns ``(scenario, systems)`` or prints
    an error and returns ``None``."""
    from repro.experiments import UnknownScenarioError, get_scenario

    try:
        scenario = get_scenario(args.scenario)
    except UnknownScenarioError as exc:
        print(f"error: {exc}")
        return None
    systems = _parse_systems(args.systems)
    if systems is not None and not systems:
        print("error: --systems was given but names no systems")
        return None
    if systems:
        unknown = [s for s in systems if s not in scenario.systems]
        if unknown:
            print(
                f"error: scenario {scenario.name!r} does not run "
                f"{', '.join(unknown)}; its systems: {', '.join(scenario.systems)}"
            )
            return None
    return scenario, systems


def _cmd_list(family: str | None = None) -> int:
    from repro.experiments import scenarios

    catalogue = scenarios()
    if family is not None:
        catalogue = [
            scenario
            for scenario in catalogue
            if scenario_family(scenario.name) == family
            or scenario.name.startswith(family)
        ]
        if not catalogue:
            known = sorted(
                {key for key, __ in SCENARIO_FAMILIES}
                | {scenario_family(s.name) for s in scenarios()}
            )
            print(
                f"error: no scenarios in family {family!r}; known families: "
                f"{', '.join(known)} (or any scenario-name prefix)"
            )
            return 2
    grouped: dict[str, list] = {}
    for scenario in catalogue:
        grouped.setdefault(scenario_family(scenario.name), []).append(scenario)
    for family_key, heading in SCENARIO_FAMILIES:
        members = grouped.pop(family_key, [])
        if not members:
            continue
        print(f"== {heading} ({len(members)}) ==")
        for scenario in members:
            figure = f" [{scenario.figure}]" if scenario.figure else ""
            grid = len(scenario.sweep) * len(scenario.systems)
            print(f"{scenario.name}{figure}")
            print(f"  {scenario.title}")
            print(
                f"  systems: {', '.join(scenario.systems)} | "
                f"sweep: {scenario.sweep_axis} x{len(scenario.sweep)} | "
                f"grid: {grid} runs"
            )
        print()
    return 0


def _record_tables(scenario, records, title_prefix: str) -> list[str]:
    """Per-metric tables (x-axis vs system) of mean-over-repeats.

    A system with an incomplete sweep (e.g. from an interrupted
    campaign) is omitted from the table but called out in a note."""
    labels = scenario.labels()
    systems = [s for s in scenario.systems if any(r.system == s for r in records)]
    tables = []
    for metric, unit in REPORT_METRICS:
        stats = aggregate_records(records, metric, key=lambda r: (r.system, r.x_label))
        if not stats:
            continue
        series = {}
        notes = []
        for system in systems:
            points = [stats.get((system, label)) for label in labels]
            missing = [str(label) for label, p in zip(labels, points) if p is None]
            if missing:
                notes.append(
                    f"note: {system} omitted from {metric} table -- no records "
                    f"for {scenario.sweep_axis} {', '.join(missing)} (partial campaign?)"
                )
                continue
            series[system] = [p.mean for p in points]
        if not series:
            tables.extend(notes)
            continue
        tables.append(
            format_series_table(
                f"{title_prefix}: {metric}",
                scenario.sweep_axis,
                labels,
                series,
                unit=unit,
            )
        )
        tables.extend(notes)
    return tables


def _print_summary(scenario, records) -> None:
    """Cross-system grid summary plus the observed throughput ordering."""
    metric = "throughput_msgs_per_s"
    per_system = aggregate_records(records, metric, key=lambda r: r.system)
    if not per_system:
        return
    print("grid summary (throughput, all points x repeats):")
    for system in scenario.systems:
        if system in per_system:
            print(f"  {system:<10} {per_system[system]}")
    # The figures' punchline lives at the end of the sweep (the paper
    # quotes its fig. 7 overheads "past 10 members"), so the headline
    # ordering is taken at the largest sweep point.
    last = scenario.labels()[-1]
    at_last = aggregate_records(
        records, metric, key=lambda r: (r.system, r.x_label)
    )
    tail = {
        system: stats
        for (system, label), stats in at_last.items()
        if label == last
    }
    if tail:
        ordered = sorted(tail, key=lambda s: tail[s].mean, reverse=True)
        print(
            f"throughput ordering at {scenario.sweep_axis}={last}: "
            + " >= ".join(ordered)
        )
    batching = batching_summary(records)
    if batching.get("batched_cells"):
        sizes = [s["batch_mean_size"] for s in batching["batched_cells"].values()]
        line = (
            f"batching: {len(batching['batched_cells'])} batched cell(s), "
            f"mean batch size {sum(sizes) / len(sizes):.2f}"
        )
        if "amortisation" in batching:
            line += (
                f", signatures/ordered amortisation x{batching['amortisation']:.2f} "
                f"vs unbatched cells"
            )
        if batching.get("degenerate_cells"):
            line += (
                f" ({len(batching['degenerate_cells'])} cell(s) signed but "
                f"ordered nothing; excluded)"
            )
        print(line)
    sharding = shard_summary(records)
    if sharding:
        line = (
            f"sharding: {sharding['sharded_cells']} sharded cell(s) up to "
            f"S={sharding['max_shards']}, mean load imbalance "
            f"x{sharding['mean_load_imbalance']:.2f}"
        )
        if "scaling" in sharding:
            line += (
                f", aggregate throughput x{sharding['scaling']:.2f} at "
                f"S={sharding['max_shards']} vs S=1"
            )
        if sharding.get("cross_shard_ops"):
            line += (
                f"; {sharding['cross_shard_ordered']}/{sharding['cross_shard_ops']} "
                f"cross-shard ops ordered, mean "
                f"{sharding['cross_shard_latency_mean_ms']:.1f}ms"
            )
        print(line)
    service = service_summary(records)
    if service:
        line = (
            f"service: {service['served_cells']} served cell(s), "
            f"{service['admitted']} admitted / {service['rejected']} shed "
            f"({service['admission_rate']:.0%} admission), "
            f"submit p99/p99.9 {service['submit_p99_ms']:.1f}/"
            f"{service['submit_p999_ms']:.1f}ms"
        )
        shed = [
            f"{reason} {service[key]}"
            for reason, key in (
                ("auth", "rejected_auth"),
                ("rate", "rejected_rate"),
                ("overload", "rejected_overload"),
            )
            if service.get(key)
        ]
        if shed:
            line += f" (shed: {', '.join(shed)})"
        if service["gave_up"]:
            line += f"; {service['gave_up']} session(s) gave up"
        if service["feed_violations"]:
            line += f"; FEED VIOLATIONS: {service['feed_violations']}"
        print(line)
    observability = obs_summary(records)
    if observability:
        line = f"obs: {observability['observed_cells']} instrumented cell(s)"
        parts = [
            f"{stage} p99 {observability[key]:.2f}ms"
            for stage, key in (
                ("sign", "obs_sign_p99_ms"),
                ("verify", "obs_verify_p99_ms"),
                ("countersign", "obs_countersign_p99_ms"),
            )
            if key in observability
        ]
        if parts:
            line += ", " + ", ".join(parts)
        if "obs_submit_p999_ms" in observability:
            line += f", submit p99.9 {observability['obs_submit_p999_ms']:.1f}ms"
        print(line)
    if scenario.expected:
        print(f"expected: {scenario.expected}")


def _print_results(scenario, records) -> None:
    """Shared run/campaign back half: tables plus the summary."""
    for table in _record_tables(scenario, records, scenario.title):
        print()
        print(table)
    print()
    _print_summary(scenario, records)


def _apply_shard_override(scenario, systems, args):
    """The ``repro run --shards`` overlay: re-base the scenario on a
    ShardSpec.  Returns the (possibly rewritten) scenario, or ``None``
    after printing an error.  Sweep points that set their own ``shard``
    (the scale_shard family) still win over the overlay."""
    import dataclasses as _dataclasses

    from repro.experiments import ShardSpec

    chosen = systems if systems else scenario.systems
    not_fs = [s for s in chosen if s != "fs-newtop"]
    if not_fs:
        print(
            f"error: --shards needs fs-newtop runs only; drop "
            f"{', '.join(not_fs)} with --systems fs-newtop"
        )
        return None
    base_shard = scenario.base.shard
    ratio = args.cross_shard_ratio
    if ratio is None:
        ratio = base_shard.cross_shard_ratio if base_shard is not None else 0.0
    keyspace = base_shard.keyspace if base_shard is not None else 64
    try:
        shard = ShardSpec(
            shards=args.shards, cross_shard_ratio=ratio, keyspace=keyspace
        )
        base = scenario.base.replace(system="fs-newtop", shard=shard)
        if base.n_members % shard.shards:
            raise ValueError(
                f"scenario {scenario.name!r} has {base.n_members} members, "
                f"not divisible into {shard.shards} shards"
            )
    except ValueError as exc:
        print(f"error: {exc}")
        return None
    return _dataclasses.replace(scenario, base=base)


def _with_obs_port(spec, port: int):
    """The ``--obs-port`` overlay: force observability onto a spec.

    An explicit flag opts measurement runs in (they are un-instrumented
    by default so the perf gate sees the obs-disabled stack); on a live
    transport it also picks the ``GET /metrics`` bind port."""
    import dataclasses as _dataclasses

    from repro.experiments.spec import ObsSpec

    if spec.obs is not None:
        return spec.replace(
            obs=_dataclasses.replace(spec.obs, enabled=True, http_port=port)
        )
    return spec.replace(obs=ObsSpec(http_port=port))


def _check_obs_port(port: int | None) -> bool:
    if port is not None and not 0 <= port <= 65535:
        print(f"error: --obs-port must be in [0, 65535], got {port}")
        return False
    return True


def _parse_transport_override(args):
    """The ``--transport`` overlay: build the TransportSpec the flags
    describe.  Returns ``(ok, spec_or_None)``; prints an error and
    returns ``(False, None)`` on a bad combination."""
    from repro.experiments.spec import TransportSpec

    if args.transport is None:
        if args.tcp or args.time_scale is not None or args.no_calibrate:
            print("error: --tcp/--time-scale/--no-calibrate need --transport asyncio")
            return False, None
        return True, None
    try:
        spec = TransportSpec(
            kind=args.transport,
            tcp=args.tcp,
            time_scale=args.time_scale if args.time_scale is not None else 1.0,
            calibrate=not args.no_calibrate,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return False, None
    return True, spec


def _parse_crypto_override(args):
    """The ``--crypto`` overlay: build the CryptoSpec the flag
    describes (``PROVIDER`` or ``PROVIDER:CODEC``).  Returns
    ``(ok, spec_or_None)``; prints an error and returns
    ``(False, None)`` on an unknown provider or codec."""
    from repro.crypto.provider import DEFAULT_CODEC, CryptoSpec

    if args.crypto is None:
        return True, None
    provider, sep, codec = args.crypto.partition(":")
    try:
        spec = CryptoSpec(
            provider=provider, codec=codec if sep else DEFAULT_CODEC
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return False, None
    return True, spec


def _apply_crypto_override(scenario, systems, crypto):
    """Pin every grid cell of a scenario to a CryptoSpec.  The provider
    seam lives in the fs-newtop stack only, so a mixed scenario needs a
    ``--systems`` subset first."""
    import dataclasses as _dataclasses

    chosen = systems if systems else scenario.systems
    not_fs = [s for s in chosen if s != "fs-newtop"]
    if not_fs:
        print(
            f"error: --crypto applies to fs-newtop runs only; drop "
            f"{', '.join(not_fs)} with --systems fs-newtop"
        )
        return None
    try:
        base = scenario.base.replace(system="fs-newtop", crypto=crypto)
    except ValueError as exc:
        print(f"error: {exc}")
        return None
    return _dataclasses.replace(scenario, base=base)


def _apply_transport_override(scenario, systems, transport):
    """Pin every grid cell of a scenario to a TransportSpec.  The live
    backends only drive the ordering systems, so a scenario that also
    runs pbft needs a ``--systems`` subset first."""
    import dataclasses as _dataclasses

    chosen = systems if systems else scenario.systems
    if transport.live and "pbft" in chosen:
        print(
            "error: --transport asyncio cannot drive pbft; drop it with "
            "--systems (e.g. --systems fs-newtop)"
        )
        return None
    return _dataclasses.replace(
        scenario, base=scenario.base.replace(transport=transport)
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import Campaign

    resolved = _resolve_scenario(args)
    if resolved is None:
        return 2
    scenario, systems = resolved
    if args.shards is not None:
        scenario = _apply_shard_override(scenario, systems, args)
        if scenario is None:
            return 2
    elif args.cross_shard_ratio is not None:
        print("error: --cross-shard-ratio needs --shards")
        return 2
    ok, transport = _parse_transport_override(args)
    if not ok:
        return 2
    if transport is not None:
        scenario = _apply_transport_override(scenario, systems, transport)
        if scenario is None:
            return 2
    ok, crypto = _parse_crypto_override(args)
    if not ok:
        return 2
    if crypto is not None:
        scenario = _apply_crypto_override(scenario, systems, crypto)
        if scenario is None:
            return 2
    if not _check_obs_port(args.obs_port):
        return 2
    if args.obs_port is not None:
        import dataclasses as _dataclasses

        scenario = _dataclasses.replace(
            scenario, base=_with_obs_port(scenario.base, args.obs_port)
        )
    campaign = Campaign(scenario, repeats=1, base_seed=args.seed, systems=systems)
    try:
        records = campaign.execute(jobs=args.jobs)
    except ValueError as exc:
        if args.shards is None:
            raise
        # A sweep point can override what the --shards overlay checked
        # (e.g. an n_members sweep that breaks divisibility).
        print(f"error: {exc}")
        return 2
    _print_results(scenario, records)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments import Campaign, ResultStore

    resolved = _resolve_scenario(args)
    if resolved is None:
        return 2
    scenario, systems = resolved
    out = pathlib.Path(args.out) if args.out else pathlib.Path("results") / f"{scenario.name}.jsonl"
    store = ResultStore(out)
    campaign = Campaign(
        scenario,
        repeats=args.repeats,
        base_seed=args.seed,
        systems=systems,
    )
    tasks = campaign.plan()
    print(
        f"campaign {scenario.name}: {len(tasks)} runs "
        f"({len(campaign.systems)} systems x {len(scenario.sweep)} points x "
        f"{args.repeats} repeats), jobs={args.jobs}"
    )
    records = campaign.execute(jobs=args.jobs, store=store)
    print(f"persisted {len(records)} records to {out}")
    _print_results(scenario, records)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ResultStore, UnknownScenarioError, get_scenario

    store = ResultStore(args.results)
    records = store.load()
    if not records:
        print(f"error: no records in {args.results}")
        return 2
    names = [args.scenario] if args.scenario else sorted({r.scenario for r in records})
    for name in names:
        scoped = [r for r in records if r.scenario == name]
        if not scoped:
            print(f"error: no records for scenario {name!r} in {args.results}")
            return 2
        try:
            scenario = get_scenario(name)
        except UnknownScenarioError as exc:
            print(f"error: {exc}")
            return 2
        # Re-running the same campaign command appends bit-identical
        # records; counting them as extra repeats would inflate n with
        # zero new information.
        unique = {(r.system, r.x_label, r.repeat, r.seed): r for r in scoped}
        if len(unique) < len(scoped):
            print(
                f"note: dropped {len(scoped) - len(unique)} duplicate records "
                f"(same system/point/repeat/seed re-run)"
            )
            scoped = list(unique.values())
        repeats = max(r.repeat for r in scoped) + 1
        print(f"== {scenario.title} ({len(scoped)} runs, {repeats} repeats) ==")
        for table in _record_tables(scenario, scoped, f"report {name}"):
            print()
            print(table)
        print()
        _print_summary(scenario, scoped)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.adversary import PRESETS
    from repro.adversary.engine import AdversaryWiringError
    from repro.experiments import audit_scenario
    from repro.invariants import AuditConfig

    resolved = _resolve_scenario(args)
    if resolved is None:
        return 2
    scenario, systems = resolved
    overlay = None
    if args.adversary is not None:
        preset = PRESETS.get(args.adversary)
        if preset is None:
            print(
                f"error: unknown adversary {args.adversary!r}; "
                f"presets: {', '.join(sorted(PRESETS))}"
            )
            return 2
        overrides = {}
        if args.member is not None:
            overrides["member"] = args.member
        if args.at is not None:
            overrides["at"] = args.at
        try:
            overlay = dataclasses.replace(preset, **overrides)
        except ValueError as exc:
            print(f"error: bad adversary override: {exc}")
            return 2
    ok, transport = _parse_transport_override(args)
    if not ok:
        return 2
    ok, crypto = _parse_crypto_override(args)
    if not ok:
        return 2
    if not _check_obs_port(args.obs_port):
        return 2
    config = AuditConfig(detection_deadline_ms=args.deadline)

    failures = 0
    audited = 0
    for system, x_label, spec in scenario.expand(systems):
        if system == "pbft":
            print(f"note: skipping {system} at {scenario.sweep_axis}={x_label} "
                  f"(only the ordering systems are auditable)")
            continue
        if overlay is not None:
            if system != "fs-newtop" and overlay.needs_pair_hooks():
                print(
                    f"note: skipping {system} at {scenario.sweep_axis}={x_label} "
                    f"(adversary {args.adversary!r} drives fail-signal pair "
                    f"hooks; fs-newtop only)"
                )
                continue
            target = overlay.max_member()
            if target is not None and target >= spec.n_members:
                print(
                    f"error: adversary targets member {target} but the spec has "
                    f"only {spec.n_members} members"
                )
                return 2
            spec = spec.replace(adversaries=spec.adversaries + (overlay,))
        if crypto is not None:
            if system != "fs-newtop":
                print(
                    f"note: skipping {system} at {scenario.sweep_axis}={x_label} "
                    f"(--crypto drives the fs-newtop signing stack only)"
                )
                continue
            spec = spec.replace(crypto=crypto)
        if transport is not None:
            spec = spec.replace(transport=transport)
        if args.obs_port is not None:
            spec = _with_obs_port(spec, args.obs_port)
        spec = spec.replace(seed=spec.seed + args.seed)
        try:
            run = audit_scenario(spec, config=config, scenario=scenario.name)
        except AdversaryWiringError as exc:
            print(f"error: {exc}")
            return 2
        audited += 1
        print(f"-- {scenario.name} [{system} {scenario.sweep_axis}={x_label}]")
        print(run.report.render())
        if run.flight_bundle:
            print(f"flight recorder bundle: {run.flight_bundle}")
        if not run.report.ok:
            failures += 1
    if audited == 0:
        print("error: nothing auditable in this scenario")
        return 2
    print(
        f"audit: {audited} run(s), {failures} failing"
        + (f" -- adversary overlay: {args.adversary}" if overlay is not None else "")
    )
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments import ShardSpec, UnknownScenarioError, get_scenario
    from repro.experiments.spec import ScenarioSpec, TransportSpec
    from repro.service.serve import build_server, describe

    if args.scenario is not None:
        try:
            spec = get_scenario(args.scenario).base
        except UnknownScenarioError as exc:
            print(f"error: {exc}")
            return 2
        if spec.system == "pbft":
            print(f"error: scenario {args.scenario!r} is pbft-based; "
                  "the gateway fronts the ordering systems only")
            return 2
    else:
        spec = ScenarioSpec(system="fs-newtop", n_members=4)
    ok, transport = _parse_transport_override(args)
    if not ok:
        return 2
    if transport is None:
        transport = TransportSpec(kind="asyncio")
    elif not transport.live:
        print("error: repro serve needs a live transport (--transport asyncio)")
        return 2
    ok, crypto = _parse_crypto_override(args)
    if not ok:
        return 2
    try:
        overrides: dict = {"transport": transport, "seed": spec.seed + args.seed}
        if crypto is not None:
            overrides["crypto"] = crypto
        if args.shards is not None:
            base_shard = spec.shard
            overrides["shard"] = ShardSpec(
                shards=args.shards,
                cross_shard_ratio=(
                    base_shard.cross_shard_ratio if base_shard is not None else 0.0
                ),
                keyspace=base_shard.keyspace if base_shard is not None else 64,
            )
            if spec.n_members % args.shards:
                raise ValueError(
                    f"{spec.n_members} members do not divide into "
                    f"{args.shards} shards"
                )
        spec = spec.replace(**overrides)
        handle = build_server(spec, host=args.host, port=args.port)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(describe(handle))

    # The socket binds inside a clock starter, so with --port 0 the
    # real port is only known once the run is underway: announce from
    # a second starter that waits for the bind.
    async def _announce() -> None:
        import asyncio

        while handle.server.port == 0:
            await asyncio.sleep(0.005)
        if args.duration is not None:
            print(f"serving on {handle.server.address} for {args.duration:g}s")
        else:
            print(f"serving on {handle.server.address} (Ctrl-C to stop)")

    handle.clock.add_starter(_announce)
    if args.duration is not None:
        handle.run(until_ms=args.duration * 1000.0)
        return 0
    try:
        handle.run_forever()
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    if args.url is not None:
        if (
            args.transport is not None
            or args.tcp
            or args.time_scale is not None
            or args.no_calibrate
            or args.obs_port is not None
            or args.crypto is not None
        ):
            print(
                "error: transport/--obs-port/--crypto flags apply to "
                "--scenario mode only"
            )
            return 2
        import urllib.error
        import urllib.request

        from repro.obs import parse

        try:
            with urllib.request.urlopen(args.url, timeout=10.0) as response:
                text = response.read().decode()
        except (OSError, ValueError, urllib.error.URLError) as exc:
            print(f"error: cannot scrape {args.url}: {exc}")
            return 2
        try:
            document = parse(text)
        except ValueError as exc:
            print(f"error: {args.url} is not a Prometheus text exposition: {exc}")
            return 2
    else:
        from repro.experiments import (
            UnknownScenarioError,
            get_scenario,
            observe_spec,
        )

        try:
            scenario = get_scenario(args.scenario)
        except UnknownScenarioError as exc:
            print(f"error: {exc}")
            return 2
        ok, transport = _parse_transport_override(args)
        if not ok:
            return 2
        ok, crypto = _parse_crypto_override(args)
        if not ok:
            return 2
        if not _check_obs_port(args.obs_port):
            return 2
        spec = scenario.base.replace(seed=scenario.base.seed + args.seed)
        if transport is not None:
            spec = spec.replace(transport=transport)
        if crypto is not None:
            try:
                spec = spec.replace(crypto=crypto)
            except ValueError as exc:
                print(f"error: {exc}")
                return 2
        if args.obs_port is not None:
            spec = _with_obs_port(spec, args.obs_port)
        document = observe_spec(spec, scenario=scenario.name)
    payload = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(payload + "\n")
        print(f"wrote {out}")
    else:
        print(payload)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import perfreport

    names = None
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in perfreport.SUITE]
        if unknown:
            print(
                f"error: unknown benchmarks {', '.join(unknown)}; "
                f"suite: {', '.join(perfreport.SUITE)}"
            )
            return 2
    try:
        baseline = perfreport.load_report(args.check) if args.check else None
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {args.check}: {exc}")
        return 2

    print(f"perf suite ({args.repeats} runs per benchmark, best-of):")
    results = perfreport.run_suite(names, repeats=args.repeats, progress=print)
    report = perfreport.build_report(results)
    out = perfreport.write_report(report, args.out)
    print(f"report written to {out}")
    if args.update:
        baseline_path = perfreport.write_report(report, args.update)
        print(f"baseline updated at {baseline_path}")

    if baseline is None:
        return 0
    comparisons = perfreport.compare(report, baseline, tolerance=args.tolerance)
    print(f"check vs {args.check} (tolerance {args.tolerance:.0%}):")
    for comparison in comparisons:
        print(f"  {comparison.render()}")
    if not perfreport.check_passed(comparisons):
        print("FAIL: performance regression beyond tolerance")
        return 1
    print("OK: within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        import sys

        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        args = build_command_parser().parse_args(argv)
        if args.command == "list":
            return _cmd_list(args.family)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "audit":
            return _cmd_audit(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "obs":
            return _cmd_obs(args)
        return _cmd_report(args)
    return _legacy_main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
