"""Command-line experiment runner.

Runs a single ordering experiment on either system and prints the
measured figures -- the quickest way to poke at the reproduction
without writing a script:

    python -m repro --system fs-newtop --members 6 --messages 10
    python -m repro --compare --members 8 --interval 150
"""

from __future__ import annotations

import argparse

from repro.analysis import format_series_table
from repro.newtop.services import ServiceType
from repro.workloads import run_ordering_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FS-NewTOP reproduction: run one ordering experiment.",
    )
    parser.add_argument(
        "--system",
        choices=["newtop", "fs-newtop"],
        default="fs-newtop",
        help="which middleware stack to run (default: fs-newtop)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run both systems with identical workloads and show both",
    )
    parser.add_argument("--members", type=int, default=4, help="group size (default 4)")
    parser.add_argument(
        "--messages", type=int, default=10, help="multicasts per member (default 10)"
    )
    parser.add_argument(
        "--interval", type=float, default=150.0, help="send interval in ms (default 150)"
    )
    parser.add_argument(
        "--size", type=int, default=3, help="message payload bytes (default 3)"
    )
    parser.add_argument(
        "--service",
        choices=[s.value for s in ServiceType],
        default=ServiceType.SYMMETRIC_TOTAL.value,
        help="NewTOP service type (default symmetric_total)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed (default 0)")
    return parser


def _run(system: str, args: argparse.Namespace):
    return run_ordering_experiment(
        system,
        args.members,
        seed=args.seed,
        messages_per_member=args.messages,
        interval=args.interval,
        message_size=args.size,
        service=args.service,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.members < 1:
        print("error: --members must be >= 1")
        return 2
    systems = ["newtop", "fs-newtop"] if args.compare else [args.system]
    results = {system: _run(system, args) for system in systems}

    metrics = [
        "mean latency (ms)",
        "p95 latency (ms)",
        "throughput (msg/s)",
        "network messages",
        "network MB",
        "fail-signals",
    ]
    series = {}
    for system, result in results.items():
        series[system] = [
            result.latency.mean,
            result.latency.p95,
            result.throughput_msgs_per_s,
            float(result.network_messages),
            result.network_bytes / 1e6,
            float(result.fail_signals),
        ]
    print(
        format_series_table(
            f"Ordering experiment: {args.members} members, "
            f"{args.messages} msgs/member @ {args.interval:.0f}ms, "
            f"{args.size}B payloads, service={args.service}",
            "metric",
            metrics,
            series,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
