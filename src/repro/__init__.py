"""FS-NewTOP reproduction.

Reproduction of "From Crash Tolerance to Authenticated Byzantine
Tolerance: A Structured Approach, the Cost and Benefits" (Mpoeleng,
Ezhilchelvan and Speirs, DSN 2003).

The package is layered bottom-up:

* :mod:`repro.sim` -- deterministic discrete-event simulation kernel.
* :mod:`repro.crypto` -- RSA/MD5 signing substrate (assumption A5).
* :mod:`repro.net` -- synchronous LAN and asynchronous network models.
* :mod:`repro.corba` -- CORBA-lite ORB with interceptors and thread pools.
* :mod:`repro.newtop` -- the crash-tolerant NewTOP group communication
  middleware (the paper's baseline).
* :mod:`repro.core` -- the paper's contribution: fail-signal (FS)
  processes built from self-checking replica pairs.
* :mod:`repro.fsnewtop` -- NewTOP extended with FS wrappers
  (authenticated-Byzantine-tolerant middleware).
* :mod:`repro.workloads`, :mod:`repro.analysis` -- experiment drivers
  and measurement tooling for the paper's Figures 6-8.
"""

from repro._version import __version__

__all__ = ["__version__"]
