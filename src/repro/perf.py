"""Hot-path caches shared by the crypto/net/sim stack.

Profiling a figure-7 sweep shows the simulator spending the large
majority of host time re-deriving values that never change: every
multicast of a ``DoubleSigned`` output re-encodes the same frozen
payload once per destination (wire sizing, payload bytes, countersign
bytes) and re-verifies the same two signatures at each of the *n*
inboxes.  The caches here memoise exactly those derivations.

Correctness contract
--------------------

* :data:`encode_cache` maps *object identity* to canonical encoding.
  It is consulted only for frozen dataclasses whose fields are all
  ``init=True, compare=True`` (see ``repro.crypto.canonical``); lazily
  self-mutating messages (fields declared ``compare=False``, e.g. the
  PBFT size memos) are never cached.  Entries hold a strong reference
  to the key object, so an ``id`` can never be reused while its entry
  is alive.
* Signature-verification caching lives per :class:`SignatureScheme`
  instance (see ``repro.crypto.signing``) and is keyed by the signer's
  *public material* plus the message digest plus the signature value,
  so two simulations reusing identity names can never cross-pollute.

Both caches are pure memoisation: they change host wall-clock time
only, never simulated time, RNG draws, or trace contents -- the
determinism suite pins this.
"""

from __future__ import annotations

import contextlib
import dataclasses
import gc
import itertools
import weakref
from typing import Any, Hashable, Iterator


#: Every IdentityCache ever constructed, so :func:`clear_caches` cannot
#: miss one that lives in another module (e.g. the content-key and
#:  body-size memos in ``repro.core.messages``).  Weak references: the
#: per-KeyStore verdict caches must still die with their keystore.
_identity_caches: "weakref.WeakSet[IdentityCache]" = weakref.WeakSet()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one cache (reset by ``clear``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class IdentityCache:
    """Identity-keyed memo of derived values for immutable messages
    (canonical encodings, wire sizes).

    Entries are ``id(obj) -> (obj, value)``; the strong reference to
    ``obj`` keeps its ``id`` valid for the entry's lifetime.  When the
    cache fills up, the oldest quarter is evicted (insertion order) --
    protocol messages are hot for the duration of one multicast fan-out,
    so FIFO is as good as LRU here and much cheaper per hit.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        if maxsize < 4:
            raise ValueError(f"maxsize must be >= 4, got {maxsize}")
        self.maxsize = maxsize
        self._enabled = True
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._entries: dict[int, tuple[Any, Any]] = {}
        _identity_caches.add(self)

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, flag: bool) -> None:
        """Disabling also drops existing entries, so a disabled cache is
        genuinely inert (lookups -- including inlined fast paths reading
        ``_entries`` directly -- cannot keep serving stale memoisation
        while an A/B measurement believes the cache is off)."""
        self._enabled = bool(flag)
        if not self._enabled:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the counters (kept as plain ints on the hot path)."""
        return CacheStats(self._hits, self._misses, self._evictions)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, obj: Any) -> Any | None:
        entry = self._entries.get(id(obj))
        if entry is None:
            self._misses += 1
            return None
        self._hits += 1
        return entry[1]

    def put(self, obj: Any, value: Any) -> None:
        if not self._enabled:
            return
        entries = self._entries
        if len(entries) >= self.maxsize:
            drop = list(itertools.islice(iter(entries), self.maxsize // 4))
            for key in drop:
                del entries[key]
            self._evictions += len(drop)
        entries[id(obj)] = (obj, value)

    def clear(self) -> None:
        self._entries.clear()
        self._hits = self._misses = self._evictions = 0


class VerifyCache:
    """Bounded memo of signature-verification verdicts.

    Keys are built by the caller (``SignatureScheme.verify_cached``);
    values are the boolean verdicts.  Unhashable keys are the caller's
    problem -- it falls back to direct verification.
    """

    def __init__(self, maxsize: int = 16384) -> None:
        if maxsize < 4:
            raise ValueError(f"maxsize must be >= 4, got {maxsize}")
        self.maxsize = maxsize
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._entries: dict[Hashable, bool] = {}

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the counters (kept as plain ints on the hot path)."""
        return CacheStats(self._hits, self._misses, self._evictions)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> bool | None:
        verdict = self._entries.get(key)
        if verdict is None:
            self._misses += 1
            return None
        self._hits += 1
        return verdict

    def put(self, key: Hashable, verdict: bool) -> None:
        entries = self._entries
        if len(entries) >= self.maxsize:
            drop = list(itertools.islice(iter(entries), self.maxsize // 4))
            for k in drop:
                del entries[k]
            self._evictions += len(drop)
        entries[key] = verdict


#: The process-wide canonical-encoding memo (see module docstring).
#: Sized for the largest figure sweeps (a fig-7 n=15 run touches ~230k
#: unique messages); entries are small and the experiment runner clears
#: between runs, so the bound is a leak guard more than a working-set
#: limit.
encode_cache = IdentityCache(maxsize=262144)

#: Memo of countersign byte strings, keyed by the identity of the
#: ``DoubleSigned`` message they belong to.  Verifying the second
#: signature needs ``canonical_encode((payload, first.signer,
#: first.value))``; the tuple is rebuilt per check, so the object-level
#: memo above cannot help -- this one keys on the (frozen, immutable)
#: container message instead.
countersign_cache = IdentityCache(maxsize=131072)

#: Memo of wire sizes, keyed by message identity.  Transmission paths
#: re-size the same frozen message once per destination (and nested
#: ``wire_size`` properties re-walk their argument lists every call);
#: the size of an immutable message is a constant.
wire_size_cache = IdentityCache(maxsize=262144)

#: Memo of compact binwire encodings (``repro.crypto.binwire``), the
#: binary-codec counterpart of :data:`encode_cache` -- same identity
#: keying, same frozen-dataclass-only gate, same lifecycle.
binwire_cache = IdentityCache(maxsize=262144)


def clear_caches() -> None:
    """Drop every live :class:`IdentityCache` (benchmark/test isolation,
    and the experiment runner's between-runs memory release)."""
    for cache in list(_identity_caches):
        cache.clear()


@contextlib.contextmanager
def gc_paused() -> Iterator[None]:
    """Pause the cyclic collector for an allocation-heavy simulation run.

    A churny run allocates millions of short-lived messages/events while
    the memo caches pin a large object graph; generational GC then burns
    ~40% of host time re-scanning it (measured on a fig-7 n=15 point).
    Protocol state is overwhelmingly acyclic, so deferring collection to
    the end of the run is safe and collects the cycles (ORB closures,
    event callbacks) in one pass.  GC state is restored on exit; if GC
    was already disabled (nested use), this is a no-op.

    Pausing GC changes host-time behaviour only -- allocation order,
    RNG draws and simulation results are untouched.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()
