"""FS-NewTOP: NewTOP extended with fail-signal middleware processes.

The structured extension of section 3.1: every member's GC service --
already a deterministic state machine -- is replicated into a fail-signal
pair on two nodes joined by a synchronous LAN.  CORBA interceptors make
the wrapping transparent:

* calls to a member's (logical) GC, whether from its Invocation layer or
  from a remote GC, are intercepted and submitted to both wrapper
  replicas in an identical order, the FSO acting as leader;
* double-signed responses towards the Invocation layer are intercepted,
  verified, signature-stripped and duplicate-suppressed;
* the failure suspector no longer pings: it converts received
  fail-signals into suspicions.  Since a fail-signal uniquely identifies
  a faulty source, suspicions *cannot be false* -- groups never split
  when there are no failures, and total ordering terminates without any
  liveness (◇W-style) assumption.

Deployments: :class:`ByzantineTolerantGroup` builds either the full
figure 4 layout (two nodes per member; 4f+2 nodes overall to mask f
Byzantine faults at the application level) or the collapsed figure 5
layout used in the paper's measurements (each member's node also hosts
the next member's follower wrapper).
"""

from repro.fsnewtop.deployment import node_requirements
from repro.fsnewtop.suspicion import FsSuspector
from repro.fsnewtop.system import ByzantineTolerantGroup
from repro.fsnewtop.voting import MajorityVoter, VoteOutcome

__all__ = [
    "ByzantineTolerantGroup",
    "FsSuspector",
    "MajorityVoter",
    "VoteOutcome",
    "node_requirements",
]
