"""The FS-NewTOP failure suspector.

"In the FS-NewTOP, a suspector module does not have to send 'pings';
instead, it converts the fail-signals received into 'suspicions' and
supplies them to the group membership object.  ...the suspicions
generated in FS-NewTOP, unlike those in NewTOP, cannot be false"
(section 3.1).

The suspector is wired to the member's :class:`FsOutputInbox` (which
authenticates fail-signals) and submits each resulting suspicion through
the member's *logical* GC reference, so the fan-out interceptor delivers
it to both wrapper replicas as an ordinary, identically-ordered input.
"""

from __future__ import annotations

import typing

from repro.corba.node import Node
from repro.corba.orb import ObjectRef


class FsSuspector:
    """Converts fail-signals into (never-false) suspicions."""

    def __init__(
        self,
        node: Node,
        member_id: str,
        group: str,
        gc_logical_ref: ObjectRef,
        member_of_fs: typing.Callable[[str], str | None],
    ) -> None:
        self.node = node
        self.member_id = member_id
        self.group = group
        self.gc_logical_ref = gc_logical_ref
        self._member_of_fs = member_of_fs
        self.suspicions_raised: list[str] = []

    def on_fail_signal(self, fs_id: str) -> None:
        """Inbox callback: an authenticated fail-signal from ``fs_id``."""
        member = self._member_of_fs(fs_id)
        if member is None or member == self.member_id:
            return
        self.suspicions_raised.append(member)
        self.node.sim.trace.record(
            self.node.sim.now,
            "fs-suspector",
            f"{self.member_id}/suspector",
            "suspect",
            member=member,
            origin=fs_id,
        )
        # Through the logical GC ref: the fan-out interceptor turns this
        # into identically-ordered inputs for both wrapper replicas.
        self.node.orb.oneway(self.gc_logical_ref, "submit_suspicion", self.group, member)
