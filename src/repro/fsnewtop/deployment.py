"""Node-count arithmetic: the cost side of the paper's trade-off.

Masking f Byzantine faults at the application level needs 2f+1 replicas
of the application, each with access to total order.  In FS-NewTOP every
replica's middleware is an FS pair on two nodes, hence **4f+2** nodes --
(f+1) more than the 3f+1 optimum of from-scratch Byzantine protocols
(e.g. PBFT [CL99]), in exchange for liveness-assumption-free
termination (section 1, "One cost aspect...").
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class NodeRequirements:
    """Nodes needed to mask ``f`` Byzantine faults, per approach."""

    f: int
    app_replicas: int
    fs_newtop_nodes: int
    traditional_bft_nodes: int
    crash_tolerant_nodes: int

    @property
    def fs_overhead_nodes(self) -> int:
        """Extra nodes FS-NewTOP pays over the 3f+1 optimum."""
        return self.fs_newtop_nodes - self.traditional_bft_nodes


def node_requirements(f: int) -> NodeRequirements:
    """Node counts for fault budget ``f``.

    * application replicas: 2f+1 (majority voting masks f);
    * FS-NewTOP: 2 nodes per replica's FS middleware = 4f+2;
    * traditional authenticated-BFT total order: 3f+1;
    * crash-only tolerance (the baseline NewTOP): f+1 replicas suffice
      to survive f crashes, one node each.
    """
    if f < 0:
        raise ValueError(f"f must be >= 0, got {f}")
    app_replicas = 2 * f + 1
    return NodeRequirements(
        f=f,
        app_replicas=app_replicas,
        fs_newtop_nodes=2 * app_replicas,
        traditional_bft_nodes=3 * f + 1,
        crash_tolerant_nodes=f + 1,
    )
