"""Assembly of a Byzantine-tolerant FS-NewTOP group.

The public surface mirrors :class:`repro.newtop.CrashTolerantGroup` so
that the benchmark harness can drive both systems with identical
workloads -- the comparison the paper's evaluation makes.
"""

from __future__ import annotations

import typing

from repro.corba.costs import OrbCostModel
from repro.corba.node import Node
from repro.corba.orb import ObjectRef
from repro.core.config import FsoConfig
from repro.core.faults import ByzantineFso
from repro.core.fso import Fso, FsoRole
from repro.core.inbox import FsOutputInbox
from repro.core.interception import FanOutInterceptor
from repro.core.transform import FsEnvironment
from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.signing import SignatureScheme
from repro.net.delay import DelayModel, UniformDelay
from repro.net.network import Network
from repro.newtop.gc.service import GCService, GroupConfig
from repro.newtop.invocation import InvocationService
from repro.newtop.views import View
from repro.fsnewtop.suspicion import FsSuspector


class FsMember:
    """Everything belonging to one FS-NewTOP member."""

    def __init__(self, member_id: str) -> None:
        self.member_id = member_id
        self.primary_node: Node | None = None
        self.backup_node: Node | None = None
        self.invocation: InvocationService | None = None
        self.inv_ref: ObjectRef | None = None
        self.gc_leader: GCService | None = None
        self.gc_follower: GCService | None = None
        self.fs_process = None
        self.inbox: FsOutputInbox | None = None
        self.suspector: FsSuspector | None = None
        self.fanout: FanOutInterceptor | None = None

    @property
    def gc_logical_ref(self) -> ObjectRef:
        return ObjectRef(node="logical", key=f"{self.member_id}.gc")

    @property
    def inv_logical_ref(self) -> ObjectRef:
        return ObjectRef(node="logical", key=f"{self.member_id}.inv")


class ByzantineTolerantGroup:
    """A fully wired FS-NewTOP deployment.

    Parameters
    ----------
    collapsed:
        ``False`` -- figure 4 layout: every member gets a dedicated
        backup node (2n nodes).  ``True`` -- figure 5 experimental
        layout: member i's follower wrapper lives on member (i+1)'s
        node (n nodes), which is valid under the benchmark's lightly
        loaded LAN assumption and deliberately *disfavours* FS-NewTOP.
    byzantine_members:
        Member indices whose wrappers are :class:`ByzantineFso`
        (fault plans start disabled; switch on via
        :meth:`byzantine_fso`).
    codec:
        Signing codec for the group's keystore (``"canonical"`` or
        ``"binwire"``; default canonical) -- see
        :mod:`repro.crypto.binwire`.
    member_prefix:
        Prefix of the generated member ids (default ``member-``).  The
        sharded deployment (:mod:`repro.shard`) gives each shard its
        own prefix so trace sources stay globally unique.
    """

    def __init__(
        self,
        sim,
        n_members: int,
        group: str = "group",
        network: Network | None = None,
        delay: DelayModel | None = None,
        cores: int = 2,
        pool_size: int = 10,
        orb_costs: OrbCostModel | None = None,
        crypto_costs: CryptoCostModel | None = None,
        fso_config: FsoConfig | None = None,
        scheme: SignatureScheme | None = None,
        codec: str | None = None,
        collapsed: bool = True,
        byzantine_members: typing.Iterable[int] = (),
        member_prefix: str = "member-",
    ) -> None:
        if n_members < 1:
            raise ValueError(f"need at least one member, got {n_members}")
        self.sim = sim
        self.group = group
        self.collapsed = collapsed
        self.network = network if network is not None else Network(
            sim, default_delay=delay if delay is not None else UniformDelay(0.3, 1.2)
        )
        self.env = FsEnvironment(sim, scheme=scheme, config=fso_config, codec=codec)
        self.member_ids = [f"{member_prefix}{i}" for i in range(n_members)]
        self.members: dict[str, FsMember] = {m: FsMember(m) for m in self.member_ids}
        byzantine_set = {self.member_ids[i] for i in byzantine_members}

        # --- nodes ------------------------------------------------------
        for member_id in self.member_ids:
            member = self.members[member_id]
            member.primary_node = Node(
                sim,
                member_id,
                self.network,
                cores=cores,
                pool_size=pool_size,
                orb_costs=orb_costs,
                crypto_costs=crypto_costs,
            )
        for index, member_id in enumerate(self.member_ids):
            member = self.members[member_id]
            if collapsed and n_members > 1:
                next_member = self.member_ids[(index + 1) % n_members]
                member.backup_node = self.members[next_member].primary_node
            else:
                member.backup_node = Node(
                    sim,
                    f"{member_id}-b",
                    self.network,
                    cores=cores,
                    pool_size=pool_size,
                    orb_costs=orb_costs,
                    crypto_costs=crypto_costs,
                )

        # --- deterministic GC replicas, wrapped into FS pairs ------------
        initial_view = View(group=group, view_id=1, members=tuple(self.member_ids))
        logical_gc_refs = {m: self.members[m].gc_logical_ref for m in self.member_ids}
        for member_id in self.member_ids:
            member = self.members[member_id]
            member.gc_leader = self._make_gc(member_id, "L")
            member.gc_follower = self._make_gc(member_id, "F")
            for gc in (member.gc_leader, member.gc_follower):
                gc.join_group(
                    group,
                    GroupConfig(
                        initial_view=initial_view,
                        gc_refs=dict(logical_gc_refs),
                        inv_ref=member.inv_logical_ref,
                    ),
                )
            fso_class = ByzantineFso if member_id in byzantine_set else Fso
            member.fs_process = self.env.make_fail_signal(
                fs_id=f"{member_id}.gc",
                leader_node=member.primary_node,
                follower_node=member.backup_node,
                leader_replica=member.gc_leader,
                follower_replica=member.gc_follower,
                fso_class=fso_class,
            )

        # --- invocation layers, inboxes, suspectors, interceptors --------
        inbox_refs = []
        for member_id in self.member_ids:
            member = self.members[member_id]
            member.invocation = InvocationService(member_id)
            member.inv_ref = member.primary_node.activate(
                f"{member_id}.inv", member.invocation
            )
            member.invocation.bind_gc(member.gc_logical_ref)

            member.inbox = self.env.make_inbox(member.primary_node, f"{member_id}.inbox")
            member.inbox.local_rewrites[f"{member_id}.inv"] = member.inv_ref
            inbox_refs.append(member.inbox.ref)

            member.fanout = FanOutInterceptor(origin=member_id)
            member.fanout.wrap_target(f"{member_id}.gc", member.fs_process.refs)
            member.primary_node.orb.client_interceptors.append(member.fanout)

            member.suspector = FsSuspector(
                node=member.primary_node,
                member_id=member_id,
                group=group,
                gc_logical_ref=member.gc_logical_ref,
                member_of_fs=self._member_of_fs,
            )
            member.inbox.on_fail_signal = member.suspector.on_fail_signal

        # --- routing ------------------------------------------------------
        for member_id in self.member_ids:
            member = self.members[member_id]
            self.env.routes.set_route(f"{member_id}.gc", member.fs_process.refs)
            self.env.routes.set_route(f"{member_id}.inv", [member.inbox.ref])
        self.env.broadcast_signal_destinations(inbox_refs)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _make_gc(self, member_id: str, tag: str) -> GCService:
        return GCService(
            member_id,
            trace_fn=lambda event, **kw: self.sim.trace.record(
                self.sim.now, "fs-gc", f"{member_id}/{tag}", event, **kw
            ),
        )

    def _member_of_fs(self, fs_id: str) -> str | None:
        if fs_id.endswith(".gc"):
            member = fs_id[: -len(".gc")]
            if member in self.members:
                return member
        return None

    # ------------------------------------------------------------------
    # API mirroring CrashTolerantGroup
    # ------------------------------------------------------------------
    def member(self, index_or_id: int | str) -> FsMember:
        if isinstance(index_or_id, int):
            return self.members[self.member_ids[index_or_id]]
        return self.members[index_or_id]

    def multicast(self, member: int | str, service: str, value: typing.Any) -> None:
        m = self.member(member)
        m.primary_node.orb.oneway(m.inv_ref, "multicast", self.group, service, value)

    def deliveries(self, member: int | str) -> list:
        return self.member(member).invocation.delivered

    def views(self, member: int | str) -> list[View]:
        return self.member(member).invocation.views

    def fs_process_of(self, member: int | str):
        return self.member(member).fs_process

    def byzantine_fso(self, member: int | str, role: FsoRole) -> ByzantineFso:
        """The (pre-configured) Byzantine wrapper of a member; raises if
        the member was not listed in ``byzantine_members``."""
        process = self.fs_process_of(member)
        fso = process.leader if role is FsoRole.LEADER else process.follower
        if not isinstance(fso, ByzantineFso):
            raise TypeError(f"{fso.name} was not built as a ByzantineFso")
        return fso

    def crash_backup(self, member: int | str) -> None:
        """Crash the node hosting a member's follower wrapper.

        In the collapsed layout this node is shared with the next
        member, so use the figure 4 layout (``collapsed=False``) when a
        clean single-member fault is wanted."""
        self.fs_process_of(member).crash_node(FsoRole.FOLLOWER)

    def crash_primary(self, member: int | str) -> None:
        """Crash a member's primary node (leader wrapper, invocation
        layer and application all go down)."""
        m = self.member(member)
        m.fs_process.crash_node(FsoRole.LEADER)
        # In the figure 4 layout nothing else shares the node; the crash
        # call above already blackholed its network endpoint.

    def nodes_used(self) -> int:
        names = set()
        for member in self.members.values():
            names.add(member.primary_node.name)
            names.add(member.backup_node.name)
        return len(names)
