"""Client-side majority voting over replicated application results.

FS processes protect the *middleware*; application-level Byzantine
faults (a faulty node making its application emit wrong contents) are
masked one level up: "a client of this replica group must multicast its
request to the entire group and must majority-vote the results received
from the replicas" (section 3.1).  With 2f+1 application replicas, a
majority vote masks up to f wrong results per request.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.crypto.canonical import canonical_encode


@dataclasses.dataclass(frozen=True, slots=True)
class VoteOutcome:
    """Result of voting one request's replies."""

    request_id: typing.Any
    value: typing.Any
    agreeing: tuple[str, ...]
    dissenting: tuple[str, ...]

    @property
    def unanimous(self) -> bool:
        return not self.dissenting


class MajorityVoter:
    """Collects per-request replies from application replicas and emits
    the majority value once it is inevitable.

    Parameters
    ----------
    n_replicas:
        Total replica count (2f+1 for a fault budget of f).
    on_decision:
        Called once per request with the :class:`VoteOutcome`.
    """

    def __init__(
        self,
        n_replicas: int,
        on_decision: typing.Callable[[VoteOutcome], None] | None = None,
    ) -> None:
        if n_replicas < 1 or n_replicas % 2 == 0:
            raise ValueError(f"n_replicas must be odd and positive, got {n_replicas}")
        self.n_replicas = n_replicas
        self.quorum = n_replicas // 2 + 1
        self.on_decision = on_decision
        self._replies: dict[typing.Any, dict[str, typing.Any]] = {}
        self._decided: dict[typing.Any, VoteOutcome] = {}
        self.suspected_replicas: set[str] = set()

    @property
    def fault_budget(self) -> int:
        """f: how many wrong replies per request this voter masks."""
        return (self.n_replicas - 1) // 2

    def submit_reply(self, request_id: typing.Any, replica: str, value: typing.Any) -> VoteOutcome | None:
        """Record one replica's reply; returns the outcome when decided.

        A replica submitting twice keeps its first answer (a Byzantine
        replica must not get extra votes by spamming)."""
        if request_id in self._decided:
            self._note_late_reply(request_id, replica, value)
            return None
        replies = self._replies.setdefault(request_id, {})
        if replica in replies:
            return None
        replies[replica] = value
        return self._try_decide(request_id)

    def outcome(self, request_id: typing.Any) -> VoteOutcome | None:
        return self._decided.get(request_id)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _key(self, value: typing.Any) -> bytes:
        return canonical_encode(value)

    def _try_decide(self, request_id: typing.Any) -> VoteOutcome | None:
        replies = self._replies[request_id]
        tallies: dict[bytes, list[str]] = {}
        for replica, value in replies.items():
            tallies.setdefault(self._key(value), []).append(replica)
        for key, voters in tallies.items():
            if len(voters) >= self.quorum:
                value = replies[voters[0]]
                dissenting = tuple(
                    sorted(r for r in replies if self._key(replies[r]) != key)
                )
                outcome = VoteOutcome(
                    request_id=request_id,
                    value=value,
                    agreeing=tuple(sorted(voters)),
                    dissenting=dissenting,
                )
                self._decided[request_id] = outcome
                self.suspected_replicas.update(dissenting)
                del self._replies[request_id]
                if self.on_decision is not None:
                    self.on_decision(outcome)
                return outcome
        return None

    def _note_late_reply(self, request_id, replica: str, value: typing.Any) -> None:
        outcome = self._decided[request_id]
        if self._key(value) != self._key(outcome.value):
            self.suspected_replicas.add(replica)
