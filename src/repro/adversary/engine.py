"""Compilation of adversary specs against a live group.

The :class:`AdversaryEngine` is the bridge between the declarative
:class:`~repro.adversary.spec.AdversarySpec` values on a scenario and
the concrete fault hooks the stack already exposes: the mutable
:class:`~repro.core.faults.FaultPlan` of a ``ByzantineFso``, the pair
link's delay injection, node crashes and spontaneous fail-signals.

Every activation/deactivation is traced under the ``adversary``
category, so the :mod:`repro.invariants` monitor learns *online* which
pairs are expected to misbehave (``expect=required`` -- a fail-signal
must follow -- vs ``expect=allowed`` -- a signal is legitimate but not
guaranteed, e.g. after a crash with no traffic in flight).
"""

from __future__ import annotations

import typing

from repro.adversary.spec import (
    FLAG_STRATEGIES,
    AdversarySpec,
)
from repro.core.fso import FsoRole
from repro.fsnewtop.system import ByzantineTolerantGroup
from repro.shard.group import ShardedGroup
if typing.TYPE_CHECKING:
    from repro.transport.base import Clock


class AdversaryWiringError(ValueError):
    """A spec asks for a hook the group under test does not have."""


class AdversaryEngine:
    """Schedules one scenario's adversary specs against a live group."""

    def __init__(
        self,
        sim: Clock,
        group: typing.Any,
        adversaries: typing.Sequence[AdversarySpec],
    ) -> None:
        self.sim = sim
        self.group = group
        self.adversaries = tuple(adversaries)
        self._is_sharded = isinstance(group, ShardedGroup)
        self._is_fs = isinstance(group, ByzantineTolerantGroup) or self._is_sharded

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def install(self) -> int:
        """Compile and schedule every action; returns the action count."""
        count = 0
        for spec in self.adversaries:
            self._check(spec)
            actions, _end = self._compile(spec, base=0.0)
            for at, action in actions:
                self.sim.schedule(at, action)
                count += 1
        return count

    # ------------------------------------------------------------------
    # validation against the group under test
    # ------------------------------------------------------------------
    def _check(self, spec: AdversarySpec) -> None:
        for leaf in spec.leaves():
            needs_fs = leaf.kind in FLAG_STRATEGIES or leaf.kind in (
                "delay_skew",
                "spurious_signal",
            )
            if needs_fs and not self._is_fs:
                raise AdversaryWiringError(
                    f"adversary {leaf.kind!r} drives fail-signal pair hooks; "
                    f"the group under test has none (fs-newtop only)"
                )
            if leaf.kind == "shard_reorder" and not self._is_sharded:
                raise AdversaryWiringError(
                    "adversary 'shard_reorder' corrupts the cross-shard "
                    "coordinator; the group under test is not sharded"
                )

    # ------------------------------------------------------------------
    # compilation: spec tree -> [(absolute time, action)]
    # ------------------------------------------------------------------
    def _compile(
        self, spec: AdversarySpec, base: float
    ) -> tuple[list[tuple[float, typing.Callable[[], None]]], float]:
        """Returns the action list and the absolute end of the window."""
        start = base + spec.at
        if spec.kind == "seq":
            actions: list[tuple[float, typing.Callable[[], None]]] = []
            cursor = start
            for child in spec.children:
                child_actions, cursor = self._compile(child, cursor)
                actions.extend(child_actions)
            return actions, cursor
        if spec.kind == "both":
            actions = []
            end = start
            for child in spec.children:
                child_actions, child_end = self._compile(child, start)
                actions.extend(child_actions)
                end = max(end, child_end)
            return actions, end
        if spec.kind == "intermittent":
            child = spec.children[0]
            end = base + typing.cast(float, spec.until)
            actions = []
            window_start = start
            while window_start < end:
                on_for = min(spec.period * spec.duty, end - window_start)
                pulse = child.replace_window(0.0, on_for)
                child_actions, _ = self._compile(pulse, window_start)
                actions.extend(child_actions)
                window_start += spec.period
            return actions, end
        return self._compile_leaf(spec, start)

    def _compile_leaf(
        self, spec: AdversarySpec, start: float
    ) -> tuple[list[tuple[float, typing.Callable[[], None]]], float]:
        if spec.kind == "churn_storm":
            actions = []
            for index, member in enumerate(spec.members):
                at = start + index * spec.spacing
                actions.append((at, self._crash_action(member)))
            return actions, start + spec.spacing * max(len(spec.members) - 1, 0)
        if spec.kind == "spurious_signal":
            member = typing.cast(int, spec.member)
            return [(start, self._spurious_action(member))], start
        if spec.kind == "shard_reorder":
            actions = [(start, self._shard_reorder_action(on=True))]
            end = start
            if spec.until is not None:
                end = start - spec.at + spec.until
                actions.append((end, self._shard_reorder_action(on=False)))
            return actions, end
        if spec.kind == "delay_skew":
            member = typing.cast(int, spec.member)
            actions = [(start, self._skew_action(member, spec.extra_ms, on=True))]
            end = start
            if spec.until is not None:
                end = start - spec.at + spec.until
                actions.append((end, self._skew_action(member, spec.extra_ms, on=False)))
            return actions, end
        # FaultPlan-backed strategies.
        flags = FLAG_STRATEGIES[spec.kind]
        member = typing.cast(int, spec.member)
        actions = [(start, self._flags_action(member, spec.kind, flags, on=True))]
        end = start
        if spec.until is not None:
            end = start - spec.at + spec.until
            actions.append((end, self._flags_action(member, spec.kind, flags, on=False)))
        return actions, end

    # ------------------------------------------------------------------
    # leaf actions (closures scheduled on the simulator)
    # ------------------------------------------------------------------
    def _trace(self, event: str, **details: typing.Any) -> None:
        self.sim.trace.record(self.sim.now, "adversary", "adversary-engine", event, **details)

    def _flags_action(
        self, member: int, kind: str, flags: tuple[str, ...], on: bool
    ) -> typing.Callable[[], None]:
        def action() -> None:
            fso = self.group.byzantine_fso(member, FsoRole.LEADER)
            self._trace(
                "activate" if on else "deactivate",
                kind=kind,
                member=self.group.member_ids[member],
                fs=fso.fs_id,
                expect="required",
            )
            fso.go_byzantine(**{flag: on for flag in flags})

        return action

    def _skew_action(
        self, member: int, extra_ms: float, on: bool
    ) -> typing.Callable[[], None]:
        def action() -> None:
            process = self.group.fs_process_of(member)
            src = process.leader.node.name
            # The skew only *guarantees* a section 2.2 timeout when it
            # clearly exceeds the LAN bound the timeouts are built on.
            required = extra_ms > 3 * process.leader.config.delta
            self._trace(
                "activate" if on else "deactivate",
                kind="delay_skew",
                member=self.group.member_ids[member],
                fs=process.fs_id,
                expect="required" if required else "allowed",
                extra_ms=extra_ms,
            )
            if on:
                process.link.inject_extra_delay(src, extra_ms)
            else:
                process.link.clear_injected_delay(src)

        return action

    def _shard_reorder_action(self, on: bool) -> typing.Callable[[], None]:
        def action() -> None:
            # Coordinator corruption targets no fail-signal pair, so the
            # trace carries no `fs`: the cross-shard oracle must flag
            # the resulting divergence on its own evidence.
            self._trace(
                "activate" if on else "deactivate",
                kind="shard_reorder",
                expect="violation",
            )
            self.group.coordinator.corrupt_commits(on)

        return action

    def _spurious_action(self, member: int) -> typing.Callable[[], None]:
        def action() -> None:
            process = self.group.fs_process_of(member)
            self._trace(
                "activate",
                kind="spurious_signal",
                member=self.group.member_ids[member],
                fs=process.fs_id,
                expect="required",
            )
            process.leader.inject_arbitrary_signal()

        return action

    def _crash_action(self, member: int) -> typing.Callable[[], None]:
        def action() -> None:
            member_id = self.group.member_ids[member]
            if self._is_fs:
                fs = self.group.fs_process_of(member).fs_id
                node = self.group.member(member).primary_node.name
                self._trace(
                    "activate",
                    kind="churn_storm",
                    member=member_id,
                    fs=fs,
                    node=node,
                    expect="allowed",
                )
                self.group.crash_primary(member)
            else:
                self._trace(
                    "activate",
                    kind="churn_storm",
                    member=member_id,
                    node=member_id,
                    expect="allowed",
                )
                self.group.crash(member)

        return action
