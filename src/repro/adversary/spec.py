"""Declarative adversary strategies.

An :class:`AdversarySpec` is a complete, *value-only* description of one
attack against a running group: which strategy, against which member,
activated (and optionally deactivated) at which simulated times.  Like
:class:`repro.experiments.spec.ScenarioSpec` -- which carries a tuple of
these -- a spec holds no live objects, so it pickles across process
boundaries and serialises to JSON for the result store.

Leaf strategies
---------------
* ``equivocate`` -- double-send: the faulty Compare signs and sends a
  conflicting candidate for each slot alongside the honest one;
* ``corrupt`` -- the faulty replica corrupts every output;
* ``selective_mute`` -- per-peer mute of the compare traffic only (the
  singles); ordering traffic still flows;
* ``mute`` -- full LAN mute of the faulty node;
* ``replay`` -- the faulty Compare re-sends a stale signed candidate
  instead of each fresh one;
* ``tamper_signature`` -- the faulty node forges its peer's signature
  on candidates (A5 says it cannot get away with it);
* ``scramble_burst`` -- a faulty *leader* processes inputs pairwise
  swapped while advertising the honest order;
* ``delay_skew`` -- ``extra_ms`` of extra delay on everything the
  target's leader sends over the pair LAN (an explicit A2 violation);
* ``spurious_signal`` -- failure mode fs2: a healthy wrapper emits its
  fail-signal spontaneously (one-shot);
* ``churn_storm`` -- a burst of node crashes: ``members`` go down one
  after another, ``spacing`` ms apart;
* ``shard_reorder`` -- the cross-shard coordinator of a sharded
  deployment equivocates on final sequence numbers (different shards
  are told different sequences); needs a :class:`repro.shard`
  deployment under test.

Combinators
-----------
* ``seq(a, b, ...)`` -- children run one after another: each child's
  window is shifted to start when the previous child's window ends;
* ``both(a, b, ...)`` -- children run concurrently, offset from the
  combinator's own ``at``;
* ``intermittent(child, at=, until=, period=, duty=)`` -- toggles the
  (single, toggleable) child on for ``duty`` of every ``period`` within
  the window.

All times are milliseconds of simulated time.
"""

from __future__ import annotations

import dataclasses
import typing

#: Leaf strategies that map onto :class:`repro.core.faults.FaultPlan`
#: flags (and therefore need the target built as a ``ByzantineFso``).
FLAG_STRATEGIES: dict[str, tuple[str, ...]] = {
    "equivocate": ("equivocate",),
    "corrupt": ("corrupt_outputs",),
    "selective_mute": ("drop_singles",),
    "mute": ("mute_lan",),
    "replay": ("replay_singles",),
    "tamper_signature": ("forge_signature",),
    "scramble_burst": ("scramble_order",),
}

#: Leaf strategies outside the FaultPlan hooks.  ``shard_reorder``
#: targets the cross-shard coordinator of a sharded deployment (see
#: :mod:`repro.shard`): it equivocates on final sequence numbers, the
#: violation the ``cross-shard-order`` oracle must flag.
OTHER_STRATEGIES = ("delay_skew", "spurious_signal", "churn_storm", "shard_reorder")

STRATEGY_KINDS: tuple[str, ...] = tuple(FLAG_STRATEGIES) + OTHER_STRATEGIES
COMBINATOR_KINDS = ("seq", "both", "intermittent")

#: Strategies that can be switched off again (usable under
#: ``intermittent`` and requiring ``until`` inside ``seq``).
TOGGLEABLE_KINDS = tuple(FLAG_STRATEGIES) + ("delay_skew", "shard_reorder")


@dataclasses.dataclass(frozen=True)
class AdversarySpec:
    """One declarative attack (leaf strategy or combinator).

    ``at`` is the activation offset; for top-level specs it is absolute
    simulated time, for children it is relative to the combinator's
    window.  ``until``, when set, deactivates a toggleable strategy.
    """

    kind: str
    at: float = 0.0
    until: float | None = None
    member: int | None = None
    extra_ms: float = 50.0  # delay_skew
    members: tuple[int, ...] = ()  # churn_storm victims
    spacing: float = 100.0  # churn_storm inter-crash gap
    period: float = 0.0  # intermittent
    duty: float = 0.5  # intermittent on-fraction
    children: tuple["AdversarySpec", ...] = ()

    def __post_init__(self) -> None:
        known = STRATEGY_KINDS + COMBINATOR_KINDS
        if self.kind not in known:
            raise ValueError(f"unknown adversary kind {self.kind!r}, want one of {known}")
        if self.at < 0:
            raise ValueError(f"activation time must be >= 0, got {self.at}")
        if self.until is not None and self.until <= self.at:
            raise ValueError(f"until ({self.until}) must be after at ({self.at})")
        if self.kind in COMBINATOR_KINDS:
            if not self.children:
                raise ValueError(f"combinator {self.kind!r} needs children")
        elif self.children:
            raise ValueError(f"leaf strategy {self.kind!r} takes no children")
        if self.kind in FLAG_STRATEGIES or self.kind in ("delay_skew", "spurious_signal"):
            if self.member is None:
                raise ValueError(f"strategy {self.kind!r} needs a target member")
        if self.member is not None and self.member < 0:
            raise ValueError(f"member must be a non-negative index, got {self.member}")
        if self.kind == "churn_storm":
            if not self.members:
                raise ValueError("churn_storm needs a non-empty members tuple")
            if self.spacing < 0:
                raise ValueError(f"churn_storm spacing must be >= 0, got {self.spacing}")
        if self.kind == "delay_skew" and self.extra_ms <= 0:
            raise ValueError(f"delay_skew needs extra_ms > 0, got {self.extra_ms}")
        if self.kind == "intermittent":
            if len(self.children) != 1:
                raise ValueError("intermittent takes exactly one child")
            if self.children[0].kind not in TOGGLEABLE_KINDS:
                raise ValueError(
                    f"intermittent child must be toggleable (one of {TOGGLEABLE_KINDS})"
                )
            if self.until is None:
                raise ValueError("intermittent needs an explicit until")
            if not 0 < self.period <= (self.until - self.at):
                raise ValueError(
                    f"intermittent period must be in (0, window], got {self.period}"
                )
            if not 0.0 < self.duty < 1.0:
                raise ValueError(f"intermittent duty must be in (0,1), got {self.duty}")
        if self.kind == "seq":
            for child in self.children:
                if child.duration() is None:
                    raise ValueError(
                        f"seq child {child.kind!r} needs a bounded window "
                        f"(set until=) so the next child knows when to start"
                    )

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    def duration(self) -> float | None:
        """Length of this spec's active window from its own ``at``;
        ``None`` when it stays active to the end of the run."""
        if self.kind == "spurious_signal":
            return 0.0
        if self.kind == "churn_storm":
            return self.spacing * (len(self.members) - 1)
        if self.kind == "seq":
            total = 0.0
            for child in self.children:
                total += child.at + typing.cast(float, child.duration())
            return total
        if self.kind == "both":
            ends = []
            for child in self.children:
                child_duration = child.duration()
                if child_duration is None:
                    return None
                ends.append(child.at + child_duration)
            return max(ends)
        if self.until is None:
            return None
        return self.until - self.at

    def replace_window(self, at: float, until: float | None) -> "AdversarySpec":
        """A copy with the activation window replaced (used by the
        ``intermittent`` combinator to stamp out pulses)."""
        return dataclasses.replace(self, at=at, until=until)

    def leaves(self) -> typing.Iterator["AdversarySpec"]:
        """Every leaf strategy in this tree (combinators flattened)."""
        if self.kind in COMBINATOR_KINDS:
            for child in self.children:
                yield from child.leaves()
        else:
            yield self

    def flag_members(self) -> set[int]:
        """Members that need a ``ByzantineFso`` wrapper for this spec."""
        return {
            leaf.member
            for leaf in self.leaves()
            if leaf.kind in FLAG_STRATEGIES and leaf.member is not None
        }

    def needs_pair_hooks(self) -> bool:
        """Whether any leaf drives fail-signal pair hooks (and therefore
        only runs against the fs-newtop system)."""
        return any(
            leaf.kind in FLAG_STRATEGIES or leaf.kind in ("delay_skew", "spurious_signal")
            for leaf in self.leaves()
        )

    def max_member(self) -> int | None:
        """The highest member index this spec targets, if any."""
        targets = [
            index
            for leaf in self.leaves()
            for index in (leaf.member, *leaf.members)
            if index is not None
        ]
        return max(targets) if targets else None

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "kind": self.kind,
            "at": self.at,
            "until": self.until,
            "member": self.member,
            "extra_ms": self.extra_ms,
            "members": list(self.members),
            "spacing": self.spacing,
            "period": self.period,
            "duty": self.duty,
        }
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "AdversarySpec":
        fields = dict(data)
        fields["members"] = tuple(fields.get("members", ()))
        fields["children"] = tuple(
            cls.from_dict(child) for child in fields.get("children", ())
        )
        return cls(**fields)


# ----------------------------------------------------------------------
# combinator constructors (the readable way to build trees)
# ----------------------------------------------------------------------
def seq(*children: AdversarySpec, at: float = 0.0) -> AdversarySpec:
    """Children run one after another from ``at``."""
    return AdversarySpec(kind="seq", at=at, children=tuple(children))


def both(*children: AdversarySpec, at: float = 0.0) -> AdversarySpec:
    """Children run concurrently, offset from ``at``."""
    return AdversarySpec(kind="both", at=at, children=tuple(children))


def intermittent(
    child: AdversarySpec, at: float, until: float, period: float, duty: float = 0.5
) -> AdversarySpec:
    """Toggle ``child`` on for ``duty`` of every ``period`` in the window."""
    return AdversarySpec(
        kind="intermittent", at=at, until=until, period=period, duty=duty,
        children=(child,),
    )


#: Canonical single-strategy instances, the vocabulary of
#: ``repro audit --adversary <name>``.
PRESETS: dict[str, AdversarySpec] = {
    "equivocate": AdversarySpec(kind="equivocate", at=300.0, member=0),
    "corrupt": AdversarySpec(kind="corrupt", at=300.0, member=0),
    "selective_mute": AdversarySpec(kind="selective_mute", at=300.0, member=0),
    "mute": AdversarySpec(kind="mute", at=300.0, member=0),
    "replay": AdversarySpec(kind="replay", at=300.0, member=0),
    "tamper_signature": AdversarySpec(kind="tamper_signature", at=300.0, member=0),
    "scramble_burst": AdversarySpec(kind="scramble_burst", at=300.0, member=0),
    "delay_skew": AdversarySpec(kind="delay_skew", at=300.0, member=0, extra_ms=50.0),
    "spurious_signal": AdversarySpec(kind="spurious_signal", at=300.0, member=0),
    # Active from t=0: sharded scenarios finish their cross-shard
    # commits well before the 300ms the adv_* presets use, and a
    # corruption that starts after the last commit demonstrates nothing.
    "shard_reorder": AdversarySpec(kind="shard_reorder", at=0.0),
}
