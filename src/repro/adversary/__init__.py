"""Composable, schedulable attack strategies.

The adversary subsystem turns the hand-rolled fault hooks scattered
through the stack (``ByzantineFso``/``FaultPlan`` flags, synchronous
link delay injection, node crashes, spontaneous fail-signals) into a
declarative, composable engine:

* :mod:`repro.adversary.spec` -- :class:`AdversarySpec`, a value-only,
  JSON-serialisable description of one attack: a strategy ``kind``, a
  target ``member``, simulated-time triggers (``at``/``until``) and --
  for the combinators ``seq``/``both``/``intermittent`` -- child specs;
* :mod:`repro.adversary.engine` -- :class:`AdversaryEngine`, which
  compiles specs into scheduled actions against a live group.

`PRESETS` names one canonical instance of every leaf strategy, which is
what ``repro audit --adversary <name>`` overlays on a scenario.
"""

from repro.adversary.spec import (
    COMBINATOR_KINDS,
    FLAG_STRATEGIES,
    PRESETS,
    STRATEGY_KINDS,
    AdversarySpec,
    both,
    intermittent,
    seq,
)
from repro.adversary.engine import AdversaryEngine

__all__ = [
    "AdversaryEngine",
    "AdversarySpec",
    "COMBINATOR_KINDS",
    "FLAG_STRATEGIES",
    "PRESETS",
    "STRATEGY_KINDS",
    "both",
    "intermittent",
    "seq",
]
