"""Experiment workloads: the paper's measurement scenarios."""

from repro.workloads.ordering import (
    ExperimentResult,
    OrderingWorkload,
    ShardedOrderingWorkload,
    run_ordering_experiment,
)

__all__ = [
    "ExperimentResult",
    "OrderingWorkload",
    "ShardedOrderingWorkload",
    "run_ordering_experiment",
]
