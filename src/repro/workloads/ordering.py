"""The paper's measurement workload.

"Each Ai multicast 1000 messages for total ordering at a regular
interval that was identical in both NewTOP and FS-NewTOP runs"
(section 4).  This module drives either system with exactly that load
(scaled down -- simulation fidelity is per-message, so fewer messages
suffice for stable statistics) and extracts the figures' quantities:
ordering latency and system throughput.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.metrics import LatencyRecorder, Summary, summarize
from repro.fsnewtop.system import ByzantineTolerantGroup
from repro.newtop.services import ServiceType
from repro.newtop.system import CrashTolerantGroup
from repro.sim.scheduler import Simulator

AnyGroup = typing.Union[CrashTolerantGroup, ByzantineTolerantGroup]


@dataclasses.dataclass(frozen=True, slots=True)
class ExperimentResult:
    """Outcome of one ordering run."""

    system: str
    n_members: int
    messages_per_member: int
    message_size: int
    interval: float
    latency: Summary
    completion_latency: Summary
    throughput_msgs_per_s: float
    network_messages: int
    network_bytes: int
    fail_signals: int

    def row(self) -> dict:
        return {
            "system": self.system,
            "members": self.n_members,
            "latency_ms": round(self.latency.mean, 2),
            "throughput": round(self.throughput_msgs_per_s, 1),
        }


class OrderingWorkload:
    """Drives one group through the paper's send pattern.

    ``write_ratio`` < 1 models mixed read/write traffic: that fraction
    of sends are "writes" using the configured (totally ordered)
    ``service``; the rest are "reads" multicast via the cheaper
    ``reliable`` service.  Writes and reads interleave deterministically
    (Bresenham spacing over the send sequence), so the mix is identical
    across systems and seeds.
    """

    def __init__(
        self,
        sim: Simulator,
        group: AnyGroup,
        messages_per_member: int = 20,
        interval: float = 120.0,
        message_size: int = 3,
        service: str = ServiceType.SYMMETRIC_TOTAL.value,
        write_ratio: float = 1.0,
    ) -> None:
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError(f"write_ratio must be in [0,1], got {write_ratio}")
        self.sim = sim
        self.group = group
        self.messages_per_member = messages_per_member
        self.interval = interval
        self.message_size = message_size
        self.service = service
        self.write_ratio = write_ratio
        self.recorder = LatencyRecorder()
        self.n_members = len(group.member_ids)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, settle_ms: float = 120_000.0) -> None:
        """Schedule every send, hook delivery recording, run to idle."""
        self._hook_deliveries()
        body = bytes(self.message_size)
        sends = 0
        for round_no in range(self.messages_per_member):
            at = round_no * self.interval
            for index, member in enumerate(self.group.member_ids):
                key = (member, round_no)
                # Bresenham mix: send k is a write iff the integer part
                # of k * write_ratio advances.
                is_write = int((sends + 1) * self.write_ratio) > int(sends * self.write_ratio)
                sends += 1
                self.sim.schedule(at, self._send, key, member, round_no, body, is_write)
        self.sim.run(
            until=self.messages_per_member * self.interval + settle_ms,
            max_events=200_000_000,
        )

    def _send(self, key, member: str, round_no: int, body: bytes, is_write: bool) -> None:
        self.recorder.sent(key, self.sim.now)
        service = self.service if is_write else ServiceType.RELIABLE.value
        self.group.multicast(member, service, {"r": round_no, "s": member, "b": body})

    def _hook_deliveries(self) -> None:
        for member in self.group.member_ids:
            invocation = self._invocation_of(member)
            previous = invocation.on_deliver

            def record(message, member=member, previous=previous):
                value = message.value
                if isinstance(value, dict) and "r" in value and "s" in value:
                    self.recorder.delivered((value["s"], value["r"]), member, message.delivered_at)
                if previous is not None:
                    previous(message)

            invocation.on_deliver = record

    def _invocation_of(self, member: str):
        if isinstance(self.group, ByzantineTolerantGroup):
            return self.group.members[member].invocation
        return self.group.nsos[member].invocation

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def fail_signal_count(self) -> int:
        if not isinstance(self.group, ByzantineTolerantGroup):
            return 0
        return sum(
            self.group.members[m].fs_process.signaled for m in self.group.member_ids
        )

    def result(self, system: str) -> ExperimentResult:
        per_delivery = self.recorder.per_delivery
        completions = self.recorder.completion_latencies(self.n_members)
        return ExperimentResult(
            system=system,
            n_members=self.n_members,
            messages_per_member=self.messages_per_member,
            message_size=self.message_size,
            interval=self.interval,
            latency=summarize(per_delivery) if per_delivery else summarize([0.0]),
            completion_latency=summarize(completions) if completions else summarize([0.0]),
            throughput_msgs_per_s=self.recorder.throughput_msgs_per_s(self.n_members),
            network_messages=self.group.network.stats.messages_sent,
            network_bytes=self.group.network.stats.bytes_sent,
            fail_signals=self.fail_signal_count(),
        )


def run_ordering_experiment(
    system: str,
    n_members: int,
    seed: int = 0,
    messages_per_member: int = 20,
    interval: float = 120.0,
    message_size: int = 3,
    service: str = ServiceType.SYMMETRIC_TOTAL.value,
    write_ratio: float = 1.0,
    **system_kwargs,
) -> ExperimentResult:
    """Build, run and summarise one configuration.

    ``system`` is ``"newtop"`` (crash-tolerant baseline) or
    ``"fs-newtop"`` (the Byzantine-tolerant extension).

    This is a thin convenience wrapper: the arguments are packed into a
    :class:`repro.experiments.ScenarioSpec` and executed by
    :func:`repro.experiments.run_ordering_spec`, the same path the
    scenario registry and campaign runner use.  ``system_kwargs`` are
    forwarded to the group constructor verbatim (the ablation
    benchmarks pass live cost-model objects through here).
    """
    # Imported lazily: repro.experiments builds on this module.
    from repro.experiments.runner import run_ordering_spec
    from repro.experiments.spec import ScenarioSpec

    if system not in ("newtop", "fs-newtop"):
        raise ValueError(f"unknown system {system!r}")
    spec = ScenarioSpec(
        system=system,
        n_members=n_members,
        seed=seed,
        messages_per_member=messages_per_member,
        interval=interval,
        message_size=message_size,
        service=service,
        write_ratio=write_ratio,
    )
    return run_ordering_spec(spec, **system_kwargs)
