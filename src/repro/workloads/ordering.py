"""The paper's measurement workload.

"Each Ai multicast 1000 messages for total ordering at a regular
interval that was identical in both NewTOP and FS-NewTOP runs"
(section 4).  This module drives either system with exactly that load
(scaled down -- simulation fidelity is per-message, so fewer messages
suffice for stable statistics) and extracts the figures' quantities:
ordering latency and system throughput.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.metrics import LatencyRecorder, Summary, summarize
from repro.fsnewtop.system import ByzantineTolerantGroup
from repro.newtop.services import ServiceType
from repro.newtop.system import CrashTolerantGroup
if typing.TYPE_CHECKING:
    from repro.transport.base import Clock

AnyGroup = typing.Union[CrashTolerantGroup, ByzantineTolerantGroup]


@dataclasses.dataclass(frozen=True, slots=True)
class ExperimentResult:
    """Outcome of one ordering run."""

    system: str
    n_members: int
    messages_per_member: int
    message_size: int
    interval: float
    latency: Summary
    completion_latency: Summary
    throughput_msgs_per_s: float
    network_messages: int
    network_bytes: int
    fail_signals: int

    def row(self) -> dict:
        return {
            "system": self.system,
            "members": self.n_members,
            "latency_ms": round(self.latency.mean, 2),
            "throughput": round(self.throughput_msgs_per_s, 1),
        }


class OrderingWorkload:
    """Drives one group through the paper's send pattern.

    ``write_ratio`` < 1 models mixed read/write traffic: that fraction
    of sends are "writes" using the configured (totally ordered)
    ``service``; the rest are "reads" multicast via the cheaper
    ``reliable`` service.  Writes and reads interleave deterministically
    (Bresenham spacing over the send sequence), so the mix is identical
    across systems and seeds.

    ``keyspace`` switches on *keyed* traffic: every send carries a key
    drawn round-robin from a ``keyspace``-sized key set (the payload
    gains a ``"k"`` field; everything else is unchanged).  Keyed
    traffic is what the shard router partitions -- the unsharded keyed
    run is the differential control of the single-shard deployment.
    """

    def __init__(
        self,
        sim: Clock,
        group: AnyGroup,
        messages_per_member: int = 20,
        interval: float = 120.0,
        message_size: int = 3,
        service: str = ServiceType.SYMMETRIC_TOTAL.value,
        write_ratio: float = 1.0,
        keyspace: int | None = None,
    ) -> None:
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError(f"write_ratio must be in [0,1], got {write_ratio}")
        self.sim = sim
        self.group = group
        self.messages_per_member = messages_per_member
        self.interval = interval
        self.message_size = message_size
        self.service = service
        self.write_ratio = write_ratio
        self.keys: list[str] | None = None
        if keyspace is not None:
            from repro.shard.router import keyspace as make_keyspace

            self.keys = make_keyspace(keyspace)
        self.recorder = LatencyRecorder()
        self.n_members = len(group.member_ids)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, settle_ms: float = 120_000.0) -> None:
        """Schedule every send, hook delivery recording, run to idle."""
        self._hook_deliveries()
        body = bytes(self.message_size)
        sends = 0
        for round_no in range(self.messages_per_member):
            at = round_no * self.interval
            for index, member in enumerate(self.group.member_ids):
                key = (member, round_no)
                # Bresenham mix: send k is a write iff the integer part
                # of k * write_ratio advances.
                is_write = int((sends + 1) * self.write_ratio) > int(sends * self.write_ratio)
                sends += 1
                self.sim.schedule(at, self._send, key, index, member, round_no, body, is_write)
        self.sim.run(
            until=self.messages_per_member * self.interval + settle_ms,
            max_events=200_000_000,
        )

    def _key_for(self, index: int, round_no: int) -> str:
        """The key member ``index`` uses in ``round_no`` (round-robin
        over the key set, offset per member)."""
        assert self.keys is not None
        return self.keys[(index * self.messages_per_member + round_no) % len(self.keys)]

    def _send(
        self, key, index: int, member: str, round_no: int, body: bytes, is_write: bool
    ) -> None:
        self.recorder.sent(key, self.sim.now)
        service = self.service if is_write else ServiceType.RELIABLE.value
        value: dict = {"r": round_no, "s": member, "b": body}
        if self.keys is not None:
            value["k"] = self._key_for(index, round_no)
        self.group.multicast(member, service, value)

    def _recording_hook(self, member: str, previous):
        def record(message):
            value = message.value
            if isinstance(value, dict) and "r" in value and "s" in value:
                self.recorder.delivered((value["s"], value["r"]), member, message.delivered_at)
            if previous is not None:
                previous(message)

        return record

    def _hook_deliveries(self) -> None:
        for member in self.group.member_ids:
            invocation = self._invocation_of(member)
            invocation.on_deliver = self._recording_hook(member, invocation.on_deliver)

    def _invocation_of(self, member: str):
        if isinstance(self.group, ByzantineTolerantGroup):
            return self.group.members[member].invocation
        return self.group.nsos[member].invocation

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def fail_signal_count(self) -> int:
        if not isinstance(self.group, ByzantineTolerantGroup):
            return 0
        return sum(
            self.group.members[m].fs_process.signaled for m in self.group.member_ids
        )

    def result(self, system: str) -> ExperimentResult:
        per_delivery = self.recorder.per_delivery
        completions = self.recorder.completion_latencies(self.n_members)
        return ExperimentResult(
            system=system,
            n_members=self.n_members,
            messages_per_member=self.messages_per_member,
            message_size=self.message_size,
            interval=self.interval,
            latency=summarize(per_delivery) if per_delivery else summarize([0.0]),
            completion_latency=summarize(completions) if completions else summarize([0.0]),
            throughput_msgs_per_s=self.recorder.throughput_msgs_per_s(self.n_members),
            network_messages=self.group.network.stats.messages_sent,
            network_bytes=self.group.network.stats.bytes_sent,
            fail_signals=self.fail_signal_count(),
        )


class ShardedOrderingWorkload(OrderingWorkload):
    """The keyed workload against a :class:`repro.shard.ShardedGroup`.

    Every member streams shard-local keyed traffic exactly like the
    base workload (the keys it draws are the ones its own shard owns,
    so the schedule and payloads of a single-shard run match the
    unsharded keyed run byte for byte).  A ``cross_shard_ratio``
    fraction of writes instead become two-key operations spanning the
    sender's shard and a rotating partner shard, submitted through the
    cross-shard barrier.
    """

    def __init__(
        self,
        sim: Clock,
        group,
        messages_per_member: int = 20,
        interval: float = 120.0,
        message_size: int = 3,
        service: str = ServiceType.SYMMETRIC_TOTAL.value,
        write_ratio: float = 1.0,
        keyspace: int = 64,
        cross_shard_ratio: float = 0.0,
    ) -> None:
        super().__init__(
            sim,
            group,
            messages_per_member=messages_per_member,
            interval=interval,
            message_size=message_size,
            service=service,
            write_ratio=write_ratio,
            keyspace=keyspace,
        )
        if not 0.0 <= cross_shard_ratio <= 1.0:
            raise ValueError(
                f"cross_shard_ratio must be in [0,1], got {cross_shard_ratio}"
            )
        self.cross_shard_ratio = cross_shard_ratio
        assert self.keys is not None
        self._pools = {
            shard: group.router.owned_keys(shard, self.keys)
            for shard in range(group.shards)
        }
        empty = [shard for shard, pool in self._pools.items() if not pool]
        if empty:
            raise ValueError(
                f"shards {empty} own no keys; grow the keyspace "
                f"(currently {len(self.keys)} keys over {group.shards} shards)"
            )
        self._writes = 0
        self._xs_count = 0
        self._xs_keys: set = set()
        self._home: dict = {}

    # ------------------------------------------------------------------
    def _key_for(self, index: int, round_no: int) -> str:
        pool = self._pools[self.group.shard_of_member(self.group.member_ids[index])]
        return pool[(index * self.messages_per_member + round_no) % len(pool)]

    def _take_cross_shard(self) -> bool:
        count = self._writes
        self._writes += 1
        ratio = self.cross_shard_ratio
        return int((count + 1) * ratio) > int(count * ratio)

    def _send(
        self, key, index: int, member: str, round_no: int, body: bytes, is_write: bool
    ) -> None:
        home = self.group.shard_of_member(member)
        if is_write and self._take_cross_shard() and self.group.shards > 1:
            self._send_cross_shard(key, index, member, round_no, body, home)
            return
        self.recorder.sent(key, self.sim.now, expected=self.group.shard_size(home))
        self._home[key] = home
        service = self.service if is_write else ServiceType.RELIABLE.value
        value = {"r": round_no, "s": member, "b": body, "k": self._key_for(index, round_no)}
        self.group.multicast(member, service, value)

    def _send_cross_shard(
        self, key, index: int, member: str, round_no: int, body: bytes, home: int
    ) -> None:
        shards = self.group.shards
        partner = (home + 1 + self._xs_count % (shards - 1)) % shards
        self._xs_count += 1
        own_key = self._key_for(index, round_no)
        partner_pool = self._pools[partner]
        partner_key = partner_pool[
            (index * self.messages_per_member + round_no) % len(partner_pool)
        ]
        expected = self.group.shard_size(home) + self.group.shard_size(partner)
        self.recorder.sent(key, self.sim.now, expected=expected)
        self._home[key] = home
        self._xs_keys.add(key)
        value = {"r": round_no, "s": member, "b": body, "k": [own_key, partner_key]}
        self.group.submit(member, value, (own_key, partner_key))

    def _hook_deliveries(self) -> None:
        # Record *released* deliveries: the holdback agents sit between
        # the invocation layer and this hook, so cross-shard operations
        # are timed at their barrier release.
        for member in self.group.member_ids:
            agent = self.group.agents[member]
            agent.on_deliver = self._recording_hook(member, agent.on_deliver)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def fail_signal_count(self) -> int:
        return sum(
            shard_group.members[m].fs_process.signaled
            for shard_group in self.group.shard_groups
            for m in shard_group.member_ids
        )

    def shard_metrics(self) -> dict[str, float]:
        """The shard-aware metrics of one run.

        ``per_shard_throughput`` is the mean per-shard rate of fully
        ordered *shard-local* messages over the run's span (aggregate
        throughput divided by S when perfectly balanced);
        ``load_imbalance`` is the hottest shard's ordered count over
        the per-shard mean (1.0 = perfectly balanced).
        """
        shards = self.group.shards
        recorder = self.recorder
        span_s = 0.0
        if recorder.first_send is not None and recorder.last_delivery is not None:
            span_s = max(recorder.last_delivery - recorder.first_send, 0.0) / 1000.0
        local_done = [0] * shards
        for key in recorder.completed_keys(self.n_members):
            if key not in self._xs_keys:
                local_done[self._home[key]] += 1
        total_local = sum(local_done)
        per_shard = (total_local / shards) / span_s if span_s > 0 else 0.0
        imbalance = (
            max(local_done) / (total_local / shards) if total_local else 0.0
        )
        xs_latencies = [
            latency
            for latency in (
                recorder.completion_of(key, self.n_members) for key in self._xs_keys
            )
            if latency is not None
        ]
        return {
            "shards": float(shards),
            "per_shard_throughput": per_shard,
            "load_imbalance": imbalance,
            "cross_shard_ops": float(len(self._xs_keys)),
            "cross_shard_ordered": float(len(xs_latencies)),
            "cross_shard_latency_mean_ms": (
                sum(xs_latencies) / len(xs_latencies) if xs_latencies else 0.0
            ),
        }


def run_ordering_experiment(
    system: str,
    n_members: int,
    seed: int = 0,
    messages_per_member: int = 20,
    interval: float = 120.0,
    message_size: int = 3,
    service: str = ServiceType.SYMMETRIC_TOTAL.value,
    write_ratio: float = 1.0,
    **system_kwargs,
) -> ExperimentResult:
    """Build, run and summarise one configuration.

    ``system`` is ``"newtop"`` (crash-tolerant baseline) or
    ``"fs-newtop"`` (the Byzantine-tolerant extension).

    This is a thin convenience wrapper: the arguments are packed into a
    :class:`repro.experiments.ScenarioSpec` and executed by
    :func:`repro.experiments.run_ordering_spec`, the same path the
    scenario registry and campaign runner use.  ``system_kwargs`` are
    forwarded to the group constructor verbatim (the ablation
    benchmarks pass live cost-model objects through here).
    """
    # Imported lazily: repro.experiments builds on this module.
    from repro.experiments.runner import run_ordering_spec
    from repro.experiments.spec import ScenarioSpec

    if system not in ("newtop", "fs-newtop"):
        raise ValueError(f"unknown system {system!r}")
    spec = ScenarioSpec(
        system=system,
        n_members=n_members,
        seed=seed,
        messages_per_member=messages_per_member,
        interval=interval,
        message_size=message_size,
        service=service,
        write_ratio=write_ratio,
    )
    return run_ordering_spec(spec, **system_kwargs)
