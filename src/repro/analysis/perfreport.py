"""Fixed benchmark suite behind ``repro bench`` and the CI perf gate.

The suite covers the layers the fast-path caches touch:

* micro -- canonical encoding (fresh and memoised), HMAC and RSA
  sign/verify, and the bare simulator event loop;
* macro -- "mini" fig-6/fig-7 style runs of the full FS-NewTOP stack
  (small groups, few messages, so the whole suite stays CI-sized).

Every benchmark reports ``ops``, ``wall_s`` and ``ops_per_s`` (events
per second for the macro runs).  Reports serialise to JSON;
:func:`compare` diffs a report against a committed baseline with a
relative tolerance band, which is what ``repro bench --check
benchmarks/perf_baseline.json`` and the ``perf-gate`` CI job consume.

Numbers are machine-dependent by nature: refresh the baseline with
``repro bench --update benchmarks/perf_baseline.json`` when the fleet
or the code legitimately changes speed (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import random
import time
import typing

from repro import perf
from repro.corba.orb import ObjectRef
from repro.core.messages import FsOutput
from repro.crypto.binwire import binwire_encode
from repro.crypto.canonical import canonical_encode
from repro.crypto.ed25519 import HAVE_ED25519
from repro.crypto.provider import CryptoSpec
from repro.crypto.signing import HmacScheme, RsaScheme
from repro.experiments.spec import BatchingSpec, ScenarioSpec, ShardSpec
from repro.sim.scheduler import Simulator

#: Report schema version (bump on incompatible layout changes).
REPORT_VERSION = 1


@dataclasses.dataclass(frozen=True, slots=True)
class BenchResult:
    """One benchmark's measurement."""

    name: str
    ops: int
    wall_s: float

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "ops": self.ops,
            "wall_s": round(self.wall_s, 6),
            "ops_per_s": round(self.ops_per_s, 3),
        }


# ----------------------------------------------------------------------
# the benchmarks
# ----------------------------------------------------------------------
def _bench_message(i: int) -> FsOutput:
    """A representative double-signed multicast payload."""
    return FsOutput(
        fs_id="bench.gc",
        input_seq=i,
        output_idx=0,
        target=ObjectRef(node="bench-node", key="bench.inv"),
        method="multicast",
        args=("group", "symmetric_total", f"payload-{i}"),
    )


def _bench_encode_fresh() -> int:
    """Canonical-encode distinct messages (the cache-miss path)."""
    messages = [_bench_message(i) for i in range(4000)]
    perf.clear_caches()
    for message in messages:
        canonical_encode(message)
    return len(messages)


def _bench_encode_cached() -> int:
    """Re-encode one message (the multicast fan-out hit path)."""
    message = _bench_message(0)
    ops = 100_000
    for __ in range(ops):
        canonical_encode(message)
    return ops


def _bench_hmac_sign_verify() -> int:
    """HMAC sign+verify pairs over distinct payloads (no memo hits)."""
    scheme = HmacScheme()
    private, public = scheme.generate(random.Random(1))
    ops = 5000
    for i in range(ops):
        data = b"bench-payload-%d" % i
        value = scheme.sign(private, data)
        assert scheme.verify(public, data, value)
    return ops


def _bench_binwire_encode_fresh() -> int:
    """Binwire-encode distinct messages (the compact codec's miss path)."""
    messages = [_bench_message(i) for i in range(4000)]
    perf.clear_caches()
    for message in messages:
        binwire_encode(message)
    return len(messages)


def _bench_ed25519_sign_verify() -> int:
    """Ed25519 sign+verify pairs (the ``fastcrypto`` provider)."""
    from repro.crypto.ed25519 import Ed25519Scheme

    scheme = Ed25519Scheme()
    private, public = scheme.generate(random.Random(1))
    ops = 5000
    for i in range(ops):
        data = b"bench-payload-%d" % i
        value = scheme.sign(private, data)
        assert scheme.verify(public, data, value)
    return ops


def _bench_rsa_sign_verify() -> int:
    """From-scratch RSA sign+verify pairs (256-bit, era-style keys)."""
    scheme = RsaScheme(bits=256)
    private, public = scheme.generate(random.Random(1))
    ops = 300
    for i in range(ops):
        data = b"bench-payload-%d" % i
        value = scheme.sign(private, data)
        assert scheme.verify(public, data, value)
    return ops


def _bench_sim_events() -> int:
    """Bare scheduler throughput: schedule and drain no-op events."""
    sim = Simulator(seed=7, trace=None)
    sim.trace.enabled = False
    ops = 100_000

    def noop() -> None:
        pass

    for i in range(ops):
        sim.schedule(i * 0.01, noop)
    sim.run_until_idle()
    return sim.events_processed


#: Mini versions of the figure scenarios: same stack, same shape,
#: CI-sized.  fig6 is the latency configuration (larger payloads, calm
#: LAN); fig7 the small-message throughput configuration.
FIG6_MINI_SPEC = ScenarioSpec(
    system="fs-newtop",
    n_members=4,
    messages_per_member=20,
    interval=100.0,
    message_size=256,
    seed=1,
    settle_ms=10_000.0,
)
FIG7_MINI_SPEC = ScenarioSpec(
    system="fs-newtop",
    n_members=8,
    messages_per_member=8,
    interval=150.0,
    message_size=3,
    seed=1,
    settle_ms=10_000.0,
)
#: The same fig-7 shape driven hard (10ms per-member interval) through
#: the *batched* compare path -- the macro benchmark of the batching
#: layer's host-time cost.  Its simulated-time win is asserted by
#: benchmarks/test_scale_batching.py; here we gate the wall-clock.
SCALE_BATCHED_MINI_SPEC = ScenarioSpec(
    system="fs-newtop",
    n_members=8,
    messages_per_member=8,
    interval=10.0,
    message_size=3,
    seed=1,
    settle_ms=10_000.0,
    batching=BatchingSpec(max_batch=8, max_delay_ms=4.0, max_inflight=4),
)
#: The unbatched control of the same high-rate configuration.
SCALE_UNBATCHED_MINI_SPEC = SCALE_BATCHED_MINI_SPEC.replace(batching=None)
#: The batched high-rate shape deployed as four 2-member shards: the
#: wall-clock cost of the sharded facade (router, agents, S group
#: builds) on shard-local keyed traffic.  Its simulated-time win is
#: asserted by benchmarks/test_scale_sharding.py; here we gate host
#: time.
SCALE_SHARD4_MINI_SPEC = SCALE_BATCHED_MINI_SPEC.replace(
    shard=ShardSpec(shards=4)
)
#: A two-shard run where a fifth of writes cross shards -- the
#: two-phase barrier (reserve/commit multicasts plus holdback) on the
#: host-time hot path.
SCALE_SHARD_XS_MINI_SPEC = SCALE_BATCHED_MINI_SPEC.replace(
    shard=ShardSpec(shards=2, cross_shard_ratio=0.2)
)
#: The batched high-rate shape on the fast crypto engine: ed25519
#: signatures over compact binwire signing bytes.  Simulated time uses
#: the ed25519 provider cost table, so this gates both the host-time
#: cost of the native scheme and the codec's encoding cost.  Suite
#: membership is conditional on the ``fastcrypto`` extra being
#: importable (the default CI jobs run the pure-python fallback).
SCALE_CRYPTO_MINI_SPEC = SCALE_BATCHED_MINI_SPEC.replace(
    crypto=CryptoSpec(provider="ed25519", codec="binwire")
)


def _run_mini(spec: ScenarioSpec) -> int:
    from repro.experiments.runner import _run_ordering

    perf.clear_caches()
    workload, _monitor, _transport = _run_ordering(spec)
    return workload.sim.events_processed


def _bench_fig6_mini() -> int:
    return _run_mini(FIG6_MINI_SPEC)


def _bench_fig7_mini() -> int:
    return _run_mini(FIG7_MINI_SPEC)


def _bench_scale_batched_mini() -> int:
    return _run_mini(SCALE_BATCHED_MINI_SPEC)


def _bench_scale_unbatched_mini() -> int:
    return _run_mini(SCALE_UNBATCHED_MINI_SPEC)


def _bench_scale_shard4_mini() -> int:
    return _run_mini(SCALE_SHARD4_MINI_SPEC)


def _bench_scale_shard_xs_mini() -> int:
    return _run_mini(SCALE_SHARD_XS_MINI_SPEC)


def _bench_scale_crypto_mini() -> int:
    return _run_mini(SCALE_CRYPTO_MINI_SPEC)


#: The fixed suite, in execution order.  Values return the op count.
#: The ed25519-backed entries join only when the ``fastcrypto`` extra
#: is importable; the committed baseline includes them, so a perf-gate
#: host without the extra fails loudly ("missing") rather than
#: silently dropping crypto coverage.
SUITE: dict[str, typing.Callable[[], int]] = {
    "encode_fresh": _bench_encode_fresh,
    "encode_cached": _bench_encode_cached,
    "binwire_encode_fresh": _bench_binwire_encode_fresh,
    "hmac_sign_verify": _bench_hmac_sign_verify,
    "rsa_sign_verify": _bench_rsa_sign_verify,
    "sim_events": _bench_sim_events,
    "fig6_mini": _bench_fig6_mini,
    "fig7_mini": _bench_fig7_mini,
    "scale_batched_mini": _bench_scale_batched_mini,
    "scale_unbatched_mini": _bench_scale_unbatched_mini,
    "scale_shard4_mini": _bench_scale_shard4_mini,
    "scale_shard_xs_mini": _bench_scale_shard_xs_mini,
}
if HAVE_ED25519:
    SUITE["ed25519_sign_verify"] = _bench_ed25519_sign_verify
    SUITE["scale_crypto_mini"] = _bench_scale_crypto_mini


def run_suite(
    names: typing.Iterable[str] | None = None,
    repeats: int = 1,
    progress: typing.Callable[[str], None] | None = None,
) -> dict[str, BenchResult]:
    """Run (a subset of) the suite; best-of-``repeats`` per benchmark.

    Best-of is the right aggregate for a regression gate: the minimum
    wall-clock is the least noisy estimate of what the code *can* do.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    selected = list(SUITE) if names is None else list(names)
    unknown = [n for n in selected if n not in SUITE]
    if unknown:
        raise KeyError(f"unknown benchmarks: {', '.join(unknown)}")
    results: dict[str, BenchResult] = {}
    for name in selected:
        fn = SUITE[name]
        best: BenchResult | None = None
        for __ in range(repeats):
            perf.clear_caches()
            start = time.perf_counter()
            ops = fn()
            wall = time.perf_counter() - start
            result = BenchResult(name=name, ops=ops, wall_s=wall)
            if best is None or result.wall_s < best.wall_s:
                best = result
        results[name] = best
        if progress is not None:
            progress(
                f"{name:<18} {best.ops:>8} ops  {best.wall_s:8.3f}s  "
                f"{best.ops_per_s:12.1f} ops/s"
            )
    return results


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def build_report(results: dict[str, BenchResult]) -> dict:
    """JSON-able report for storage and baseline comparison."""
    return {
        "version": REPORT_VERSION,
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "benchmarks": {name: r.to_dict() for name, r in results.items()},
    }


def write_report(report: dict, path: str | pathlib.Path) -> pathlib.Path:
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def load_report(path: str | pathlib.Path) -> dict:
    return json.loads(pathlib.Path(path).read_text())


@dataclasses.dataclass(frozen=True, slots=True)
class Comparison:
    """One benchmark's verdict against the baseline.

    ``ratio`` is current/baseline throughput (ops/s): 1.0 means equal,
    below ``1 - tolerance`` is a regression.  ``status`` is one of
    ``ok``, ``regression``, ``missing`` (in baseline but not measured
    -- treated as failure so a silently dropped benchmark cannot hide a
    regression) and ``new`` (measured but not yet in the baseline).
    """

    name: str
    status: str
    ratio: float | None = None
    current_ops_per_s: float | None = None
    baseline_ops_per_s: float | None = None

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing")

    def render(self) -> str:
        if self.ratio is None:
            return f"{self.name:<18} {self.status}"
        return (
            f"{self.name:<18} {self.status:<10} "
            f"{self.current_ops_per_s:12.1f} vs {self.baseline_ops_per_s:12.1f} ops/s "
            f"(x{self.ratio:.2f})"
        )


def compare(report: dict, baseline: dict, tolerance: float = 0.25) -> list[Comparison]:
    """Diff a report against a baseline with a relative tolerance band."""
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    current = report.get("benchmarks", {})
    base = baseline.get("benchmarks", {})
    out: list[Comparison] = []
    for name in base:
        if name not in current:
            out.append(Comparison(name=name, status="missing"))
            continue
        cur_rate = float(current[name]["ops_per_s"])
        base_rate = float(base[name]["ops_per_s"])
        ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
        status = "regression" if ratio < 1.0 - tolerance else "ok"
        out.append(
            Comparison(
                name=name,
                status=status,
                ratio=ratio,
                current_ops_per_s=cur_rate,
                baseline_ops_per_s=base_rate,
            )
        )
    for name in current:
        if name not in base:
            out.append(Comparison(name=name, status="new"))
    return out


def check_passed(comparisons: list[Comparison]) -> bool:
    return not any(c.failed for c in comparisons)
