"""Measurement and reporting utilities for the experiments."""

from repro.analysis.aggregate import (
    AggregateStats,
    aggregate,
    aggregate_records,
    audit_summary,
    batching_summary,
    obs_summary,
    service_summary,
    shard_summary,
)
from repro.analysis.metrics import LatencyRecorder, Summary, percentile, summarize
from repro.analysis.tables import format_series_table

__all__ = [
    "AggregateStats",
    "LatencyRecorder",
    "Summary",
    "aggregate",
    "aggregate_records",
    "audit_summary",
    "batching_summary",
    "format_series_table",
    "obs_summary",
    "percentile",
    "service_summary",
    "shard_summary",
    "summarize",
]
