"""Measurement and reporting utilities for the experiments."""

from repro.analysis.metrics import LatencyRecorder, summarize
from repro.analysis.tables import format_series_table

__all__ = ["LatencyRecorder", "format_series_table", "summarize"]
