"""Aggregation of repeated campaign runs.

A campaign runs every grid cell several times under different derived
seeds; this module collapses those repeats into order statistics
(mean / p50 / p99) per (scenario, system, sweep point) -- the numbers a
figure plots and the ``report`` CLI subcommand prints.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.metrics import _percentile


@dataclasses.dataclass(frozen=True, slots=True)
class AggregateStats:
    """Order statistics of one metric across repeats."""

    n: int
    mean: float
    p50: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.2f} p50={self.p50:.2f} "
            f"p99={self.p99:.2f} min={self.minimum:.2f} max={self.maximum:.2f}"
        )


def aggregate(values: typing.Sequence[float]) -> AggregateStats:
    """Collapse one sample of repeat measurements."""
    if not values:
        raise ValueError("cannot aggregate an empty sample")
    ordered = sorted(values)
    return AggregateStats(
        n=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=_percentile(ordered, 0.5),
        p99=_percentile(ordered, 0.99),
        minimum=ordered[0],
        maximum=ordered[-1],
    )


def aggregate_records(
    records: typing.Iterable,
    metric: str,
    key: typing.Callable = lambda r: (r.scenario, r.system, r.x_label),
) -> dict:
    """Group run records and aggregate one metric across each group.

    ``records`` are :class:`repro.experiments.campaign.RunRecord`-shaped
    objects (anything with ``.metrics`` plus the fields ``key`` reads).
    Records missing the metric are skipped.  Returns ``{group_key:
    AggregateStats}`` preserving first-seen group order.
    """
    grouped: dict = {}
    for record in records:
        if metric not in record.metrics:
            continue
        grouped.setdefault(key(record), []).append(record.metrics[metric])
    return {group: aggregate(values) for group, values in grouped.items()}


def batching_summary(records: typing.Iterable) -> dict:
    """Campaign-level roll-up of the crypto-amortisation metrics.

    Reads the ``batches_signed`` / ``batch_mean_size`` /
    ``signatures_per_ordered`` metrics the ordering runner emits (see
    :func:`repro.experiments.runner._batching_metrics`) and aggregates
    them per ``(system, x_label)`` cell, splitting batched from
    unbatched cells -- the two sides of a batched-vs-unbatched A/B.
    Cells that signed nothing at all (``newtop``/``pbft`` runs, which
    carry the keys zero-filled) are not meaningful comparators and are
    excluded entirely; returns an empty dict when nothing remains.
    Cells that signed but ordered nothing (a collapsed sweep point --
    every pair fail-signalled) have no meaningful per-message cost and
    are reported separately under ``degenerate_cells`` rather than
    silently flattering the amortisation ratio.
    """
    cells: dict = {}
    for record in records:
        if record.metrics.get("signatures", 0.0) <= 0.0:
            continue
        cells.setdefault((record.system, record.x_label), []).append(record.metrics)
    if not cells:
        return {}
    batched: dict = {}
    unbatched: dict = {}
    degenerate: list = []
    for cell, metrics_list in cells.items():
        per_ordered = [
            m["signatures_per_ordered"]
            for m in metrics_list
            if m.get("signatures_per_ordered", 0.0) > 0.0
        ]
        if not per_ordered:
            degenerate.append(cell)
            continue
        sigs = aggregate(per_ordered)
        sizes = [m.get("batch_mean_size", 0.0) for m in metrics_list]
        summary = {
            "signatures_per_ordered": sigs,
            "batch_mean_size": sum(sizes) / len(sizes),
        }
        if any(m.get("batches_signed", 0.0) > 0 for m in metrics_list):
            batched[cell] = summary
        else:
            unbatched[cell] = summary
    out = {
        "batched_cells": batched,
        "unbatched_cells": unbatched,
        "degenerate_cells": sorted(degenerate),
    }
    if batched and unbatched:
        mean = lambda side: sum(  # noqa: E731 - tiny local reducer
            s["signatures_per_ordered"].mean for s in side.values()
        ) / len(side)
        batched_mean, unbatched_mean = mean(batched), mean(unbatched)
        out["amortisation"] = (
            unbatched_mean / batched_mean if batched_mean > 0 else float("inf")
        )
    return out


def shard_summary(records: typing.Iterable) -> dict:
    """Campaign-level roll-up of the sharded-deployment metrics.

    Sharded runs carry ``shards`` / ``per_shard_throughput`` /
    ``load_imbalance`` / ``cross_shard_*`` metrics (see
    :meth:`repro.workloads.ordering.ShardedOrderingWorkload.shard_metrics`).
    Returns an empty dict when no record is sharded.  When both
    single-shard and multi-shard cells are present (a scale_shard_ab
    style sweep), ``scaling`` reports the aggregate-throughput ratio of
    the widest deployment over the S=1 mean -- the headline number of
    the scale-out story.
    """
    sharded = [r for r in records if r.metrics.get("shards", 0.0) >= 1.0]
    if not sharded:
        return {}
    out: dict = {
        "sharded_cells": len(sharded),
        "max_shards": int(max(r.metrics["shards"] for r in sharded)),
        "mean_load_imbalance": sum(r.metrics.get("load_imbalance", 0.0) for r in sharded)
        / len(sharded),
    }
    cross = [r for r in sharded if r.metrics.get("cross_shard_ops", 0.0) > 0]
    if cross:
        out["cross_shard_ops"] = int(sum(r.metrics["cross_shard_ops"] for r in cross))
        out["cross_shard_ordered"] = int(
            sum(r.metrics.get("cross_shard_ordered", 0.0) for r in cross)
        )
        out["cross_shard_latency_mean_ms"] = sum(
            r.metrics.get("cross_shard_latency_mean_ms", 0.0) for r in cross
        ) / len(cross)
    single = [
        r.metrics["throughput_msgs_per_s"]
        for r in sharded
        if r.metrics["shards"] == 1.0
    ]
    widest = [
        r.metrics["throughput_msgs_per_s"]
        for r in sharded
        if r.metrics["shards"] == out["max_shards"]
    ]
    if single and widest and out["max_shards"] > 1:
        base = sum(single) / len(single)
        if base > 0:
            out["scaling"] = (sum(widest) / len(widest)) / base
    return out


def service_summary(records: typing.Iterable) -> dict:
    """Campaign-level roll-up of gateway-served runs.

    Served runs carry ``service_*`` metrics (see
    :meth:`repro.service.workload.ServiceWorkload.service_metrics`).
    Returns an empty dict when no record was served.  ``admission_rate``
    is admitted over offered (admitted + rejected); ``feed_violations``
    sums stream gaps and cross-subscriber mismatches -- any non-zero
    value is a delivered-order bug a release must not ship with.
    """
    served = [r for r in records if "service_admitted" in r.metrics]
    if not served:
        return {}
    admitted = sum(r.metrics["service_admitted"] for r in served)
    rejected = sum(r.metrics.get("service_rejected", 0.0) for r in served)
    offered = admitted + rejected
    return {
        "served_cells": len(served),
        "admitted": int(admitted),
        "rejected": int(rejected),
        "admission_rate": admitted / offered if offered else 0.0,
        "sessions_done": int(
            sum(r.metrics.get("service_sessions_done", 0.0) for r in served)
        ),
        "gave_up": int(sum(r.metrics.get("service_gave_up", 0.0) for r in served)),
        "feed_violations": int(
            sum(
                r.metrics.get("service_stream_gaps", 0.0)
                + r.metrics.get("service_stream_mismatches", 0.0)
                for r in served
            )
        ),
        "submit_p99_ms": max(
            r.metrics.get("service_submit_p99_ms", 0.0) for r in served
        ),
        "submit_p999_ms": max(
            r.metrics.get("service_submit_p999_ms", 0.0) for r in served
        ),
        "rejected_auth": int(
            sum(r.metrics.get("service_rejected_auth", 0.0) for r in served)
        ),
        "rejected_rate": int(
            sum(r.metrics.get("service_rejected_rate", 0.0) for r in served)
        ),
        "rejected_overload": int(
            sum(r.metrics.get("service_rejected_overload", 0.0) for r in served)
        ),
    }


def obs_summary(records: typing.Iterable) -> dict:
    """Campaign-level roll-up of the ``obs_*`` instrumentation metrics.

    Instrumented runs carry the histogram summaries of
    :meth:`repro.obs.spans.ObsHub.summary_metrics`.  Worst-case latency
    quantiles take the max across cells (a p99 is already an upper
    statistic; averaging them would hide the worst cell), counts sum.
    Returns an empty dict when no record was instrumented.
    """
    observed = [
        r
        for r in records
        if any(key.startswith("obs_") for key in r.metrics)
    ]
    if not observed:
        return {}
    out: dict = {"observed_cells": len(observed)}
    keys = sorted({k for r in observed for k in r.metrics if k.startswith("obs_")})
    for key in keys:
        values = [r.metrics[key] for r in observed if key in r.metrics]
        if key.endswith("_count") or key.endswith("_total") or key.endswith("deferrals"):
            out[key] = sum(values)
        else:
            out[key] = max(values)
    return out


def audit_summary(records: typing.Iterable) -> dict:
    """Campaign-level roll-up of audited runs.

    Audited records carry ``audit_ok`` / ``audit_violations`` metrics
    (see :func:`repro.experiments.campaign.execute_task`).  Returns the
    counts a campaign report prints plus the failing grid cells, so a
    single glance answers "did any run in the whole sweep break an
    invariant, and which".
    """
    audited = failed = 0
    violations = 0.0
    failing_cells = []
    for record in records:
        if "audit_ok" not in record.metrics:
            continue
        audited += 1
        violations += record.metrics.get("audit_violations", 0.0)
        if record.metrics["audit_ok"] != 1.0:
            failed += 1
            failing_cells.append(
                (record.scenario, record.system, record.x_label, record.repeat)
            )
    return {
        "audited": audited,
        "failed": failed,
        "violations": int(violations),
        "failing_cells": failing_cells,
    }
