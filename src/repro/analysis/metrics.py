"""Latency and throughput measurement."""

from __future__ import annotations

import dataclasses
import math
import typing


@dataclasses.dataclass(frozen=True, slots=True)
class Summary:
    """Order statistics of a latency sample, in milliseconds."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f}ms median={self.median:.2f}ms "
            f"p95={self.p95:.2f}ms max={self.maximum:.2f}ms"
        )


def percentile(values: typing.Iterable[float], q: float) -> float:
    """The q-th percentile (0..1) of a sample, by nearest-rank.

    The repo's one percentile convention (the same the per-run
    summaries, the live calibration and the obs histograms use): sort,
    take the ``ceil(q * n)``-th smallest value.  An empty sample is
    0.0 -- callers like :func:`repro.transport.calibrate` percentile
    optional probe results that may legitimately be empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0,1], got {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    return _percentile(ordered, q)


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted, non-empty sample (the
    internal fast path under :func:`percentile`)."""
    if not ordered:
        raise ValueError("empty sample")
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def summarize(samples: list[float]) -> Summary:
    """Summary statistics of a latency sample."""
    if not samples:
        raise ValueError("cannot summarise an empty sample")
    ordered = sorted(samples)
    return Summary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        median=_percentile(ordered, 0.5),
        p95=_percentile(ordered, 0.95),
        maximum=ordered[-1],
    )


class LatencyRecorder:
    """Matches sends to deliveries and accumulates per-message latency.

    A message is identified by an arbitrary hashable key (the workloads
    use ``(sender, round)``).  Latency is recorded per delivering member
    and aggregated both per delivery and per message-completion (the
    time until *every* member delivered)."""

    def __init__(self) -> None:
        self._sent_at: dict = {}
        self._deliveries: dict = {}
        self._expected: dict = {}
        self.per_delivery: list[float] = []
        self.first_send: float | None = None
        self.last_delivery: float | None = None

    def sent(self, key, time: float, expected: int | None = None) -> None:
        """Record one send.  ``expected`` overrides, for this key only,
        the member count that makes the message *fully delivered* --
        sharded workloads pass the involved shards' member total."""
        if key in self._sent_at:
            raise ValueError(f"duplicate send for {key!r}")
        self._sent_at[key] = time
        if expected is not None:
            self._expected[key] = expected
        if self.first_send is None or time < self.first_send:
            self.first_send = time

    def delivered(self, key, member: str, time: float) -> None:
        sent = self._sent_at.get(key)
        if sent is None:
            return  # delivery of a message outside the measured window
        members = self._deliveries.setdefault(key, {})
        if member in members:
            return  # duplicate delivery would double-count
        members[member] = time
        self.per_delivery.append(time - sent)
        if self.last_delivery is None or time > self.last_delivery:
            self.last_delivery = time

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        return len(self._sent_at)

    def completion_latencies(self, n_members: int) -> list[float]:
        """Latency until the last expected member delivered, for every
        fully delivered message (``n_members`` unless the send recorded
        its own expected count)."""
        out = []
        for key, members in self._deliveries.items():
            if len(members) >= self._expected.get(key, n_members):
                out.append(max(members.values()) - self._sent_at[key])
        return out

    def completion_of(self, key, n_members: int) -> float | None:
        """This key's completion latency, or ``None`` if not yet fully
        delivered."""
        members = self._deliveries.get(key)
        if members is None or len(members) < self._expected.get(key, n_members):
            return None
        return max(members.values()) - self._sent_at[key]

    def completed_keys(self, n_members: int) -> list:
        """Every fully delivered key (expected-count aware)."""
        return [
            key
            for key, members in self._deliveries.items()
            if len(members) >= self._expected.get(key, n_members)
        ]

    def fully_delivered(self, n_members: int) -> int:
        return sum(
            1
            for key, members in self._deliveries.items()
            if len(members) >= self._expected.get(key, n_members)
        )

    def throughput_msgs_per_s(self, n_members: int) -> float:
        """Fully ordered messages per wall-clock second (virtual time),
        over the span from first send to last delivery."""
        done = self.fully_delivered(n_members)
        if done == 0 or self.first_send is None or self.last_delivery is None:
            return 0.0
        span_ms = self.last_delivery - self.first_send
        if span_ms <= 0:
            return 0.0
        return done / (span_ms / 1000.0)
