"""ASCII rendering of experiment series, in the shape of the paper's
figures (x-axis column plus one column per system)."""

from __future__ import annotations

from typing import Sequence


def format_series_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    unit: str = "",
    overhead_between: tuple[str, str] | None = None,
) -> str:
    """Render aligned columns for an experiment's data series.

    ``overhead_between=(base, other)`` appends a percentage column
    ``(other-base)/base`` -- the overhead number the paper quotes in its
    prose for each figure."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} has {len(values)} points, want {len(x_values)}")
    headers = [x_label] + [f"{name} ({unit})" if unit else name for name in series]
    if overhead_between is not None:
        headers.append("overhead %")
    rows = []
    for i, x in enumerate(x_values):
        row = [str(x)] + [f"{series[name][i]:.1f}" for name in series]
        if overhead_between is not None:
            base_name, other_name = overhead_between
            base = series[base_name][i]
            other = series[other_name][i]
            row.append(f"{100.0 * (other - base) / base:+.0f}%" if base else "n/a")
        rows.append(row)
    widths = [max(len(headers[c]), *(len(r[c]) for r in rows)) for c in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
    return "\n".join(lines)
