"""Marshalling: a genuine encoder/decoder for the canonical wire format.

The encoder is :func:`repro.crypto.canonical.canonical_encode` (shared
with the signing layer, so the bytes that are signed are the bytes that
travel).  This module adds the matching decoder so values genuinely
round-trip through bytes, as they would through IIOP CDR.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.crypto.canonical import CanonicalEncodingError, canonical_encode
from repro.corba.errors import MarshalError


def marshal(value: Any) -> bytes:
    """Encode ``value`` to wire bytes."""
    try:
        return canonical_encode(value)
    except CanonicalEncodingError as exc:
        raise MarshalError(str(exc)) from exc


class _Decoder:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise MarshalError(
                f"truncated stream: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def _length(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def decode(self) -> Any:
        tag = self._take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"I":
            return int(self._take(self._length()).decode("ascii"))
        if tag == b"D":
            return struct.unpack(">d", self._take(8))[0]
        if tag == b"S":
            return self._take(self._length()).decode("utf-8")
        if tag == b"B":
            return self._take(self._length())
        if tag == b"L":
            return [self.decode() for __ in range(self._length())]
        if tag == b"U":
            return tuple(self.decode() for __ in range(self._length()))
        if tag == b"M":
            count = self._length()
            out = {}
            for __ in range(count):
                key = self.decode()
                out[key] = self.decode()
            return out
        if tag == b"O":
            # Dataclasses decode to a plain dict tagged with the type
            # name; reconstructing arbitrary classes from the wire would
            # be a deserialisation hazard, and protocol code never needs
            # it (servant methods receive plain structures).
            name = self._take(self._length()).decode("utf-8")
            count = self._length()
            fields = {}
            for __ in range(count):
                key = self.decode()
                fields[key] = self.decode()
            return {"__type__": name, **fields}
        raise MarshalError(f"unknown tag {tag!r} at offset {self.pos - 1}")


def unmarshal(data: bytes) -> Any:
    """Decode wire bytes back into a value.

    Inverse of :func:`marshal` for all plain values; dataclass instances
    come back as ``{"__type__": name, ...fields}`` dictionaries (see
    :class:`_Decoder.decode`).
    """
    decoder = _Decoder(data)
    value = decoder.decode()
    if decoder.pos != len(data):
        raise MarshalError(
            f"{len(data) - decoder.pos} trailing bytes after decoded value"
        )
    return value
