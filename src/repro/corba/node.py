"""A host node: CPU, request thread pool, and an ORB.

The paper's testbed nodes are dual-processor PCs running a Java ORB with
a 10-thread request pool; those are the defaults here.
"""

from __future__ import annotations

from repro.corba.costs import OrbCostModel
from repro.corba.orb import ObjectRef, Orb, Servant
from repro.crypto.costmodel import CryptoCostModel
from repro.net.network import Network
from repro.sim.resources import CpuResource, ThreadPool
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.transport.base import Clock


class Node:
    """One machine: registers its ORB as the network endpoint."""

    def __init__(
        self,
        sim: Clock,
        name: str,
        network: Network,
        cores: int = 2,
        pool_size: int = 10,
        orb_costs: OrbCostModel | None = None,
        crypto_costs: CryptoCostModel | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.network = network
        self.cpu = CpuResource(sim, cores=cores, name=f"{name}/cpu")
        self.pool = ThreadPool(sim, self.cpu, size=pool_size, name=f"{name}/pool")
        self.orb = Orb(sim, name, network, self.cpu, self.pool, orb_costs)
        self.crypto_costs = crypto_costs if crypto_costs is not None else CryptoCostModel()
        self._failed = False
        network.register(name, self.orb)

    def activate(self, key: str, servant: Servant) -> ObjectRef:
        """Convenience passthrough to the node's ORB."""
        return self.orb.activate(key, servant)

    @property
    def failed(self) -> bool:
        return self._failed

    def crash(self) -> None:
        """Unannounced stop: the node keeps its network registration but
        silently drops everything (endpoint replaced with a sink)."""
        self._failed = True
        self.network.register(self.name, _CrashedEndpoint())

    def __repr__(self) -> str:
        return f"<Node {self.name!r} cores={self.cpu.cores} pool={self.pool.size}>"


class _CrashedEndpoint:
    """Network endpoint of a crashed node: swallows all traffic."""

    def deliver(self, message: object) -> None:
        return
