"""CORBA-lite object request broker.

NewTOP is "implemented as a CORBA object" and the FS extension leans on
three CORBA properties the paper calls out explicitly:

* **location independence** -- a client invokes an object reference the
  same way whether the servant is local or remote (section 3: GC' being
  on a different node "will not matter since the communication between
  the two is via the ORB");
* **portable interceptors** -- requests can be intercepted "on the fly"
  and redirected/duplicated, which is how GC is wrapped transparently
  (section 3.1, citing the Eternal system);
* **a configurable server thread pool** (default 10) whose saturation
  produces Figure 7's throughput knee.

This package reproduces exactly those properties: typed ``Any`` values
with a real marshaller, object references, oneway and request/reply
invocation, client/server interceptor chains, and per-node thread pools
fed by a dual-core CPU model.
"""

from repro.corba.anytype import Any as CorbaAny
from repro.corba.costs import OrbCostModel
from repro.corba.errors import CorbaError, MarshalError, ObjectNotFound
from repro.corba.interceptors import ClientInterceptor, ServerInterceptor
from repro.corba.marshal import marshal, unmarshal
from repro.corba.node import Node
from repro.corba.orb import ObjectRef, Orb, Request, Servant

__all__ = [
    "ClientInterceptor",
    "CorbaAny",
    "CorbaError",
    "MarshalError",
    "Node",
    "ObjectNotFound",
    "ObjectRef",
    "Orb",
    "OrbCostModel",
    "Request",
    "Servant",
    "ServerInterceptor",
    "marshal",
    "unmarshal",
]
