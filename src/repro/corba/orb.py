"""Object request broker: references, servants, invocation.

One :class:`Orb` runs per node.  It is the node's network endpoint;
incoming requests pass the server interceptor chain, then consume a
thread from the node's request pool and CPU time for unmarshalling and
dispatch -- the contention structure behind Figures 7 and 8.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.corba.costs import OrbCostModel
from repro.corba.errors import ObjectNotFound
from repro.corba.interceptors import ClientInterceptor, ServerInterceptor
from repro.net.message import HEADER_BYTES, wire_size
from repro.net.network import Network
from repro.sim.resources import CpuResource, ThreadPool
if typing.TYPE_CHECKING:
    from repro.transport.base import Clock


@dataclasses.dataclass(frozen=True, slots=True)
class ObjectRef:
    """Interoperable object reference: hosting node + object key."""

    node: str
    key: str

    def __str__(self) -> str:
        return f"{self.node}/{self.key}"


def _args_size(method: str, args: tuple) -> int:
    """Wire size of a request: header, method name, and each argument
    (honouring explicit ``wire_size`` attributes for synthetic bodies)."""
    total = HEADER_BYTES + len(method)
    for arg in args:
        total += wire_size(arg) - HEADER_BYTES
    return total


@dataclasses.dataclass(frozen=True, slots=True)
class Request:
    """An invocation travelling between ORBs."""

    target: ObjectRef
    method: str
    args: tuple
    oneway: bool
    request_id: int
    reply_to: str | None
    sender: str
    size: int

    def retargeted(self, target: ObjectRef) -> "Request":
        """Copy of this request aimed at a different object."""
        return dataclasses.replace(self, target=target)

    @property
    def wire_size(self) -> int:
        return self.size


@dataclasses.dataclass(frozen=True, slots=True)
class _Reply:
    request_id: int
    result: typing.Any
    size: int

    @property
    def wire_size(self) -> int:
        return self.size


class Servant:
    """Base class for objects activated on an ORB.

    ``orb`` and ``ref`` are assigned at activation.  Subclasses implement
    ordinary methods; the ORB dispatches ``request.method`` by name.
    """

    orb: "Orb"
    ref: ObjectRef

    def invocation_cost(self, request: Request) -> float:
        """Extra CPU (ms) the servant's own processing of this request
        costs, beyond ORB dispatch.  Default: negligible."""
        return 0.0


class _ServantGate:
    """Serialises handler execution per servant, in arrival order.

    NewTOP's GC "is implemented as a single-threaded, deterministic
    application", so concurrent requests to one servant must execute
    their handlers one at a time and in the order they arrived off the
    network -- even though their unmarshalling may overlap on the CPU.
    Tickets are issued at arrival; execution strictly follows ticket
    order.
    """

    __slots__ = ("next_ticket", "next_to_run", "running", "ready")

    def __init__(self) -> None:
        self.next_ticket = 0
        self.next_to_run = 0
        self.running = False
        self.ready: dict[int, typing.Any] = {}

    def issue(self) -> int:
        ticket = self.next_ticket
        self.next_ticket += 1
        return ticket


class Orb:
    """Per-node object request broker."""

    def __init__(
        self,
        sim: Clock,
        address: str,
        network: Network,
        cpu: CpuResource,
        pool: ThreadPool,
        costs: OrbCostModel | None = None,
    ) -> None:
        self.sim = sim
        self.address = address
        self.network = network
        self.cpu = cpu
        self.pool = pool
        self.costs = costs if costs is not None else OrbCostModel()
        self.client_interceptors: list[ClientInterceptor] = []
        self.server_interceptors: list[ServerInterceptor] = []
        self._servants: dict[str, Servant] = {}
        self._gates: dict[str, _ServantGate] = {}
        self._next_request_id = 0
        self._pending_replies: dict[int, typing.Callable[[typing.Any], None]] = {}
        self.requests_dispatched = 0
        # Outbound transmission order buffer: requests leave this ORB in
        # invocation order even when their marshalling CPU bursts finish
        # out of order on a multi-core node (TCP would serialise them).
        self._out_seq = 0
        self._out_next = 0
        self._out_ready: dict[int, Request] = {}

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def activate(self, key: str, servant: Servant) -> ObjectRef:
        """Register a servant under ``key`` and hand it its reference."""
        if key in self._servants:
            raise ValueError(f"object key {key!r} already active on {self.address}")
        ref = ObjectRef(node=self.address, key=key)
        servant.orb = self
        servant.ref = ref
        self._servants[key] = servant
        return ref

    def deactivate(self, key: str) -> None:
        self._servants.pop(key, None)

    def servant(self, key: str) -> Servant | None:
        return self._servants.get(key)

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------
    def oneway(self, target: ObjectRef, method: str, *args: typing.Any) -> None:
        """Fire-and-forget invocation (how GC protocol messages travel)."""
        self._invoke(target, method, args, oneway=True, on_reply=None)

    def invoke(
        self,
        target: ObjectRef,
        method: str,
        *args: typing.Any,
        on_reply: typing.Callable[[typing.Any], None],
    ) -> None:
        """Two-way invocation; ``on_reply(result)`` fires on completion."""
        self._invoke(target, method, args, oneway=False, on_reply=on_reply)

    def _invoke(
        self,
        target: ObjectRef,
        method: str,
        args: tuple,
        oneway: bool,
        on_reply: typing.Callable[[typing.Any], None] | None,
    ) -> None:
        request_id = self._next_request_id
        self._next_request_id += 1
        request = Request(
            target,
            method,
            args,
            oneway,
            request_id,
            None if oneway else self.address,
            self.address,
            _args_size(method, args),
        )
        if on_reply is not None:
            self._pending_replies[request_id] = on_reply

        interceptors = self.client_interceptors
        if interceptors:
            to_send = [request]
            for interceptor in interceptors:
                next_round: list[Request] = []
                for req in to_send:
                    next_round.extend(interceptor.outgoing(req, self))
                to_send = next_round
        else:
            to_send = (request,)

        for req in to_send:
            # Marshalling happens on the client CPU before transmission;
            # transmission itself is in invocation order.
            out_seq = self._out_seq
            self._out_seq += 1
            self.cpu.execute(self.costs.client_cost(req.size), self._marshal_done, out_seq, req)

    def _marshal_done(self, out_seq: int, request: Request) -> None:
        self._out_ready[out_seq] = request
        while self._out_next in self._out_ready:
            self._transmit(self._out_ready.pop(self._out_next))
            self._out_next += 1

    def _transmit(self, request: Request) -> None:
        if request.target.node == self.address:
            # Collocated call: no network hop, but dispatch still goes
            # through interceptors and the request pool.
            self._receive_request(request)
        else:
            self.network.send(self.address, request.target.node, request, size=request.size)

    # ------------------------------------------------------------------
    # network endpoint
    # ------------------------------------------------------------------
    def deliver(self, envelope: typing.Any) -> None:
        payload = envelope.payload
        if isinstance(payload, Request):
            self._receive_request(payload)
        elif isinstance(payload, _Reply):
            self._receive_reply(payload)
        else:
            raise TypeError(f"ORB {self.address} received non-ORB payload {payload!r}")

    def _receive_request(self, request: Request) -> None:
        current: Request | None = request
        for interceptor in self.server_interceptors:
            current = interceptor.incoming(current, self)
            if current is None:
                return
        servant = self._servants.get(current.target.key)
        if servant is None:
            raise ObjectNotFound(
                f"{self.address}: no servant {current.target.key!r} "
                f"for method {current.method!r}"
            )
        gate = self._gates.setdefault(current.target.key, _ServantGate())
        ticket = gate.issue()
        self.pool.acquire(
            lambda release, servant=servant, req=current, ticket=ticket, gate=gate: (
                self._unmarshal_in_thread(servant, req, gate, ticket, release)
            )
        )

    def _unmarshal_in_thread(self, servant, request, gate, ticket, release) -> None:
        # Phase 1: unmarshal on the CPU (may overlap with other requests).
        self.cpu.execute(
            self.costs.server_cost(request.size),
            self._enter_gate,
            servant,
            request,
            gate,
            ticket,
            release,
        )

    def _enter_gate(self, servant, request, gate, ticket, release) -> None:
        # Phase 2: wait for the servant's single thread, in ticket order.
        gate.ready[ticket] = (servant, request, release)
        self._pump_gate(gate)

    def _pump_gate(self, gate: _ServantGate) -> None:
        if gate.running or gate.next_to_run not in gate.ready:
            return
        servant, request, release = gate.ready.pop(gate.next_to_run)
        gate.next_to_run += 1
        gate.running = True
        # Phase 3: the servant's own processing time, serialised.
        self.cpu.execute(
            servant.invocation_cost(request), self._run_handler, servant, request, gate, release
        )

    def _run_handler(self, servant, request, gate, release) -> None:
        gate.running = False
        release()
        self._pump_gate(gate)
        self._dispatch(servant, request)

    def _dispatch(self, servant: Servant, request: Request) -> None:
        self.requests_dispatched += 1
        handler = getattr(servant, request.method, None)
        if handler is None:
            raise ObjectNotFound(
                f"{request.target}: servant has no method {request.method!r}"
            )
        result = handler(*request.args)
        if not request.oneway and request.reply_to is not None:
            reply = _Reply(
                request_id=request.request_id,
                result=result,
                size=HEADER_BYTES + (wire_size(result) - HEADER_BYTES if result is not None else 0),
            )
            if request.reply_to == self.address:
                self.sim.schedule(0.0, self._receive_reply, reply)
            else:
                self.network.send(self.address, request.reply_to, reply, size=reply.size)

    def _receive_reply(self, reply: _Reply) -> None:
        callback = self._pending_replies.pop(reply.request_id, None)
        if callback is None:
            return  # duplicate or cancelled
        self.cpu.execute(self.costs.unmarshal_cost(reply.size), callback, reply.result)
