"""Portable request interceptors.

The FS extension's transparency trick (section 3.1) is interceptor-based,
"very similar to the one used in the Eternal system": calls to the
wrapped GC object are caught on the fly and re-targeted at the wrapper
pair; double-signed replies are caught, verified, stripped and
de-duplicated before the Invocation layer sees them.

* A **client interceptor** sees each outgoing request and returns the
  list of requests to actually issue -- it can pass through, rewrite,
  fan out (one request to both FSO replicas) or absorb.
* A **server interceptor** sees each incoming request before dispatch
  and returns the request to deliver, possibly rewritten, or ``None``
  to absorb it (duplicate suppression).
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:
    from repro.corba.orb import Orb, Request


class ClientInterceptor:
    """Base client-side interceptor: passes every request through."""

    def outgoing(self, request: "Request", orb: "Orb") -> list["Request"]:
        """Map one outgoing request to the requests actually sent."""
        return [request]


class ServerInterceptor:
    """Base server-side interceptor: passes every request through."""

    def incoming(self, request: "Request", orb: "Orb") -> "Request | None":
        """Filter/rewrite one incoming request; ``None`` absorbs it."""
        return request
