"""ORB-layer exceptions."""


class CorbaError(Exception):
    """Base class for ORB failures."""


class MarshalError(CorbaError):
    """A value could not be marshalled or a byte stream decoded."""


class ObjectNotFound(CorbaError):
    """An invocation targeted an object key with no registered servant."""
