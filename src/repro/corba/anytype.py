"""The CORBA generic ``any`` type.

NewTOP's Invocation service "marshals a multicast message ... into a
generic CORBA type any" before handing it to the group communication
service, and the destination Invocation service unmarshals it back.  We
reproduce that boundary: an :class:`Any` carries the marshalled bytes
plus a type code, and extraction genuinely decodes the bytes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.corba.marshal import marshal, unmarshal


def _typecode_of(value: typing.Any) -> str:
    if value is None:
        return "tk_null"
    if isinstance(value, bool):
        return "tk_boolean"
    if isinstance(value, int):
        return "tk_longlong"
    if isinstance(value, float):
        return "tk_double"
    if isinstance(value, str):
        return "tk_string"
    if isinstance(value, (bytes, bytearray)):
        return "tk_octet_sequence"
    if isinstance(value, (list, tuple)):
        return "tk_sequence"
    if isinstance(value, dict):
        return "tk_struct"
    return "tk_value"


@dataclasses.dataclass(frozen=True, slots=True)
class Any:
    """A self-describing marshalled value."""

    typecode: str
    data: bytes

    @classmethod
    def wrap(cls, value: typing.Any) -> "Any":
        """Marshal ``value`` into an ``any``."""
        return cls(typecode=_typecode_of(value), data=marshal(value))

    def extract(self) -> typing.Any:
        """Decode the carried value."""
        return unmarshal(self.data)

    @property
    def wire_size(self) -> int:
        """Size used for network accounting: payload plus the typecode."""
        return len(self.data) + len(self.typecode)

    def __repr__(self) -> str:
        return f"<Any {self.typecode} {len(self.data)}B>"
