"""Simulated CPU costs of ORB request handling.

Calibrated against the paper's testbed (Java 1.4 ORB on dual Pentium
III): a small-message oneway dispatch costs on the order of a
millisecond, with marshalling linear in message size.  Together with
:class:`repro.crypto.CryptoCostModel` these constants set the *ratio*
between protocol-processing and signing work, which is what determines
the FS-NewTOP : NewTOP overhead ratios of Figures 6-8; the defaults are
chosen so a 10-member NewTOP group saturates around the paper's ~140
ordered messages/second.  The marshalling slope is what the Figure 8
message-size sweep exercises.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class OrbCostModel:
    """Per-request virtual CPU costs, in milliseconds."""

    dispatch_base_ms: float = 1.2
    marshal_ms_per_kb: float = 0.25
    unmarshal_ms_per_kb: float = 0.25

    def marshal_cost(self, size_bytes: int) -> float:
        return self.marshal_ms_per_kb * (size_bytes / 1024.0)

    def unmarshal_cost(self, size_bytes: int) -> float:
        return self.unmarshal_ms_per_kb * (size_bytes / 1024.0)

    def server_cost(self, size_bytes: int) -> float:
        """CPU charged to dispatch one incoming request."""
        return self.dispatch_base_ms + self.unmarshal_cost(size_bytes)

    def client_cost(self, size_bytes: int) -> float:
        """CPU charged to issue one outgoing request."""
        return self.marshal_cost(size_bytes)
