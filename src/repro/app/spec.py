"""Declarative description of the replicated KV application.

An :class:`AppSpec` on a :class:`~repro.experiments.spec.ScenarioSpec`
switches on the application layer: the runner builds one
:class:`~repro.app.runtime.AppMember` per group member, each applying
the member's totally-ordered delivery feed to a deterministic
:class:`~repro.app.kvstore.KvStore`, emitting signed checkpoints every
``checkpoint_every`` applied operations, and serving state transfer to
recovering members (see :mod:`repro.app.recovery`).

Like every other spec it is a value: picklable for the campaign pool,
JSON round-trippable for the result store, Hypothesis-safe.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class AppSpec:
    """Knobs of the replicated KV application.

    * ``checkpoint_every`` -- applied operations between signed
      checkpoints (the low-water mark advances in these strides);
    * ``retain_checkpoints`` -- checkpoint boundaries (snapshots and
      signed certificates) each member keeps; everything older is
      retired, which is what bounds holdback/dedup/oplog memory;
    * ``transfer_delay_ms`` -- simulated duration of one state
      transfer, so adversaries can strike *during* recovery;
    * ``recovery_deadline_ms`` -- how long after ``recover-start`` the
      state-consistency oracle allows before flagging a stuck recovery
      (``None`` = use the audit's detection deadline).
    """

    checkpoint_every: int = 8
    retain_checkpoints: int = 4
    transfer_delay_ms: float = 50.0
    recovery_deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.retain_checkpoints < 1:
            raise ValueError(
                f"retain_checkpoints must be >= 1, got {self.retain_checkpoints}"
            )
        if self.transfer_delay_ms < 0:
            raise ValueError(
                f"transfer_delay_ms must be >= 0, got {self.transfer_delay_ms}"
            )
        if self.recovery_deadline_ms is not None and self.recovery_deadline_ms <= 0:
            raise ValueError(
                f"recovery_deadline_ms must be > 0, got {self.recovery_deadline_ms}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AppSpec":
        return cls(**data)
