"""The deterministic replicated key-value state machine.

A :class:`KvStore` is what the ordering guarantees exist *for*: each
member applies its totally-ordered delivery feed, operation by
operation, so any two correct members that applied the same sequence
hold byte-identical state.  Determinism is load-bearing twice over --
the state digest is the cross-member consistency evidence the
:class:`~repro.invariants.oracles.StateConsistencyOracle` audits, and
recovery (snapshot + replay) only converges because replaying the same
operations rebuilds the same bytes.

Two digests ride on every store:

* ``digest()`` -- the canonical digest of the current *state* (data,
  per-key version counters, applied-op count);
* ``hist`` -- a rolling digest of the applied *history* (the chain of
  delivered message keys).  Equal histories imply equal op sequences,
  so "equal ``hist`` => equal ``digest()``" is a machine-checkable
  determinism invariant -- divergence at the same history is protocol
  evidence of a corrupted (or forged) store.
"""

from __future__ import annotations

import typing

from repro.crypto import canonical_encode, md5_hexdigest

#: Operation kinds the store applies.
OP_KINDS = ("put", "del", "cas", "get")

#: The history chain's genesis value (no operations applied).
GENESIS_HIST = md5_hexdigest(b"repro.app genesis")


def _explicit_op(container: typing.Any) -> dict | None:
    """A well-formed ``"op"`` field of ``container``, if any."""
    if not isinstance(container, dict):
        return None
    op = container.get("op")
    if isinstance(op, dict) and op.get("t") in OP_KINDS and "k" in op:
        return op
    return None


def synthesize_op(value: typing.Any, msg_key: str) -> dict:
    """Derive the KV operation a delivered payload drives.

    A payload carrying an explicit well-formed ``"op"`` field (the
    :class:`~repro.service.workload.ServiceWorkload` opt-in, and the
    tests') is taken verbatim -- at the top level, or nested under the
    gateway's payload envelope (``value["b"]``, where the gateway's own
    ``"op"`` field is the operation *id* string).  Any other payload is
    mapped onto a deterministic synthetic operation -- a function of
    the payload's own message key, so every member derives the *same*
    op from the same delivered message and the KV application can ride
    any totally-ordered feed without changing workload schedules.
    """
    if isinstance(value, dict):
        op = _explicit_op(value)
        if op is None:
            op = _explicit_op(value.get("b"))
        if op is not None:
            return op
        key = value.get("k")
        if not isinstance(key, str):
            key = f"k{int(msg_key[2:4], 16) % 16}"
    else:
        key = f"k{int(msg_key[2:4], 16) % 16}"
    # Mostly writes, with a deterministic sprinkling of deletes so the
    # store exercises removal and version-counter monotonicity.
    if int(msg_key[:2], 16) % 7 == 0:
        return {"t": "del", "k": key}
    return {"t": "put", "k": key, "v": msg_key[:8]}


class KvStore:
    """A deterministic get/put/del/cas store with version counters.

    ``versions`` counts *mutations* per key (puts, deletes and
    successful cas), never resetting on delete -- the monotonic counter
    is what compare-and-swap conditions on.  ``seq`` counts applied
    operations (reads included: applying is what advances the history
    chain, not mutating).
    """

    def __init__(self) -> None:
        self.data: dict[str, typing.Any] = {}
        self.versions: dict[str, int] = {}
        self.seq = 0
        self.hist = GENESIS_HIST

    # ------------------------------------------------------------------
    # applying operations
    # ------------------------------------------------------------------
    def apply(self, op: dict, msg_key: str) -> bool:
        """Apply one delivered operation; return whether it mutated.

        ``msg_key`` is the delivered message's stable identity (see
        :func:`repro.newtop.invocation.message_key`); it is folded into
        the history chain so ``hist`` names the exact delivery sequence
        this state was built from.
        """
        kind = op.get("t")
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}, want one of {OP_KINDS}")
        key = op["k"]
        mutated = False
        if kind == "put":
            mutated = self._write(key, op.get("v"))
        elif kind == "del":
            if key in self.data:
                del self.data[key]
                self.versions[key] = self.versions.get(key, 0) + 1
                mutated = True
        elif kind == "cas":
            # Succeeds iff the key's version counter matches the
            # expectation; a miss is a no-op (but still advances the
            # history -- the operation *was* applied, it just lost).
            if self.versions.get(key, 0) == op.get("expect", 0):
                mutated = self._write(key, op.get("v"))
        self.seq += 1
        self.hist = md5_hexdigest(self.hist.encode() + msg_key.encode())
        return mutated

    def _write(self, key: str, value: typing.Any) -> bool:
        self.data[key] = value
        self.versions[key] = self.versions.get(key, 0) + 1
        return True

    def get(self, key: str) -> typing.Any:
        return self.data.get(key)

    # ------------------------------------------------------------------
    # digests & snapshots
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """The canonical-encodable value ``digest()`` covers."""
        return {
            "data": self.data,
            "versions": self.versions,
            "seq": self.seq,
            "hist": self.hist,
        }

    def digest(self) -> str:
        """Canonical digest of the full current state."""
        return md5_hexdigest(canonical_encode(self.state()))

    def snapshot(self) -> dict:
        """A value-only copy sufficient to :meth:`restore` this state."""
        return {
            "data": dict(self.data),
            "versions": dict(self.versions),
            "seq": self.seq,
            "hist": self.hist,
        }

    def restore(self, snapshot: dict) -> None:
        self.data = dict(snapshot["data"])
        self.versions = dict(snapshot["versions"])
        self.seq = int(snapshot["seq"])
        self.hist = str(snapshot["hist"])


def snapshot_bytes(snapshot: dict) -> int:
    """Wire size of one snapshot (state-transfer accounting)."""
    return len(canonical_encode(snapshot))
