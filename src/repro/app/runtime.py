"""The application runtime: per-member stores wired to delivery feeds.

An :class:`AppRuntime` is built by the scenario runner whenever the
spec carries an :class:`~repro.app.spec.AppSpec`.  It registers one
application signing identity per member (``<member>.app``) in the
group's keystore, hooks every member's delivery feed (post-holdback on
sharded deployments) and runs one :class:`AppMember` each:

* every totally-ordered delivered payload becomes a KV operation
  (explicit ``"op"`` field or the deterministic synthesis in
  :func:`repro.app.kvstore.synthesize_op`) applied in delivery order;
* every ``checkpoint_every`` applied ops the member signs a
  :class:`~repro.app.checkpoint.Checkpoint` and gossips it to its
  group peers over a constant 1ms application channel (deterministic,
  and invisible to the ordering protocol -- the gossip rides
  ``sim.schedule``, not the group's network);
* an ``f + 1`` quorum of matching certificates advances the low-water
  mark, retiring oplog/dedup/certificate state below it;
* :meth:`AppRuntime.start_recovery` runs the crash-recover-rejoin flow
  (see :mod:`repro.app.recovery`).

Everything the runtime does is traced under the ``appstate`` category
(``apply`` / ``checkpoint`` / ``divergence`` / ``recover-start`` /
``recover-complete``), the stream the 8th oracle
(:class:`~repro.invariants.oracles.StateConsistencyOracle`) folds.
"""

from __future__ import annotations

import typing

from repro.app.checkpoint import Checkpoint, CheckpointLog
from repro.app.kvstore import KvStore, synthesize_op
from repro.app.recovery import RecoveryError, run_recovery
from repro.app.spec import AppSpec
from repro.invariants.oracles import TOTAL_SERVICES
from repro.newtop.invocation import message_key
from repro.obs import hub_of

if typing.TYPE_CHECKING:
    from repro.crypto.keystore import KeyStore
    from repro.transport.base import Clock

#: Application-level gossip delay (ms): constant and tiny, so the
#: checkpoint channel never perturbs -- or depends on -- the ordering
#: network's delay model, and sharded/unsharded runs stay differential.
GOSSIP_DELAY_MS = 1.0


class AppMember:
    """One member's application state: store, oplog, checkpoint log."""

    def __init__(
        self,
        runtime: "AppRuntime",
        member_id: str,
        signer,
        keystore: "KeyStore",
        peers: tuple[str, ...],
    ) -> None:
        self.runtime = runtime
        self.member_id = member_id
        self.signer = signer
        self.keystore = keystore
        self.peers = peers  # gossip targets: same-group members, self excluded
        spec = runtime.spec
        self.store = KvStore()
        self.log = CheckpointLog(keystore, retain=spec.retain_checkpoints)
        #: Replay suffix for recoverers: [(seq, msg_key, op)] above the
        #: low-water mark.
        self.oplog: list[tuple[int, str, dict]] = []
        #: Dedup memory: msg_key -> seq it was applied at.
        self.seen: dict[str, int] = {}
        #: Snapshots at recent checkpoint boundaries: seq -> snapshot.
        self.snapshots: dict[int, dict] = {}
        #: Own-emit times awaiting quorum (checkpoint latency histogram).
        self._emitted_at: dict[int, float] = {}
        self.checkpoints_emitted = 0
        self.quorums_formed = 0
        self.duplicates = 0
        self.stable_seq = 0
        self.recovered = False

    # ------------------------------------------------------------------
    # the delivery feed
    # ------------------------------------------------------------------
    def on_delivery(self, message) -> None:
        """Apply one delivered message (the hooked feed calls this)."""
        if message.service not in TOTAL_SERVICES:
            return  # reads / reliable traffic never mutate the store
        msg_key = message_key(message.sender, message.value)
        if msg_key in self.seen:
            # A duplicate totally-ordered delivery is itself a protocol
            # violation (the total-order oracle flags it); the store
            # stays deterministic by refusing the re-apply.
            self.duplicates += 1
            self._trace("duplicate", key=msg_key, seq=self.store.seq)
            return
        op = synthesize_op(message.value, msg_key)
        self.store.apply(op, msg_key)
        seq = self.store.seq
        self.seen[msg_key] = seq
        self.oplog.append((seq, msg_key, op))
        self.runtime.ops_applied += 1
        self._trace("apply", key=msg_key, seq=seq)
        if seq % self.runtime.spec.checkpoint_every == 0:
            self.emit_checkpoint()

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def emit_checkpoint(self) -> Checkpoint:
        """Sign the current state and gossip the certificate."""
        sim = self.runtime.sim
        checkpoint = Checkpoint(
            member=self.member_id,
            seq=self.store.seq,
            digest=self.store.digest(),
            hist=self.store.hist,
        )
        signed = self.signer.sign_payload(checkpoint.payload())
        self.snapshots[checkpoint.seq] = self.store.snapshot()
        self.checkpoints_emitted += 1
        self._emitted_at.setdefault(checkpoint.seq, sim.now)
        self._trace(
            "checkpoint",
            seq=checkpoint.seq,
            digest=checkpoint.digest,
            hist=checkpoint.hist,
        )
        self.receive_checkpoint(signed)  # own certificate counts
        for peer in self.peers:
            sim.schedule(
                GOSSIP_DELAY_MS,
                self.runtime.members[peer].receive_checkpoint,
                signed,
            )
        return checkpoint

    def receive_checkpoint(self, signed) -> None:
        checkpoint = self.log.add(signed)
        if checkpoint is None:
            return  # bad signature / garbage: dropped, counted
        self._check_divergence(checkpoint)
        quorum = self.log.quorum_at(checkpoint.seq, self.runtime.fault_budget)
        if quorum is not None:
            self._on_quorum(checkpoint.seq)

    def _check_divergence(self, checkpoint: Checkpoint) -> None:
        """Same history, different digest = hard evidence of a broken
        store (determinism says the bytes are a function of the
        history).  Traced like double-sign evidence."""
        for signed in self.log._by_seq.get(checkpoint.seq, {}).values():
            other = Checkpoint.from_payload(signed.payload)
            if other.member == checkpoint.member:
                continue
            if other.hist == checkpoint.hist and other.digest != checkpoint.digest:
                self._trace(
                    "divergence",
                    seq=checkpoint.seq,
                    members=sorted((checkpoint.member, other.member)),
                )

    def _on_quorum(self, seq: int) -> None:
        emitted = self._emitted_at.pop(seq, None)
        if emitted is not None:
            self.quorums_formed += 1
            self.runtime.hub.app_checkpoint_ms.observe(self.runtime.sim.now - emitted)
        if seq <= self.stable_seq:
            return
        self.stable_seq = seq
        stride = self.runtime.spec.checkpoint_every
        low = self.log.advance_low_water(seq, stride)
        # Retire replay/dedup state below the mark: a recoverer restores
        # from a snapshot at or above it, so older entries are dead.
        if low:
            self.oplog = [entry for entry in self.oplog if entry[0] > low]
            self.seen = {k: s for k, s in self.seen.items() if s > low}
            for snap_seq in [s for s in self.snapshots if s < low]:
                del self.snapshots[snap_seq]
        self.runtime.note_footprint(self)

    # ------------------------------------------------------------------
    def _trace(self, event: str, **details) -> None:
        sim = self.runtime.sim
        if sim.trace.enabled:
            sim.trace.record(
                sim.now, "appstate", f"{self.member_id}.kv", event, **details
            )


class AppRuntime:
    """All members' application state plus run-level accounting."""

    def __init__(self, sim: "Clock", group: typing.Any, spec: AppSpec) -> None:
        self.sim = sim
        self.group = group
        self.spec = spec
        self.hub = hub_of(sim)
        self.members: dict[str, AppMember] = {}
        #: member -> same-group peer ids (gossip / donor scope).
        self._groups: dict[str, tuple[str, ...]] = {}
        self.crashed: set[str] = set()
        self.ops_applied = 0
        self.recoveries = 0
        self.replay_ops = 0
        self.transfer_bytes = 0
        self.oplog_peak = 0
        self.dedup_peak = 0
        self.log_peak = 0
        rng = sim.rng("app")
        for fs_group in self._fs_groups(group):
            keystore = fs_group.env.keystore
            member_ids = tuple(fs_group.member_ids)
            for member_id in member_ids:
                peers = tuple(m for m in member_ids if m != member_id)
                signer = keystore.new_signer(f"{member_id}.app", rng)
                self.members[member_id] = AppMember(
                    self, member_id, signer, keystore, peers
                )
                self._groups[member_id] = member_ids
        self._hook_deliveries(group)

    @staticmethod
    def _fs_groups(group: typing.Any) -> tuple:
        from repro.fsnewtop.system import ByzantineTolerantGroup
        from repro.shard.group import ShardedGroup

        if isinstance(group, ByzantineTolerantGroup):
            return (group,)
        if isinstance(group, ShardedGroup):
            return tuple(group.shard_groups)
        raise ValueError(
            "the KV application needs fail-signal groups (fs-newtop); "
            f"got {type(group).__name__}"
        )

    @property
    def fault_budget(self) -> int:
        """``f``: matching certificates needed beyond one's own word."""
        return max(1, (len(self.members) - 1) // 2)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _hook_deliveries(self, group: typing.Any) -> None:
        from repro.shard.group import ShardedGroup

        for member_id, app_member in self.members.items():
            if isinstance(group, ShardedGroup):
                # Post-holdback: cross-shard operations apply at their
                # barrier release, in the one global sequence order.
                target = group.agents[member_id]
            else:
                target = group.members[member_id].invocation
            target.on_deliver = self._chain(app_member, target.on_deliver)

    @staticmethod
    def _chain(app_member: AppMember, previous):
        def deliver(message):
            app_member.on_delivery(message)
            if previous is not None:
                previous(message)

        return deliver

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def mark_crashed(self, member_id: str) -> None:
        self.crashed.add(member_id)

    def start_recovery(self, member_id: str) -> None:
        """Run the crash-recover-rejoin flow for one member.

        Traced ``recover-start`` immediately; the verified state
        transfer lands ``transfer_delay_ms`` later (the window
        composable adversaries can strike inside).
        """
        member = self.members[member_id]
        donor = self._pick_donor(member_id)
        member._trace(
            "recover-start",
            donor=donor.member_id if donor is not None else None,
            at_seq=member.store.seq,
            deadline_ms=self.spec.recovery_deadline_ms,
        )
        if donor is None:
            member._trace("recover-failed", reason="no donor")
            return
        self.sim.schedule(
            self.spec.transfer_delay_ms, self._complete_recovery, member, donor
        )

    def _pick_donor(self, member_id: str) -> AppMember | None:
        """The most advanced same-group peer (deterministic tie-break).

        A peer whose *node* crashed still donates: state transfer is
        application-level, and its in-memory store is intact up to its
        crash point -- it is simply never the most advanced one.
        """
        candidates = [
            self.members[peer]
            for peer in self._groups[member_id]
            if peer != member_id
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda m: (m.store.seq, m.member_id))

    def _complete_recovery(self, member: AppMember, donor: AppMember) -> None:
        try:
            outcome = run_recovery(member, donor, self.fault_budget)
        except RecoveryError as exc:
            member._trace("recover-failed", reason=str(exc))
            return
        self.recoveries += 1
        self.replay_ops += outcome.replayed
        self.transfer_bytes += outcome.transfer_bytes
        self.hub.app_transfer_bytes.inc(outcome.transfer_bytes)
        member.recovered = True
        member._trace(
            "recover-complete",
            seq=member.store.seq,
            digest=member.store.digest(),
            replayed=outcome.replayed,
            bytes=outcome.transfer_bytes,
        )
        # Re-announce: the recovered member signs its rebuilt state, so
        # peers hold its certificate and the oracle can cross-check the
        # rebuilt digest like any other checkpoint.
        member.emit_checkpoint()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def note_footprint(self, member: AppMember) -> None:
        self.oplog_peak = max(self.oplog_peak, len(member.oplog))
        self.dedup_peak = max(self.dedup_peak, len(member.seen))
        self.log_peak = max(self.log_peak, len(member.log))

    def metrics(self) -> dict[str, float]:
        """Flattened ``app_*`` metrics for the runner's report."""
        for member in self.members.values():
            self.note_footprint(member)
        checkpoints = sum(m.checkpoints_emitted for m in self.members.values())
        return {
            "app_ops_applied": float(self.ops_applied),
            "app_checkpoints": float(checkpoints),
            "app_checkpoint_quorums": float(
                sum(m.quorums_formed for m in self.members.values())
            ),
            "app_recoveries": float(self.recoveries),
            "app_replay_ops": float(self.replay_ops),
            "app_transfer_bytes": float(self.transfer_bytes),
            "app_seq_max": float(
                max((m.store.seq for m in self.members.values()), default=0)
            ),
            "app_distinct_digests": float(
                len(
                    {
                        (m.store.seq, m.store.digest())
                        for m in self.members.values()
                        if m.member_id not in self.crashed or m.recovered
                    }
                )
            ),
            "app_oplog_peak": float(self.oplog_peak),
            "app_dedup_peak": float(self.dedup_peak),
            "app_checkpoint_log_peak": float(self.log_peak),
        }
