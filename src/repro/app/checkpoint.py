"""Signed checkpoints of the replicated KV application.

Every ``checkpoint_every`` applied operations a member signs
``(seq, state digest, history digest)`` with its application identity
(``<member>.app`` in the group's keystore) and gossips the signed
certificate to its peers.  Checkpoints serve three masters:

* **evidence** -- two validly signed checkpoints with the same history
  but different digests convict a member of running a corrupted (or
  forged) store, exactly like double-sign evidence convicts an
  equivocator;
* **recovery** -- ``f + 1`` matching certificates at one seq form a
  quorum a rejoining member can trust (at most ``f`` faulty members
  cannot forge one), the anchor of state transfer;
* **garbage collection** -- the latest quorum seq is the *low-water
  mark*: oplog suffixes, dedup entries and old certificates below it
  are retired, which is what keeps soak-run memory flat.
"""

from __future__ import annotations

import dataclasses

from repro.crypto.errors import UnknownSigner
from repro.crypto.keystore import KeyStore
from repro.crypto.signing import Signed


@dataclasses.dataclass(frozen=True, slots=True)
class Checkpoint:
    """One member's claim about its state at one applied-op count."""

    member: str
    seq: int
    digest: str
    hist: str

    def payload(self) -> dict:
        """The canonical-codec payload that gets signed."""
        return {
            "member": self.member,
            "seq": self.seq,
            "digest": self.digest,
            "hist": self.hist,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Checkpoint":
        return cls(
            member=str(payload["member"]),
            seq=int(payload["seq"]),
            digest=str(payload["digest"]),
            hist=str(payload["hist"]),
        )


class CheckpointLog:
    """One member's view of everyone's signed checkpoints.

    Certificates are verified before they land here, so quorum answers
    can be trusted to the fault budget.  The log retires whole seqs as
    the low-water mark advances (``retain`` quorum boundaries are
    kept), bounding its footprint regardless of run length.
    """

    def __init__(self, keystore: KeyStore, retain: int = 4) -> None:
        self.keystore = keystore
        self.retain = retain
        #: seq -> member -> verified signed certificate
        self._by_seq: dict[int, dict[str, Signed]] = {}
        self.low_water = 0
        self.rejected = 0

    def __len__(self) -> int:
        return sum(len(members) for members in self._by_seq.values())

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add(self, signed: Signed) -> Checkpoint | None:
        """Verify and file one certificate; ``None`` if it is garbage."""
        if not isinstance(signed.payload, dict):
            self.rejected += 1
            return None
        try:
            verified = self.keystore.check_signed(signed)
        except UnknownSigner:
            # An identity outside the group's PKI cannot vouch for
            # anything -- reject, don't crash the receiving member.
            verified = False
        if not verified:
            self.rejected += 1
            return None
        checkpoint = Checkpoint.from_payload(signed.payload)
        if checkpoint.seq < self.low_water:
            return checkpoint  # verified, but retired territory: not filed
        self._by_seq.setdefault(checkpoint.seq, {})[checkpoint.member] = signed
        return checkpoint

    # ------------------------------------------------------------------
    # quorum queries
    # ------------------------------------------------------------------
    def matching(self, seq: int) -> dict[tuple[str, str], list[Signed]]:
        """Certificates at ``seq`` grouped by the (digest, hist) they
        vouch for."""
        groups: dict[tuple[str, str], list[Signed]] = {}
        for signed in self._by_seq.get(seq, {}).values():
            checkpoint = Checkpoint.from_payload(signed.payload)
            groups.setdefault((checkpoint.digest, checkpoint.hist), []).append(signed)
        return groups

    def quorum_at(self, seq: int, f: int) -> tuple[Checkpoint, list[Signed]] | None:
        """The ``f + 1``-matching certificate set at ``seq``, if any."""
        for (digest, hist), certs in sorted(self.matching(seq).items()):
            if len(certs) >= f + 1:
                member = Checkpoint.from_payload(certs[0].payload).member
                return (
                    Checkpoint(member=member, seq=seq, digest=digest, hist=hist),
                    certs,
                )
        return None

    def latest_quorum(self, f: int) -> tuple[Checkpoint, list[Signed]] | None:
        """The highest-seq quorum the log currently holds."""
        for seq in sorted(self._by_seq, reverse=True):
            quorum = self.quorum_at(seq, f)
            if quorum is not None:
                return quorum
        return None

    # ------------------------------------------------------------------
    # retirement
    # ------------------------------------------------------------------
    def advance_low_water(self, stable_seq: int, stride: int) -> int:
        """Move the low-water mark under a newly stable seq.

        Keeps the last ``retain`` checkpoint boundaries (``stride``
        apart) below ``stable_seq`` and drops everything older.
        Returns the new low-water mark.
        """
        floor = max(0, stable_seq - self.retain * stride)
        if floor <= self.low_water:
            return self.low_water
        self.low_water = floor
        for seq in [s for s in self._by_seq if s < floor]:
            del self._by_seq[seq]
        return self.low_water
