"""The replicated key-value application riding the ordering layer.

This package is the answer to "ordered into *what*?": a deterministic
KV state machine per member (:mod:`repro.app.kvstore`), signed
checkpoints every K applied operations (:mod:`repro.app.checkpoint`),
and verified state transfer for crash-recover-rejoin
(:mod:`repro.app.recovery`), all assembled per run by
:class:`~repro.app.runtime.AppRuntime` when a scenario carries an
:class:`~repro.app.spec.AppSpec`.  The ``appstate`` trace stream it
emits is what the :class:`~repro.invariants.oracles.StateConsistencyOracle`
audits.  See docs/APPLICATION.md.
"""

from repro.app.checkpoint import Checkpoint, CheckpointLog
from repro.app.kvstore import GENESIS_HIST, KvStore, OP_KINDS, synthesize_op
from repro.app.recovery import RecoveryError, RecoveryOutcome, run_recovery
from repro.app.runtime import GOSSIP_DELAY_MS, AppMember, AppRuntime
from repro.app.spec import AppSpec

__all__ = [
    "AppMember",
    "AppRuntime",
    "AppSpec",
    "Checkpoint",
    "CheckpointLog",
    "GENESIS_HIST",
    "GOSSIP_DELAY_MS",
    "KvStore",
    "OP_KINDS",
    "RecoveryError",
    "RecoveryOutcome",
    "run_recovery",
    "synthesize_op",
]
