"""State transfer for rejoining members.

A member whose node crashed rejoins the *application* by rebuilding its
store from its peers -- the ordering protocol has already excluded the
pair (re-admitting the fail-signal wrapper itself is future work, see
docs/APPLICATION.md), so this layer answers the question the paper's
guarantees exist for: can a replica that lost everything catch back up
to provably correct state?

The flow, anchored entirely in signed evidence:

1. the recoverer reads the donor's checkpoint log and picks the
   highest seq with an ``f + 1``-matching certificate quorum *and* a
   donor snapshot whose digest matches the quorum's -- at most ``f``
   faulty members cannot fabricate that set, so the snapshot's claimed
   digest is trustworthy;
2. it re-verifies every certificate signature against its own keystore
   (trust the evidence, not the donor) and checks the snapshot's
   canonical digest really equals the quorum digest (the donor cannot
   substitute bytes under a valid certificate);
3. it restores the snapshot and replays the donor's oplog suffix up to
   the donor's latest checkpoint boundary, so the rebuilt state lands
   exactly on a seq other members have certified -- which is what lets
   the state-consistency oracle cross-check the recovery.

Transfer volume (snapshot + certificates + replay suffix, canonical
wire bytes) is accounted to the ``app_transfer_bytes`` metric and the
``repro_app_transfer_bytes_total`` counter.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.app.checkpoint import Checkpoint
from repro.crypto import canonical_encode, md5_hexdigest

if typing.TYPE_CHECKING:
    from repro.app.runtime import AppMember


class RecoveryError(RuntimeError):
    """State transfer could not produce a verified state."""


@dataclasses.dataclass(frozen=True, slots=True)
class RecoveryOutcome:
    """What one completed state transfer shipped and rebuilt."""

    anchor_seq: int
    target_seq: int
    replayed: int
    transfer_bytes: int


def _verified_anchor(
    member: "AppMember", donor: "AppMember", f: int
) -> tuple[Checkpoint, list, dict]:
    """The highest trustworthy (quorum, certificates, snapshot) triple."""
    for seq in sorted(donor.log._by_seq, reverse=True):
        quorum = donor.log.quorum_at(seq, f)
        if quorum is None:
            continue
        checkpoint, certs = quorum
        snapshot = donor.snapshots.get(seq)
        if snapshot is None:
            continue
        # Re-verify against the recoverer's *own* keystore: the donor
        # hands over evidence, not authority.
        if not all(member.keystore.check_signed(signed) for signed in certs):
            continue
        signers = {signed.signature.signer for signed in certs}
        if len(signers) < f + 1:
            continue
        if _state_digest(snapshot) != checkpoint.digest:
            raise RecoveryError(
                f"donor snapshot at seq {seq} does not hash to the "
                f"quorum digest {checkpoint.digest[:12]}..."
            )
        return checkpoint, certs, snapshot
    raise RecoveryError("no f+1-matching checkpoint quorum with a snapshot")


def _state_digest(snapshot: dict) -> str:
    """The state digest a store restored from ``snapshot`` would report."""
    state = {
        "data": snapshot["data"],
        "versions": snapshot["versions"],
        "seq": snapshot["seq"],
        "hist": snapshot["hist"],
    }
    return md5_hexdigest(canonical_encode(state))


def run_recovery(member: "AppMember", donor: "AppMember", f: int) -> RecoveryOutcome:
    """Rebuild ``member``'s store from ``donor``; raises on bad evidence."""
    checkpoint, certs, snapshot = _verified_anchor(member, donor, f)
    transfer_bytes = len(canonical_encode(snapshot))
    transfer_bytes += sum(len(canonical_encode(s.payload)) for s in certs)
    # Replay the donor's suffix to its latest *certified* boundary, so
    # the rebuilt state is comparable against peers' checkpoints.
    target_seq = max(
        (seq for seq in donor.snapshots if seq >= checkpoint.seq),
        default=checkpoint.seq,
    )
    suffix = [
        (seq, msg_key, op)
        for seq, msg_key, op in donor.oplog
        if checkpoint.seq < seq <= target_seq
    ]
    if suffix and suffix[-1][0] != target_seq:
        raise RecoveryError(
            f"donor oplog suffix ends at seq {suffix[-1][0]}, "
            f"short of the target boundary {target_seq}"
        )
    member.store.restore(snapshot)
    for seq, msg_key, op in suffix:
        member.store.apply(op, msg_key)
        member.seen[msg_key] = member.store.seq
        transfer_bytes += len(canonical_encode(op)) + len(msg_key)
    member.stable_seq = max(member.stable_seq, checkpoint.seq)
    if member.store.seq != target_seq:
        raise RecoveryError(
            f"replay landed at seq {member.store.seq}, wanted {target_seq}"
        )
    return RecoveryOutcome(
        anchor_seq=checkpoint.seq,
        target_seq=target_seq,
        replayed=len(suffix),
        transfer_bytes=transfer_bytes,
    )
