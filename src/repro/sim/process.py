"""Actor-style process base class.

Every protocol participant (a NewTOP GC object, an FSO wrapper, an
application client) subclasses :class:`Process`.  A process reacts to
delivered messages and timer expirations; it never blocks.  This is the
execution model that keeps the whole system deterministic.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.sim.events import EventHandle
if TYPE_CHECKING:
    from repro.transport.base import Clock


class Process:
    """A named, message-driven simulation actor.

    Subclasses override :meth:`on_message` (and optionally timer
    callbacks scheduled through :meth:`set_timer`).
    """

    def __init__(self, sim: Clock, name: str) -> None:
        self.sim = sim
        self.name = name
        self._timers: dict[str, EventHandle] = {}
        self._alive = True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Silently stop the process: pending timers are cancelled and
        future messages/timers are ignored.  Models an unannounced crash."""
        self._alive = False
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------
    # messaging (delivery side; sending goes through the network layer)
    # ------------------------------------------------------------------
    def deliver(self, message: Any) -> None:
        """Entry point used by links/networks to hand over a message."""
        if not self._alive:
            return
        self.on_message(message)

    def on_message(self, message: Any) -> None:
        raise NotImplementedError(f"{type(self).__name__} must implement on_message")

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def set_timer(self, tag: str, delay: float, *args: Any) -> None:
        """(Re)arm the named timer; it calls ``on_timer(tag, *args)``.

        Re-arming an existing tag cancels the previous instance, which is
        the behaviour wanted for heartbeat/retransmission timers.
        """
        self.cancel_timer(tag)
        handle = self.sim.schedule(delay, self._fire_timer, tag, args)
        self._timers[tag] = handle

    def cancel_timer(self, tag: str) -> bool:
        handle = self._timers.pop(tag, None)
        if handle is None:
            return False
        return handle.cancel()

    def has_timer(self, tag: str) -> bool:
        handle = self._timers.get(tag)
        return handle is not None and not handle.cancelled

    def _fire_timer(self, tag: str, args: tuple[Any, ...]) -> None:
        if not self._alive:
            return
        # Drop the handle first so on_timer may legitimately re-arm it.
        current = self._timers.get(tag)
        if current is not None and not current.cancelled:
            # A timer that was re-armed after this instant fired would
            # have been cancelled; reaching here means this is current.
            self._timers.pop(tag, None)
        self.on_timer(tag, *args)

    def on_timer(self, tag: str, *args: Any) -> None:
        raise NotImplementedError(f"{type(self).__name__} received timer {tag!r}")

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def trace(self, category: str, event: str, **details: Any) -> None:
        self.sim.trace.record(self.sim.now, category, self.name, event, **details)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} at t={self.sim.now:.3f}>"
