"""Deterministic discrete-event simulation kernel.

All protocol code in this repository runs on top of this kernel.  Time is
virtual and measured in **milliseconds** (floats).  Determinism is a hard
requirement (the paper's R1 demands deterministic state machines, and our
tests replay runs bit-for-bit), so:

* the event heap breaks ties on ``(time, priority, sequence-number)``,
  never on object identity;
* all randomness is drawn from named streams derived from the simulator
  seed (:meth:`Simulator.rng`);
* wall-clock time and global RNG state are never consulted.
"""

from repro.sim.errors import SimulationError, SimulationLimitExceeded
from repro.sim.events import Event, EventHandle
from repro.sim.process import Process
from repro.sim.resources import CpuResource, ResourceStats, ThreadPool
from repro.sim.scheduler import Simulator
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "CpuResource",
    "Event",
    "EventHandle",
    "Process",
    "ResourceStats",
    "SimulationError",
    "SimulationLimitExceeded",
    "Simulator",
    "ThreadPool",
    "TraceRecord",
    "TraceRecorder",
]
