"""Event objects and handles for the discrete-event scheduler."""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(slots=True)
class Event:
    """A scheduled callback, doubling as its own cancellation handle.

    Ordering is by ``(time, priority, seq)``.  ``seq`` is a global
    insertion counter, which makes the ordering total and deterministic:
    two events at the same instant fire in the order they were scheduled
    (unless ``priority`` says otherwise; lower fires first).

    Cancellation is lazy: the event stays in the heap but is skipped
    when popped.  This keeps cancellation O(1), which matters because
    timeout timers (the common case in the FS wrappers) are almost
    always cancelled before they fire.  The scheduler hands the event
    itself back as the handle -- one allocation per scheduling, not two.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None]
    args: tuple[Any, ...]
    cancelled: bool = False

    def cancel(self) -> bool:
        """Cancel the event.  Returns ``False`` if already cancelled."""
        if self.cancelled:
            return False
        self.cancelled = True
        return True

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


#: Historical name for the value :meth:`Simulator.schedule` returns.
#: The handle and the event are the same object now; the alias keeps
#: annotations and isinstance checks working.
EventHandle = Event
