"""Event objects and handles for the discrete-event scheduler."""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(slots=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, priority, seq)``.  ``seq`` is a global
    insertion counter, which makes the ordering total and deterministic:
    two events at the same instant fire in the order they were scheduled
    (unless ``priority`` says otherwise; lower fires first).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None]
    args: tuple[Any, ...]
    cancelled: bool = False

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


class EventHandle:
    """Cancellable reference to a scheduled event.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps cancellation O(1), which matters because timeout
    timers (the common case in the FS wrappers) are almost always
    cancelled before they fire.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Virtual time at which the event will fire (if not cancelled)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event.  Returns ``False`` if already cancelled."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True
