"""Node compute resources: CPUs and thread pools.

The paper's testbed was dual-processor PCs running a Java ORB with a
configurable request thread pool (default 10).  Figure 7's throughput
knee at group size ~10 is a queueing artefact of that pool, so we model
both layers explicitly:

* :class:`CpuResource` -- an *m*-server FCFS queue; jobs hold a core for
  their service time.
* :class:`ThreadPool` -- admission control in front of a CPU; a task
  occupies one thread from admission until its CPU work finishes, and
  tasks beyond the pool size wait in an unbounded FIFO queue.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import deque
from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.transport.base import Clock


@dataclasses.dataclass
class ResourceStats:
    """Aggregate utilisation counters for a CPU or thread pool."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    busy_time: float = 0.0
    total_queue_wait: float = 0.0
    max_queue_length: int = 0

    def mean_queue_wait(self) -> float:
        if self.jobs_completed == 0:
            return 0.0
        return self.total_queue_wait / self.jobs_completed

    def utilisation(self, elapsed: float, servers: int) -> float:
        if elapsed <= 0 or servers <= 0:
            return 0.0
        return self.busy_time / (elapsed * servers)


@dataclasses.dataclass(slots=True)
class _CpuJob:
    service_time: float
    callback: Callable[..., None]
    args: tuple[Any, ...]
    enqueued_at: float
    priority: int
    seq: int


class CpuResource:
    """An *m*-core processor: a multi-server queue with priorities.

    ``execute(service_time, callback)`` charges ``service_time`` ms of
    CPU work; ``callback`` fires when the work completes.  Within a
    priority class scheduling is FCFS; lower ``priority`` values run
    first when a core frees (non-preemptive).

    The priority lane exists for the fail-signal wrappers: the paper
    notes that "realizing A3 and A4 will require that the replicas be
    run with a high priority" (section 5) -- without it, replica-pair
    processing phases diverge behind ordinary ORB work and correct pairs
    emit fail-signals unnecessarily.
    """

    #: Priority used by FSO replica processing and signing work.
    HIGH_PRIORITY = -1

    def __init__(self, sim: Clock, cores: int = 1, name: str = "cpu") -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.sim = sim
        self.name = name
        self.cores = cores
        self.stats = ResourceStats()
        self._busy = 0
        self._seq = 0
        self._queue: list[tuple[tuple[int, int], _CpuJob]] = []

    @property
    def busy_cores(self) -> int:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def execute(
        self,
        service_time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> None:
        if service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {service_time}")
        job = _CpuJob(service_time, callback, args, self.sim.now, priority, self._seq)
        self._seq += 1
        self.stats.jobs_submitted += 1
        if self._busy < self.cores:
            self._start(job)
        else:
            heapq.heappush(self._queue, ((job.priority, job.seq), job))
            depth = len(self._queue)
            if depth > self.stats.max_queue_length:
                self.stats.max_queue_length = depth

    def _start(self, job: _CpuJob) -> None:
        self._busy += 1
        self.stats.total_queue_wait += self.sim.now - job.enqueued_at
        self.sim.schedule(job.service_time, self._finish, job)

    def _finish(self, job: _CpuJob) -> None:
        self._busy -= 1
        stats = self.stats
        stats.jobs_completed += 1
        stats.busy_time += job.service_time
        if self._queue:
            self._start(heapq.heappop(self._queue)[1])
        job.callback(*job.args)


@dataclasses.dataclass(slots=True)
class _PoolWaiter:
    callback: Callable[["ThreadRelease"], None]
    enqueued_at: float


class ThreadRelease:
    """Handle for giving a pool thread back; idempotent."""

    __slots__ = ("_pool", "_released", "_acquired_at")

    def __init__(self, pool: "ThreadPool", acquired_at: float) -> None:
        self._pool = pool
        self._released = False
        self._acquired_at = acquired_at

    def __call__(self) -> None:
        if self._released:
            return
        self._released = True
        self._pool._on_release(self._acquired_at)


class ThreadPool:
    """Bounded worker pool.

    Mirrors the ORB request pool of the paper's testbed: an incoming
    request needs a free thread before any of its work starts, and the
    thread is held until the request is *fully* processed (including any
    wait on the single-threaded servant it targets).  With more
    concurrent requests than threads, requests queue -- which is what
    caps throughput for group sizes beyond the pool size (Figure 7).

    Two APIs:

    * :meth:`acquire` -- grab a thread; the callback receives a release
      handle and decides when the thread is done (used by the ORB, whose
      requests span several CPU phases);
    * :meth:`submit` -- convenience: one CPU burst on ``cpu``, then an
      automatic release.
    """

    def __init__(
        self,
        sim: Clock,
        cpu: CpuResource,
        size: int = 10,
        name: str = "pool",
    ) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.sim = sim
        self.cpu = cpu
        self.size = size
        self.name = name
        self.stats = ResourceStats()
        self._active = 0
        self._queue: deque[_PoolWaiter] = deque()

    @property
    def active_threads(self) -> int:
        return self._active

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self, callback: Callable[[ThreadRelease], None]) -> None:
        """Request a thread; ``callback(release)`` runs once granted.
        Grants are strictly FIFO."""
        self.stats.jobs_submitted += 1
        waiter = _PoolWaiter(callback, self.sim.now)
        if self._active < self.size:
            self._grant(waiter)
        else:
            self._queue.append(waiter)
            self.stats.max_queue_length = max(self.stats.max_queue_length, len(self._queue))

    def submit(
        self,
        service_time: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        """Run ``service_time`` ms of CPU work inside a pool thread, then
        invoke ``callback(*args)`` and release the thread."""

        def run(release: ThreadRelease) -> None:
            self.cpu.execute(service_time, finish, release)

        def finish(release: ThreadRelease) -> None:
            release()
            callback(*args)

        self.acquire(run)

    def _grant(self, waiter: _PoolWaiter) -> None:
        self._active += 1
        self.stats.total_queue_wait += self.sim.now - waiter.enqueued_at
        waiter.callback(ThreadRelease(self, acquired_at=self.sim.now))

    def _on_release(self, acquired_at: float) -> None:
        self._active -= 1
        self.stats.jobs_completed += 1
        self.stats.busy_time += self.sim.now - acquired_at
        if self._queue:
            self._grant(self._queue.popleft())
