"""The discrete-event simulator."""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable

from repro.sim.errors import SchedulingInPastError, SimulationLimitExceeded
from repro.sim.events import Event, EventHandle
from repro.sim.trace import TraceRecorder


class Simulator:
    """Deterministic discrete-event scheduler with virtual time.

    Time is in milliseconds.  A single :class:`Simulator` instance drives
    one experiment: all nodes, links and protocol objects share it.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream (:meth:`rng`) is derived
        from it, so two simulators with the same seed and the same
        scheduling behaviour produce identical runs.
    trace:
        Optional pre-built trace recorder; a fresh one is created by
        default.
    """

    def __init__(self, seed: int = 0, trace: TraceRecorder | None = None) -> None:
        self._now = 0.0
        # Heap entries carry the sort key inline -- (time, priority,
        # seq, event) -- so pushes build one tuple and pops index into
        # it; ``seq`` is unique, so the Event itself is never compared.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._events_processed = 0
        self._seed = seed
        self._rng_streams: dict[str, random.Random] = {}
        self.trace = trace if trace is not None else TraceRecorder()

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, stream: str) -> random.Random:
        """Return the named deterministic RNG stream.

        Streams are created lazily and keyed by name, so the sequence a
        consumer sees depends only on the master seed, the stream name
        and that consumer's own draw order -- never on what other
        components do.
        """
        existing = self._rng_streams.get(stream)
        if existing is not None:
            return existing
        derived = random.Random(f"{self._seed}/{stream}")
        self._rng_streams[stream] = derived
        return derived

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        The construct-and-push body is deliberately duplicated with
        :meth:`schedule_at` (keep the two in sync): this is the hottest
        call in the simulator and a shared helper would put a function
        call back on every scheduling.
        """
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay!r}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args)
        heapq.heappush(self._heap, (time, priority, seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SchedulingInPastError(
                f"cannot schedule at {time!r}; current time is {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args)
        heapq.heappush(self._heap, (time, priority, seq, event))
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next non-cancelled event.

        Returns ``False`` when the heap is empty (nothing ran).
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Run events until the heap drains, ``until`` is reached, or the
        event budget is exhausted.

        ``until`` is inclusive: events scheduled exactly at ``until``
        fire, and the clock is advanced to ``until`` at the end even if
        the heap drained earlier (so timed experiments have a defined
        duration).
        """
        processed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                pop(heap)
                continue
            if until is not None and entry[0] > until:
                break
            pop(heap)
            self._now = event.time
            self._events_processed += 1
            processed += 1
            event.callback(*event.args)
            if max_events is not None and processed >= max_events:
                raise SimulationLimitExceeded(
                    f"processed {processed} events without reaching "
                    f"until={until!r}; likely a non-terminating protocol loop"
                )
        if until is not None and self._now < until:
            self._now = until

    def run_until_idle(self, max_events: int = 5_000_000) -> None:
        """Run until no events remain (with a runaway-protocol guard)."""
        self.run(until=None, max_events=max_events)
