"""Structured trace recording.

Traces serve two purposes: debugging protocol runs, and *determinism
checks* -- two runs with the same seed must produce byte-identical trace
fingerprints (property-tested in ``tests/sim``).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Callable, Iterator


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: what happened, where, and when."""

    time: float
    category: str
    source: str
    event: str
    details: tuple[tuple[str, Any], ...] = ()

    def detail(self, key: str, default: Any = None) -> Any:
        for name, value in self.details:
            if name == key:
                return value
        return default

    def render(self) -> str:
        detail_text = " ".join(f"{k}={v!r}" for k, v in self.details)
        return f"[{self.time:12.3f}] {self.category:<12} {self.source:<24} {self.event} {detail_text}".rstrip()


def _record_disabled(*args: Any, **details: Any) -> None:
    """Bound in place of :meth:`TraceRecorder.record` while disabled, so
    a muted-for-measurement run pays one no-op call and nothing else."""
    return None


class TraceRecorder:
    """Append-only event trace with category filtering.

    Recording every event of a large run is memory-heavy, so categories
    can be muted; benchmarks run with everything muted, protocol tests
    enable what they assert on.  Setting ``enabled = False`` swaps the
    ``record`` method for a no-op on the instance, making the disabled
    recorder effectively free on the hot path.

    ``store = False`` keeps the recorder *live* (listeners still see
    every record) but skips storage entirely -- the mode audit runs use:
    online invariant oracles consume the stream while memory stays flat.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._records: list[TraceRecord] = []
        self._muted: set[str] = set()
        self._listeners: list[Callable[[TraceRecord], None]] = []
        self._enabled = True
        self.store = True
        self.enabled = enabled

    @classmethod
    def disabled(cls) -> "TraceRecorder":
        """A recorder built switched off (measurement runs)."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, flag: bool) -> None:
        flag = bool(flag)
        self._enabled = flag
        if flag:
            self.__dict__.pop("record", None)
        else:
            self.__dict__["record"] = _record_disabled

    def mute(self, *categories: str) -> None:
        self._muted.update(categories)

    def unmute(self, *categories: str) -> None:
        self._muted.difference_update(categories)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every record (even when muted
        categories suppress storage).  Used by live metrics collectors."""
        self._listeners.append(listener)

    def record(
        self,
        time: float,
        category: str,
        source: str,
        event: str,
        **details: Any,
    ) -> None:
        entry = TraceRecord(
            time=time,
            category=category,
            source=source,
            event=event,
            details=tuple(sorted(details.items())),
        )
        for listener in self._listeners:
            listener(entry)
        if not self.store or category in self._muted:
            return
        self._records.append(entry)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def select(
        self,
        category: str | None = None,
        source: str | None = None,
        event: str | None = None,
    ) -> list[TraceRecord]:
        """Filter records by exact category/source/event match."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if source is not None and rec.source != source:
                continue
            if event is not None and rec.event != event:
                continue
            out.append(rec)
        return out

    def fingerprint(self) -> str:
        """Deterministic digest of the full trace (for replay tests)."""
        digest = hashlib.sha256()
        for rec in self._records:
            digest.update(rec.render().encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def render(self, limit: int | None = None) -> str:
        rows = self._records if limit is None else self._records[:limit]
        return "\n".join(rec.render() for rec in rows)
