"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level failures."""


class SimulationLimitExceeded(SimulationError):
    """Raised when a run exceeds its configured event or time budget.

    This is the kernel's guard against protocol bugs that generate
    unbounded message storms; hitting it in a test almost always means a
    retransmission or timeout loop is not terminating.
    """


class SchedulingInPastError(SimulationError):
    """Raised when an event is scheduled before the current virtual time."""
