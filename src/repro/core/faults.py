"""Byzantine fault injection for fail-signal pairs.

The paper's failure model: at most one node of a pair develops faults of
*authenticated Byzantine* type (A1) -- arbitrary behaviour, bounded only
by the inability to forge the correct node's signatures (A5).  This
module provides an FSO subclass whose behaviour is governed by a mutable
:class:`FaultPlan`, covering the concrete manifestations the paper's
argument has to survive:

* wrong results (``corrupt_outputs``) -- caught by output comparison;
* no/late results (``drop_singles``, ``mute_lan``) -- caught by the
  section 2.2 timeouts;
* wrong input order at a faulty leader (``scramble_order``) -- caught
  because out-of-order processing manifests as an output mismatch
  (Appendix A, last paragraph);
* forged signatures (``forge_signature``) -- rejected by verification;
* spontaneous fail-signals (``arbitrary_signal``) -- failure mode fs2,
  legal by definition.
"""

from __future__ import annotations

import dataclasses

from repro.core.fso import Fso
from repro.core.messages import FsInput, SingleSigned
from repro.crypto.signing import Signature, Signed


@dataclasses.dataclass
class FaultPlan:
    """Which misbehaviours are active.  All off by default."""

    corrupt_outputs: bool = False
    drop_singles: bool = False
    mute_lan: bool = False
    scramble_order: bool = False
    forge_signature: bool = False

    def any_active(self) -> bool:
        return any(
            (
                self.corrupt_outputs,
                self.drop_singles,
                self.mute_lan,
                self.scramble_order,
                self.forge_signature,
            )
        )


class ByzantineFso(Fso):
    """An FSO on a faulty node.

    The fault plan may be switched on mid-run (nodes are correct when
    paired, A1; faults develop later).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.faults = FaultPlan()
        self._held_input: FsInput | None = None

    # -- wrong results -------------------------------------------------
    def _handle_output(self, seq: int, idx: int, request, pi: float) -> None:
        if self.faults.corrupt_outputs:
            request = dataclasses.replace(
                request, args=request.args + ("#corrupted-by-faulty-node",)
            )
        super()._handle_output(seq, idx, request, pi)

    # -- no results ------------------------------------------------------
    def _lan_send(self, payload) -> None:
        if self.faults.mute_lan:
            return
        if self.faults.drop_singles and isinstance(payload, SingleSigned):
            return
        if self.faults.forge_signature and isinstance(payload, SingleSigned):
            forged = SingleSigned(
                signed=Signed(
                    payload=payload.signed.payload,
                    signature=Signature(payload.signed.signature.signer, b"\x00" * 32),
                )
            )
            super()._lan_send(forged)
            return
        super()._lan_send(payload)

    # -- wrong order (faulty leader) -------------------------------------
    def _order_input(self, fs_input: FsInput) -> None:
        if not self.faults.scramble_order:
            super()._order_input(fs_input)
            return
        # Process inputs pairwise swapped locally, while telling the
        # follower the original order: the replicas then process
        # different sequences and their outputs mismatch.
        if self._held_input is None:
            self._held_input = fs_input
            return
        first, second = self._held_input, fs_input
        self._held_input = None
        # Local processing order: second, first.
        seq_a = self._next_seq
        seq_b = self._next_seq + 1
        self._next_seq += 2
        self.inputs_ordered += 2
        self._ordered_ids.update((first.input_id, second.input_id))
        self._submitted_at[seq_a] = self.sim.now
        self._submitted_at[seq_b] = self.sim.now
        self._dmq.append((seq_a, second))
        self._dmq.append((seq_b, first))
        # Follower is told the honest order.
        from repro.core.messages import OrderedInput

        super()._lan_send(OrderedInput(seq=seq_a, input=first))
        super()._lan_send(OrderedInput(seq=seq_b, input=second))
        self._pump_processing()

    # -- fs2 --------------------------------------------------------------
    def go_byzantine(self, **flags: bool) -> None:
        """Switch fault modes on, e.g. ``go_byzantine(corrupt_outputs=True)``."""
        for name, value in flags.items():
            if not hasattr(self.faults, name):
                raise AttributeError(f"unknown fault {name!r}")
            setattr(self.faults, name, value)
