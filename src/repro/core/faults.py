"""Byzantine fault injection for fail-signal pairs.

The paper's failure model: at most one node of a pair develops faults of
*authenticated Byzantine* type (A1) -- arbitrary behaviour, bounded only
by the inability to forge the correct node's signatures (A5).  This
module provides an FSO subclass whose behaviour is governed by a mutable
:class:`FaultPlan`, covering the concrete manifestations the paper's
argument has to survive:

* wrong results (``corrupt_outputs``) -- caught by output comparison;
* no/late results (``drop_singles``, ``mute_lan``) -- caught by the
  section 2.2 timeouts;
* wrong input order at a faulty leader (``scramble_order``) -- caught
  because out-of-order processing manifests as an output mismatch
  (Appendix A, last paragraph);
* forged signatures (``forge_signature``) -- rejected by verification;
* equivocation (``equivocate``) -- the faulty Compare double-sends
  conflicting signed candidates for the same slot; the peer holds
  double-sign evidence and signals;
* replay (``replay_singles``) -- the faulty Compare re-sends a stale
  signed candidate instead of the current one; the stale copy pairs
  with nothing and the live comparison times out;
* spontaneous fail-signals (``arbitrary_signal``) -- failure mode fs2,
  legal by definition.

Every *manifestation* (a message actually dropped, corrupted, forged,
replayed...) is recorded under the ``fault`` trace category, so the
:mod:`repro.invariants` oracles can check detection against what the
adversary really did rather than what it was configured to do.
"""

from __future__ import annotations

import dataclasses

from repro.core.fso import Fso
from repro.core.messages import BatchSingle, FsInput, OutputBatch, SingleSigned
from repro.crypto.signing import Signature, Signed


@dataclasses.dataclass
class FaultPlan:
    """Which misbehaviours are active.  All off by default."""

    corrupt_outputs: bool = False
    drop_singles: bool = False
    mute_lan: bool = False
    scramble_order: bool = False
    forge_signature: bool = False
    equivocate: bool = False
    replay_singles: bool = False

    def any_active(self) -> bool:
        return any(
            (
                self.corrupt_outputs,
                self.drop_singles,
                self.mute_lan,
                self.scramble_order,
                self.forge_signature,
                self.equivocate,
                self.replay_singles,
            )
        )

    def flag_names(self) -> tuple[str, ...]:
        """All flag names, in declaration order."""
        return tuple(f.name for f in dataclasses.fields(self))


class ByzantineFso(Fso):
    """An FSO on a faulty node.

    The fault plan may be switched on mid-run (nodes are correct when
    paired, A1; faults develop later).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.faults = FaultPlan()
        self._held_input: FsInput | None = None
        self._stale_single: SingleSigned | BatchSingle | None = None

    # -- wrong results -------------------------------------------------
    def _handle_output(self, seq: int, idx: int, request, pi: float) -> None:
        if self.faults.corrupt_outputs:
            request = dataclasses.replace(
                request, args=request.args + ("#corrupted-by-faulty-node",)
            )
            self.trace("fault", "corrupted-output", seq=seq, idx=idx)
        super()._handle_output(seq, idx, request, pi)

    # -- no/late/conflicting results --------------------------------------
    def _lan_send(self, payload) -> None:
        if self.faults.mute_lan:
            self.trace("fault", "muted", kind=type(payload).__name__)
            return
        if isinstance(payload, (SingleSigned, BatchSingle)):
            if self.faults.drop_singles:
                self.trace("fault", "dropped-single")
                return
            if self.faults.forge_signature:
                forged_signed = Signed(
                    payload=payload.signed.payload,
                    signature=Signature(
                        payload.signed.signature.signer, b"\x00" * 32
                    ),
                )
                self.trace("fault", "forged-single")
                super()._lan_send(type(payload)(signed=forged_signed))
                return
            if self.faults.replay_singles:
                if self._stale_single is not None:
                    # Re-send the stale candidate instead of the live one:
                    # the peer's live comparison starves and times out.
                    self.trace(
                        "fault",
                        "replayed-single",
                        stale=self._stale_correlation(self._stale_single),
                    )
                    super()._lan_send(self._stale_single)
                    return
                self._stale_single = payload  # first one passes, is remembered
            if self.faults.equivocate:
                # Double-send: a conflicting candidate, genuinely signed
                # with our own key (A5 allows signing anything *as
                # ourselves*), followed by the honest one.  The peer now
                # holds two validly signed, conflicting candidates for
                # one slot -- double-sign evidence.
                super()._lan_send(self._equivocated_copy(payload))
                # fall through: the honest single follows on the FIFO link
        super()._lan_send(payload)

    def _stale_correlation(self, stale) -> list:
        inner = stale.signed.payload
        if isinstance(inner, OutputBatch):
            return list(inner.outputs[0].correlation) if inner.outputs else []
        return list(inner.correlation)

    def _equivocated_copy(self, payload):
        """A validly self-signed candidate whose content conflicts with
        the honest one for the same slot(s)."""
        inner = payload.signed.payload
        if isinstance(inner, OutputBatch):
            tampered_outputs = tuple(
                dataclasses.replace(o, args=o.args + ("#equivocated",))
                for o in inner.outputs
            )
            tampered_batch = dataclasses.replace(inner, outputs=tampered_outputs)
            first = inner.outputs[0].correlation if inner.outputs else (-1, -1)
            self.trace("fault", "equivocated-single", corr=list(first))
            return BatchSingle(signed=self.signer.sign_payload(tampered_batch))
        tampered = dataclasses.replace(inner, args=inner.args + ("#equivocated",))
        self.trace("fault", "equivocated-single", corr=list(inner.correlation))
        return SingleSigned(signed=self.signer.sign_payload(tampered))

    # -- wrong order (faulty leader) -------------------------------------
    def _order_input(self, fs_input: FsInput) -> None:
        if not self.faults.scramble_order:
            super()._order_input(fs_input)
            return
        # Process inputs pairwise swapped locally, while telling the
        # follower the original order: the replicas then process
        # different sequences and their outputs mismatch.
        if self._held_input is None:
            self._held_input = fs_input
            self.trace("fault", "scramble-hold", input_id=list(fs_input.input_id))
            return
        first, second = self._held_input, fs_input
        self._held_input = None
        self.trace(
            "fault",
            "scrambled",
            first=list(first.input_id),
            second=list(second.input_id),
        )
        # Local processing order: second, first.
        seq_a = self._next_seq
        seq_b = self._next_seq + 1
        self._next_seq += 2
        self.inputs_ordered += 2
        self._ordered_ids.update((first.input_id, second.input_id))
        self._submitted_at[seq_a] = self.sim.now
        self._submitted_at[seq_b] = self.sim.now
        self._dmq.append((seq_a, second))
        self._dmq.append((seq_b, first))
        # Follower is told the honest order.
        from repro.core.messages import OrderedInput

        super()._lan_send(OrderedInput(seq=seq_a, input=first))
        super()._lan_send(OrderedInput(seq=seq_b, input=second))
        self._pump_processing()

    # -- fs2 --------------------------------------------------------------
    def go_byzantine(self, **flags: bool) -> None:
        """Switch fault modes on, e.g. ``go_byzantine(corrupt_outputs=True)``.

        Activation is traced (``adversary``/``activate``) so the
        invariant oracles learn, online, which pairs are *expected* to
        misbehave -- a fail-signal from anyone else is a false signal.
        """
        for name, value in flags.items():
            if not hasattr(self.faults, name):
                raise AttributeError(f"unknown fault {name!r}")
            setattr(self.faults, name, value)
        enabled = tuple(sorted(n for n, v in flags.items() if v))
        disabled = tuple(sorted(n for n, v in flags.items() if not v))
        if enabled:
            self.trace("adversary", "activate", flags=enabled)
        if disabled:
            self.trace("adversary", "deactivate", flags=disabled)
