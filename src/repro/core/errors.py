"""Fail-signal layer exceptions."""


class FsError(Exception):
    """Base class for fail-signal layer failures."""


class FsWiringError(FsError):
    """The FS pair was assembled inconsistently (configuration bug)."""
