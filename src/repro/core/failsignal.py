"""Assembly of a fail-signal process pair."""

from __future__ import annotations

from repro.corba.node import Node
from repro.corba.orb import ObjectRef, Servant
from repro.core.config import FsoConfig
from repro.core.errors import FsWiringError
from repro.core.fso import Fso, FsoRole
from repro.core.interception import FsCaptureInterceptor
from repro.core.messages import FailSignal, FsInput, FsRegistry
from repro.core.routes import FsRouteTable
from repro.crypto.keystore import KeyStore
from repro.net.links import SynchronousLink
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.transport.base import Clock


def _capture_interceptor_for(node: Node) -> FsCaptureInterceptor:
    """Get or install the node's single output-capture interceptor.

    It must sit first in the chain so that a wrapped replica's outputs
    are captured before any other interceptor (e.g. a fan-out) sees
    them."""
    for interceptor in node.orb.client_interceptors:
        if isinstance(interceptor, FsCaptureInterceptor):
            return interceptor
    interceptor = FsCaptureInterceptor()
    node.orb.client_interceptors.insert(0, interceptor)
    return interceptor


class FsProcess:
    """A wired fail-signal process: two FSOs over a synchronous LAN.

    Use :func:`make_fail_signal` (or
    :meth:`repro.core.transform.FsEnvironment.make_fail_signal`) rather
    than constructing this directly.
    """

    def __init__(
        self,
        sim: Clock,
        fs_id: str,
        leader: Fso,
        follower: Fso,
        link: SynchronousLink,
    ) -> None:
        self.sim = sim
        self.fs_id = fs_id
        self.leader = leader
        self.follower = follower
        self.link = link

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    @property
    def refs(self) -> list[ObjectRef]:
        """The two wrapper endpoints; inputs must reach both."""
        return [self.leader.ref, self.follower.ref]

    def set_signal_destinations(self, destinations: list[ObjectRef]) -> None:
        """Who gets the fail-signal: every entity that may be expecting a
        response from this FS process."""
        self.leader.signal_destinations = list(destinations)
        self.follower.signal_destinations = list(destinations)

    # ------------------------------------------------------------------
    # direct submission helper (used by tests and plain examples; the
    # FS-NewTOP stack uses the FanOutInterceptor instead)
    # ------------------------------------------------------------------
    def submit(self, from_node: Node, method: str, args: tuple, input_id: tuple) -> None:
        fs_input = FsInput(method=method, args=args, input_id=input_id)
        for ref in self.refs:
            from_node.orb.oneway(ref, "receiveNew", fs_input)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def signaled(self) -> bool:
        return self.leader.signaled or self.follower.signaled

    def crash_node(self, role: FsoRole) -> None:
        """Silently crash one of the pair's nodes (the fault the FS
        construction exists to convert into a signal)."""
        fso = self.leader if role is FsoRole.LEADER else self.follower
        fso.wrapped_node_crashed = True
        fso.kill()
        fso.node.crash()


def make_fail_signal(
    sim: Clock,
    fs_id: str,
    leader_node: Node,
    follower_node: Node,
    leader_replica: Servant,
    follower_replica: Servant,
    keystore: KeyStore,
    registry: FsRegistry,
    routes: FsRouteTable,
    config: FsoConfig | None = None,
    link: SynchronousLink | None = None,
    fso_class: type[Fso] = Fso,
    leader_fso_class: type[Fso] | None = None,
    follower_fso_class: type[Fso] | None = None,
) -> FsProcess:
    """Transform a deterministic replica pair into a fail-signal process.

    The replicas must be deterministic state machines (requirement R1)
    and must not have been activated yet; this function activates them
    under private keys, pairs the nodes over a synchronous LAN, creates
    and cross-signs the FSOs, and registers the pair's signer identities.
    """
    if leader_node is follower_node:
        raise FsWiringError(f"{fs_id}: the two replicas must be on distinct nodes (A1)")
    cfg = config if config is not None else FsoConfig()
    lan = link if link is not None else SynchronousLink(
        sim, f"{fs_id}/lan", delta=cfg.delta
    )

    rng = sim.rng(f"keys/{fs_id}")
    signer_a = keystore.new_signer(f"{fs_id}#A", rng)
    signer_b = keystore.new_signer(f"{fs_id}#B", rng)
    registry.register(fs_id, signer_a.identity, signer_b.identity)

    leader_node.activate(f"{fs_id}.target", leader_replica)
    follower_node.activate(f"{fs_id}.target", follower_replica)

    leader_cls = leader_fso_class if leader_fso_class is not None else fso_class
    follower_cls = follower_fso_class if follower_fso_class is not None else fso_class
    leader = leader_cls(
        sim=sim,
        node=leader_node,
        fs_id=fs_id,
        role=FsoRole.LEADER,
        wrapped=leader_replica,
        link=lan,
        signer=signer_a,
        keystore=keystore,
        registry=registry,
        config=cfg,
        routes=routes,
        capture_interceptor=_capture_interceptor_for(leader_node),
    )
    follower = follower_cls(
        sim=sim,
        node=follower_node,
        fs_id=fs_id,
        role=FsoRole.FOLLOWER,
        wrapped=follower_replica,
        link=lan,
        signer=signer_b,
        keystore=keystore,
        registry=registry,
        config=cfg,
        routes=routes,
        capture_interceptor=_capture_interceptor_for(follower_node),
    )

    # Start-up cross-signing: each Compare holds the fail-signal blank
    # already signed by the *other* Compare (section 2.1).
    blank = FailSignal(fs_id)
    leader.fail_signal_blank = signer_b.sign_payload(blank)
    follower.fail_signal_blank = signer_a.sign_payload(blank)

    leader_node.activate(f"{fs_id}.fso", leader)
    follower_node.activate(f"{fs_id}.fso", follower)
    lan.attach(leader_node.name, leader)
    lan.attach(follower_node.name, follower)

    process = FsProcess(sim, fs_id, leader, follower, lan)
    leader.ensure_wired()
    follower.ensure_wired()
    return process
