"""FS construction parameters and the section 2.2 timeout formulas."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class FsoConfig:
    """Parameters of a fail-signal pair.

    * ``delta`` -- δ, the synchronous LAN delivery bound (A2), ms;
    * ``kappa`` -- κ, the processing-delay divergence bound (A3);
    * ``sigma`` -- σ, the send-scheduling divergence bound (A4).

    The paper's implementation uses κ = σ = 2 (Appendix A) and t1 = 0,
    t2 = 2δ for the follower's input-reconciliation timers.

    Batching (beyond the paper; see :mod:`repro.core.batching`):

    * ``batch_max`` -- outputs per compare batch; 1 (the default) keeps
      the paper's per-output sign/compare/countersign path byte-for-
      byte;
    * ``batch_delay_ms`` -- longest an open batch may accumulate before
      flushing; added as slack to the comparison timeouts because the
      peer may lawfully hold its counterpart that long before signing;
    * ``batch_inflight`` -- flushed-but-unmatched batches the pipelined
      sequencer keeps in flight per wrapper.
    """

    delta: float = 2.0
    kappa: float = 2.0
    sigma: float = 2.0
    batch_max: int = 1
    batch_delay_ms: float = 4.0
    batch_inflight: int = 4

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError(f"delta must be > 0, got {self.delta}")
        if self.kappa < 1 or self.sigma < 1:
            raise ValueError(
                f"kappa and sigma are ratio bounds and must be >= 1, got "
                f"kappa={self.kappa}, sigma={self.sigma}"
            )
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.batch_delay_ms <= 0:
            raise ValueError(f"batch_delay_ms must be > 0, got {self.batch_delay_ms}")
        if self.batch_inflight < 1:
            raise ValueError(f"batch_inflight must be >= 1, got {self.batch_inflight}")

    @property
    def batching(self) -> bool:
        """Whether the batched compare path is active."""
        return self.batch_max > 1

    # ------------------------------------------------------------------
    # section 2.2 timeout formulas
    # ------------------------------------------------------------------
    def leader_compare_timeout(self, pi: float, tau: float) -> float:
        """Compare (leader side) waits 2δ + κπ + στ for the matching
        single-signed output.

        ``pi`` is the measured local processing time of the input that
        produced the output; ``tau`` the time taken to sign and forward
        it.  The leader allows a full extra δ because the follower
        receives every input one LAN hop later."""
        return 2 * self.delta + self.kappa * pi + self.sigma * tau

    def follower_compare_timeout(self, pi: float, tau: float) -> float:
        """Compare' (follower side) waits δ + κπ + στ."""
        return self.delta + self.kappa * pi + self.sigma * tau

    @property
    def t1(self) -> float:
        """Follower's grace period before forwarding an unordered input
        to the leader.  0 in the paper's implementation."""
        return 0.0

    @property
    def t2(self) -> float:
        """Follower's deadline for the leader to order a forwarded
        input; expiry means the leader has failed.  2δ in the paper."""
        return 2 * self.delta
