"""Fail-signal (FS) processes -- the paper's primary contribution.

An FS process is a middleware process ``p`` transformed into a
self-checking replica pair ``{p, p'}`` hosted on two nodes joined by a
synchronous LAN.  Each replica lives inside a Fail-Signal wrapper Object
(FSO); the pair guarantees:

* **fs1** -- whenever the FS process cannot produce a correct response,
  it outputs its unique, double-signed *fail-signal*;
* **fs2** -- a faulty FS process may also emit its fail-signal at
  arbitrary times (and nothing worse).

Receivers may therefore treat a fail-signal as *certain* evidence that
the signaling process is faulty -- no timeout guessing -- which is what
dissolves the FLP obstacle for the middleware built on top.

Main entry points:

* :func:`make_fail_signal` / :class:`FsProcess` -- wrap a deterministic
  servant pair into an FS process;
* :class:`Fso` -- one wrapper object (leader or follower);
* :class:`FsOutputInbox` -- validates, de-duplicates and unwraps FS
  outputs for non-FS consumers;
* :mod:`repro.core.faults` -- Byzantine fault injection;
* :mod:`repro.core.batching` -- the batched, pipelined compare path
  (:class:`BatchPolicy` / :class:`BatchAccumulator`), enabled via
  ``FsoConfig(batch_max=N)``.
"""

from repro.core.batching import BatchAccumulator, BatchPolicy
from repro.core.config import FsoConfig
from repro.core.errors import FsError, FsWiringError
from repro.core.failsignal import FsProcess, make_fail_signal
from repro.core.failsilent import FailSilentFso
from repro.core.faults import ByzantineFso, FaultPlan
from repro.core.fso import Fso, FsoRole
from repro.core.inbox import FsOutputInbox
from repro.core.interception import FanOutInterceptor, FsCaptureInterceptor
from repro.core.messages import FailSignal, FsInput, FsOutput, FsRegistry
from repro.core.routes import FsRouteTable
from repro.core.transform import FsEnvironment

__all__ = [
    "BatchAccumulator",
    "BatchPolicy",
    "ByzantineFso",
    "FailSignal",
    "FailSilentFso",
    "FanOutInterceptor",
    "FaultPlan",
    "FsCaptureInterceptor",
    "FsEnvironment",
    "FsError",
    "FsInput",
    "FsOutput",
    "FsOutputInbox",
    "FsProcess",
    "FsRegistry",
    "FsRouteTable",
    "FsWiringError",
    "Fso",
    "FsoConfig",
    "FsoRole",
    "make_fail_signal",
]
