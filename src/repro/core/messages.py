"""Message types of the fail-signal layer.

Traffic in and out of an FS process:

* :class:`FsInput` -- a plain (unsigned) input submitted to the pair,
  e.g. the Invocation layer's multicast request;
* :class:`FsOutput` -- one output the wrapped process produced, tagged
  with its correlation id ``(input_seq, output_idx)``; always travels
  double-signed;
* :class:`FailSignal` -- the unique fail-signal blank of an FS process;
  travels double-signed (first signature pre-supplied by the peer
  Compare at start-up, second added when signalling).

Traffic inside the pair (over the synchronous LAN):

* :class:`OrderedInput` -- leader -> follower: input plus its position;
* :class:`ForwardedInput` -- follower -> leader: an input the follower
  saw but the leader has not ordered yet (the t1 path);
* :class:`SingleSigned` -- Compare -> Compare': a locally produced
  output, signed once, awaiting comparison;
* :class:`BatchSingle` -- Compare -> Compare' (batched path): a whole
  :class:`OutputBatch` of locally produced outputs under ONE signature.

Batched traffic out of the pair re-uses :class:`DoubleSigned` with an
:class:`OutputBatch` payload: one batch signature pair authenticates
every output inside, and receivers unpack per output (dedup keys and
content digests stay per-output, so the invariant oracles observe the
same per-message facts on batched and unbatched runs).
"""

from __future__ import annotations

import dataclasses

from repro.corba.orb import ObjectRef
from repro.crypto.canonical import canonical_encode
from repro.crypto.digest import md5_hexdigest
from repro.crypto.signing import Signed
from repro.net.message import HEADER_BYTES, wire_size
from repro.perf import IdentityCache

#: Content keys are compared once per Compare thread per output; the
#: digest of an immutable output is a constant, so memoise by identity.
_content_key_cache = IdentityCache()

#: The FSO cost paths read ``wire_size`` repeatedly (sign/verify cost
#: per destination); the size of an immutable message is a constant.
#: Values here are the *body* size (no transport header), distinct from
#: :data:`repro.perf.wire_size_cache`, which stores header-inclusive
#: sizes keyed by the same objects.
_body_size_cache = IdentityCache()


@dataclasses.dataclass(frozen=True, slots=True)
class FsInput:
    """An input for a fail-signal process.

    ``input_id`` must be globally unique and identical across the copies
    sent to the leader and the follower -- it is the pairing key of the
    follower's IRM pool and the dedup key against double submission.
    """

    method: str
    args: tuple
    input_id: tuple

    @property
    def wire_size(self) -> int:
        cached = _body_size_cache.get(self)
        if cached is None:
            cached = HEADER_BYTES + len(self.method)
            for arg in self.args:
                cached += wire_size(arg) - HEADER_BYTES
            _body_size_cache.put(self, cached)
        return cached


@dataclasses.dataclass(frozen=True, slots=True)
class FsOutput:
    """One output of the wrapped process, with its correlation id."""

    fs_id: str
    input_seq: int
    output_idx: int
    target: ObjectRef
    method: str
    args: tuple

    @property
    def correlation(self) -> tuple[int, int]:
        return (self.input_seq, self.output_idx)

    @property
    def dedup_key(self) -> tuple[str, int, int]:
        return (self.fs_id, self.input_seq, self.output_idx)

    def content_key(self) -> str:
        """Digest of the output *content* (destination, method, args) --
        what the two Compare processes actually compare."""
        cached = _content_key_cache.get(self)
        if cached is None:
            cached = md5_hexdigest(
                canonical_encode((self.target, self.method, self.args))
            )
            _content_key_cache.put(self, cached)
        return cached

    @property
    def wire_size(self) -> int:
        cached = _body_size_cache.get(self)
        if cached is None:
            cached = HEADER_BYTES + len(self.method) + len(self.fs_id)
            for arg in self.args:
                cached += wire_size(arg) - HEADER_BYTES
            _body_size_cache.put(self, cached)
        return cached


@dataclasses.dataclass(frozen=True, slots=True)
class FailSignal:
    """The fail-signal blank of the FS process ``fs_id``.

    The blank carries nothing but the identity: a fail-signal is
    meaningful purely as *who* signalled, and its double signature is
    what makes it unforgeable and uniquely attributable."""

    fs_id: str

    @property
    def wire_size(self) -> int:
        return HEADER_BYTES + len(self.fs_id)


@dataclasses.dataclass(frozen=True, slots=True)
class OutputBatch:
    """A run of outputs of one FS process, signed as a unit.

    All outputs share the batch's ``fs_id`` (receivers enforce this so a
    faulty pair cannot smuggle another pair's identity inside its own
    validly signed batch) and -- on the honest path -- a single
    destination, because the accumulator batches per target.
    ``batch_no`` is the producer's sequential batch counter; receivers
    transmit countersigned batches in this order, which preserves
    per-destination FIFO across out-of-order match completions.
    """

    fs_id: str
    batch_no: int
    outputs: tuple  # of FsOutput

    @property
    def wire_size(self) -> int:
        cached = _body_size_cache.get(self)
        if cached is None:
            cached = HEADER_BYTES + len(self.fs_id) + 16
            for output in self.outputs:
                cached += output.wire_size - HEADER_BYTES + 8
            _body_size_cache.put(self, cached)
        return cached


# ----------------------------------------------------------------------
# intra-pair LAN messages
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class OrderedInput:
    """Leader -> follower: this input is number ``seq``."""

    seq: int
    input: FsInput

    @property
    def wire_size(self) -> int:
        return 16 + self.input.wire_size


@dataclasses.dataclass(frozen=True, slots=True)
class ForwardedInput:
    """Follower -> leader: an input the leader may have missed."""

    input: FsInput

    @property
    def wire_size(self) -> int:
        return 8 + self.input.wire_size


@dataclasses.dataclass(frozen=True, slots=True)
class SingleSigned:
    """Compare -> Compare': single-signed candidate output."""

    signed: Signed  # payload is an FsOutput

    @property
    def wire_size(self) -> int:
        payload = self.signed.payload
        inner = payload.wire_size if hasattr(payload, "wire_size") else 64
        return 80 + inner  # signature + framing


@dataclasses.dataclass(frozen=True, slots=True)
class BatchSingle:
    """Compare -> Compare': single-signed candidate output *batch*."""

    signed: Signed  # payload is an OutputBatch

    @property
    def wire_size(self) -> int:
        payload = self.signed.payload
        inner = payload.wire_size if hasattr(payload, "wire_size") else 64
        return 80 + inner  # signature + framing


class FsRegistry:
    """Who signs for each FS process.

    The registry is trusted start-up configuration (keys are exchanged
    while both nodes are still correct, assumption A1): given an FS
    process id it answers which two Compare identities must have signed
    a valid output or fail-signal."""

    def __init__(self) -> None:
        self._signers: dict[str, tuple[str, str]] = {}

    def register(self, fs_id: str, signer_a: str, signer_b: str) -> None:
        if fs_id in self._signers:
            raise ValueError(f"FS process {fs_id!r} already registered")
        self._signers[fs_id] = (signer_a, signer_b)

    def signers(self, fs_id: str) -> tuple[str, str] | None:
        return self._signers.get(fs_id)

    def knows(self, fs_id: str) -> bool:
        return fs_id in self._signers

    def fs_ids(self) -> list[str]:
        return sorted(self._signers)
