"""FS output inbox for plain (non-FS) consumers.

"A double-signed response returned by FSO and FSO' to the Invocation
layer is intercepted, signatures stripped and duplicates suppressed"
(section 3.1).  The inbox is that interception point: it authenticates
the double signature against the registry, suppresses the duplicate that
arrives from the second Compare, converts fail-signals into local
notifications, and forwards genuine outputs to the collocated target
servant.  A double-signed :class:`OutputBatch` is authenticated once and
unpacked per output (the batched fast path).

**Invariants this module maintains** (what the :mod:`repro.invariants`
oracles are sound against):

* nothing crosses into the environment without a valid double signature
  whose two signers are exactly the registered pair of the claimed
  ``fs_id`` -- including every output *inside* a batch, which must carry
  the batch's own ``fs_id`` (no identity smuggling under a valid batch
  signature);
* every forwarded output is traced (``inbox``/``output-forwarded``)
  with its per-output content digest *before* being handed on, so the
  double-sign soundness oracle audits exactly the set of values that
  escaped, batched or not;
* each ``(fs_id, input_seq, output_idx)`` is forwarded at most once
  (the second Compare's copy, and any batch re-delivery, deduplicate);
* a fail-signal source is reported upward exactly once.
"""

from __future__ import annotations

import typing

from repro.corba.orb import ObjectRef, Request, Servant
from repro.core.messages import FailSignal, FsOutput, FsRegistry, OutputBatch
from repro.crypto.keystore import KeyStore
from repro.crypto.signing import DoubleSigned


class FsOutputInbox(Servant):
    """Per-member unwrapping endpoint for FS traffic."""

    def __init__(self, keystore: KeyStore, registry: FsRegistry, crypto_costs=None) -> None:
        self._keystore = keystore
        self._registry = registry
        self._crypto_costs = crypto_costs
        self._seen_outputs: set[tuple] = set()
        self._signalled_sources: set[str] = set()
        #: Called with the FS id of each newly signalled source.
        self.on_fail_signal: typing.Callable[[str], None] | None = None
        #: Optional rewrite of logical target keys to local object keys.
        self.local_rewrites: dict[str, ObjectRef] = {}
        self.outputs_forwarded = 0
        self.fail_signals_received = 0
        self.rejected = 0
        self.batches_unpacked = 0
        self.batch_outputs_seen = 0

    # ------------------------------------------------------------------
    # servant method
    # ------------------------------------------------------------------
    def receiveNew(self, message: typing.Any) -> None:
        if not isinstance(message, DoubleSigned):
            self.rejected += 1
            return
        payload = message.payload
        if isinstance(payload, FsOutput):
            self._on_output(message, payload)
        elif isinstance(payload, OutputBatch):
            self._on_batch(message, payload)
        elif isinstance(payload, FailSignal):
            self._on_fail_signal(message, payload)
        else:
            self.rejected += 1

    def invocation_cost(self, request: Request) -> float:
        if self._crypto_costs is None:
            return 0.0
        return self._crypto_costs.double_verify_cost(request.size)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _valid(self, message: DoubleSigned, fs_id: str) -> bool:
        expected = self._registry.signers(fs_id)
        if expected is None:
            return False
        signers = message.signers
        # Order-insensitive pair match without building two sets.
        if signers != expected and (signers[1], signers[0]) != expected:
            return False
        return self._keystore.check_double(message)

    def _on_output(self, message: DoubleSigned, payload: FsOutput) -> None:
        if not self._valid(message, payload.fs_id):
            self.rejected += 1
            return
        self._forward_output(payload)

    def _on_batch(self, message: DoubleSigned, batch: OutputBatch) -> None:
        """Authenticate once, then unpack and forward per output."""
        if not self._valid(message, batch.fs_id):
            self.rejected += 1
            return
        self.batches_unpacked += 1
        self.batch_outputs_seen += len(batch.outputs)
        for output in batch.outputs:
            if not isinstance(output, FsOutput) or output.fs_id != batch.fs_id:
                # The batch signature vouches only for the signing pair's
                # own outputs; a smuggled foreign identity is rejected.
                self.rejected += 1
                continue
            self._forward_output(output)

    def _forward_output(self, payload: FsOutput) -> None:
        if payload.dedup_key in self._seen_outputs:
            return  # the second Compare's copy
        self._seen_outputs.add(payload.dedup_key)
        target = self.local_rewrites.get(payload.target.key, payload.target)
        self.outputs_forwarded += 1
        sim = self.orb.sim
        if sim.trace.enabled:
            # What actually crossed the double-signature check into the
            # environment -- the set the soundness oracle audits.
            sim.trace.record(
                sim.now,
                "inbox",
                f"inbox@{self.orb.address}",
                "output-forwarded",
                fs=payload.fs_id,
                digest=payload.content_key(),
            )
        self.orb.oneway(target, payload.method, *payload.args)

    def _on_fail_signal(self, message: DoubleSigned, payload: FailSignal) -> None:
        if not self._valid(message, payload.fs_id):
            self.rejected += 1
            return
        if payload.fs_id in self._signalled_sources:
            return
        self._signalled_sources.add(payload.fs_id)
        self.fail_signals_received += 1
        sim = self.orb.sim
        if sim.trace.enabled:
            sim.trace.record(
                sim.now,
                "inbox",
                f"inbox@{self.orb.address}",
                "fail-signal",
                fs=payload.fs_id,
            )
        if self.on_fail_signal is not None:
            self.on_fail_signal(payload.fs_id)

    @property
    def signalled_sources(self) -> set[str]:
        return set(self._signalled_sources)
