"""Output batching for fail-signal pairs.

At high request rates the per-output crypto of the compare stage (one
single-signature, one verification and one countersignature per output)
dominates the wrapper's CPU lane: the RSA private-key exponentiation has
a large size-independent base cost, so signing one digest over a *batch*
of outputs amortises that base across the whole batch -- the same lever
PBFT-style systems pull with request batching.

This module holds the policy and the accumulator; the protocol changes
(batch signing, batch comparison, batch countersigning, batch-aware
unpacking) live in :mod:`repro.core.fso` and :mod:`repro.core.inbox`.

Batching composes with the crypto provider seam
(:mod:`repro.crypto.provider`): the flush path signs one digest per
batch regardless of provider, and the receive path hands both
signatures of each double-signed batch to
:meth:`~repro.crypto.signing.SignatureScheme.verify_many`, so a
provider with amortised batch verification (ed25519) drains the pair
in one C-level pass and is charged the cost model's
``double_verify_cost`` (< 2 sequential verifies) in simulated time.

Design constraints the accumulator honours:

* **Per-target batches.** Outputs are grouped by destination object, so
  a flushed batch travels to exactly one destination's endpoints and
  per-destination FIFO is preserved end to end.
* **Bounded holding time.** A batch flushes when it reaches
  ``max_batch`` outputs, when ``max_delay_ms`` has elapsed since it was
  opened, or on an explicit barrier -- so the extra latency a batched
  output can pick up is bounded by a configuration constant and the
  section 2.2 comparison timeouts stay sound after adding that constant
  as slack.
* **K batches in flight (pipelining).** At most ``max_inflight``
  flushed batches may be awaiting comparison at once; further flushes
  are deferred (the batch keeps accumulating) until a batch retires.
  Deferral never drops anything and cannot deadlock: deferred outputs
  are not yet signed, so no comparison timeout is running against them,
  and the peer's matching candidates simply wait in its ECM pool.
* **Determinism.** The accumulator holds no randomness and iterates
  insertion-ordered structures only; identical runs flush identical
  batches.

The accumulator is simulator-agnostic: the owner supplies the flush
callback and timer hooks, which keeps the class unit-testable without a
running simulation.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True, slots=True)
class BatchPolicy:
    """Batching knobs of one fail-signal pair.

    * ``max_batch`` -- flush a target's batch once it holds this many
      outputs (1 disables batching entirely);
    * ``max_delay_ms`` -- flush an open batch at the latest this long
      after its first output was added;
    * ``max_inflight`` -- how many flushed-but-unmatched batches the
      pipelined sequencer keeps in flight before deferring flushes.
    """

    max_batch: int = 8
    max_delay_ms: float = 4.0
    max_inflight: int = 4

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms <= 0:
            raise ValueError(f"max_delay_ms must be > 0, got {self.max_delay_ms}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")


#: A batch target key: ``(node, key)`` of the outputs' destination ref.
TargetKey = typing.Tuple[str, str]


class BatchAccumulator:
    """Per-target output accumulation with an in-flight cap.

    The owner wires three callbacks:

    * ``flush_fn(target_key, entries)`` -- a batch is ready: sign and
      forward it (the accumulator has already counted it in flight);
    * ``start_timer(target_key, open_no, delay_ms)`` / ``cancel_timer
      (target_key, open_no)`` -- arm/disarm the max-delay timer of one
      opened batch; on expiry the owner calls :meth:`on_delay_expired`
      with the same ``(target_key, open_no)``.

    ``open_no`` is a monotonically increasing generation number so a
    stale timer (for a batch that already flushed on size) is ignored.
    """

    def __init__(
        self,
        policy: BatchPolicy,
        flush_fn: typing.Callable[[TargetKey, list], None],
        start_timer: typing.Callable[[TargetKey, int, float], None],
        cancel_timer: typing.Callable[[TargetKey, int], None],
    ) -> None:
        self.policy = policy
        self._flush_fn = flush_fn
        self._start_timer = start_timer
        self._cancel_timer = cancel_timer
        self._pending: dict[TargetKey, list] = {}
        self._open_no: dict[TargetKey, int] = {}
        self._next_open = 0
        # Insertion-ordered set of targets whose flush was deferred by
        # the in-flight cap.
        self._deferred: dict[TargetKey, None] = {}
        self.in_flight = 0
        # -- statistics (read by the metrics layer) ----------------------
        self.batches_flushed = 0
        self.outputs_flushed = 0
        self.max_batch_flushed = 0
        self.deferrals = 0
        # -- live observability hooks (set by the owner when an
        #    :class:`repro.obs.spans.ObsHub` rides on the run) -----------
        self.on_flush: typing.Callable[[int], None] | None = None
        self.on_defer: typing.Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def add(self, target_key: TargetKey, entry: typing.Any) -> None:
        """Queue one output entry for ``target_key``; may flush."""
        pending = self._pending.get(target_key)
        if pending is None:
            pending = self._pending[target_key] = []
            open_no = self._next_open
            self._next_open += 1
            self._open_no[target_key] = open_no
            self._start_timer(target_key, open_no, self.policy.max_delay_ms)
        pending.append(entry)
        if len(pending) >= self.policy.max_batch:
            self._try_flush(target_key)

    def on_delay_expired(self, target_key: TargetKey, open_no: int) -> None:
        """Max-delay timer callback; stale generations are ignored.

        The delay bound is *hard*: it flushes past the in-flight cap.
        Only size-triggered flushes defer to the cap -- otherwise two
        peers deferring different targets can cross-starve each other's
        compare stages until the section 2.2 timeouts fire, and the
        ``max_delay_ms`` slack added to those timeouts would be a lie.
        """
        if self._open_no.get(target_key) != open_no:
            return
        if self._pending.get(target_key):
            self._flush(target_key)

    def retire_batch(self) -> None:
        """One in-flight batch fully matched: free its slot and run any
        deferred flushes that now fit."""
        if self.in_flight > 0:
            self.in_flight -= 1
        while self._deferred and self.in_flight < self.policy.max_inflight:
            target_key = next(iter(self._deferred))
            del self._deferred[target_key]
            if self._pending.get(target_key):
                self._flush(target_key)

    def barrier(self) -> None:
        """Explicit barrier: flush every pending batch *now*, in-flight
        cap notwithstanding (used at teardown and by tests)."""
        for target_key in list(self._pending):
            if self._pending[target_key]:
                self._flush(target_key)

    def clear(self) -> list[tuple[TargetKey, int]]:
        """Drop all pending state (the pair is signalling); returns the
        ``(target_key, open_no)`` pairs whose timers the owner must
        cancel."""
        timers = list(self._open_no.items())
        self._pending.clear()
        self._open_no.clear()
        self._deferred.clear()
        return timers

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _try_flush(self, target_key: TargetKey) -> None:
        if self.in_flight >= self.policy.max_inflight:
            if target_key not in self._deferred:
                self._deferred[target_key] = None
                self.deferrals += 1
                if self.on_defer is not None:
                    self.on_defer()
            return
        self._flush(target_key)

    def _flush(self, target_key: TargetKey) -> None:
        entries = self._pending.pop(target_key)
        open_no = self._open_no.pop(target_key)
        self._cancel_timer(target_key, open_no)
        self._deferred.pop(target_key, None)
        self.in_flight += 1
        self.batches_flushed += 1
        self.outputs_flushed += len(entries)
        if len(entries) > self.max_batch_flushed:
            self.max_batch_flushed = len(entries)
        if self.on_flush is not None:
            self.on_flush(len(entries))
        self._flush_fn(target_key, entries)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def pending_count(self, target_key: TargetKey | None = None) -> int:
        if target_key is not None:
            return len(self._pending.get(target_key, ()))
        return sum(len(v) for v in self._pending.values())

    def mean_batch_size(self) -> float:
        if self.batches_flushed == 0:
            return 0.0
        return self.outputs_flushed / self.batches_flushed
