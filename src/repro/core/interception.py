"""Interceptors of the fail-signal layer.

Two interceptors realise the "wrapping made transparent to GC" property
of section 3.1:

* :class:`FsCaptureInterceptor` (client side, on each FS node) captures
  every ORB request the wrapped replica issues while processing an input
  and hands it to the local FSO as a candidate output, instead of
  letting it reach the network unchecked;
* :class:`FanOutInterceptor` (client side, on client nodes) rewrites a
  request aimed at a wrapped logical object into one
  ``receiveNew(FsInput)`` per wrapper replica, assigning the unique
  input id both wrappers use for pairing.
"""

from __future__ import annotations

import typing

from repro.corba.interceptors import ClientInterceptor
from repro.corba.orb import ObjectRef, Orb, Request
from repro.core.messages import FsInput

if typing.TYPE_CHECKING:
    from repro.core.fso import Fso


class FsCaptureInterceptor(ClientInterceptor):
    """Captures the wrapped replica's outputs for comparison.

    While an FSO runs the wrapped handler it points ``current`` at
    itself; every request the handler issues through the node ORB is
    collected instead of transmitted.  Handlers run to completion within
    one simulation event, so a single slot (no stack) suffices.
    """

    def __init__(self) -> None:
        self.current: "Fso | None" = None
        self._collected: list[Request] = []

    def capture(
        self,
        fso: "Fso",
        handler: typing.Callable[..., typing.Any],
        args: tuple,
    ) -> list[Request]:
        """Run ``handler(*args)`` collecting the requests it issues."""
        if self.current is not None:
            raise RuntimeError("nested FSO capture; handlers must not re-enter")
        self.current = fso
        self._collected = []
        try:
            handler(*args)
            return list(self._collected)
        finally:
            self.current = None
            self._collected = []

    def outgoing(self, request: Request, orb: Orb) -> list[Request]:
        if self.current is None:
            return [request]
        self._collected.append(request)
        return []


class FanOutInterceptor(ClientInterceptor):
    """Redirects requests for wrapped logical objects to both wrappers.

    "A call to NewTOP GC ... is intercepted on the fly and is submitted
    to both GC and GC' in an identical order with the FSO acting as the
    leader" (section 3.1).  The interceptor assigns each intercepted
    request a unique ``input_id`` shared by both copies, which is what
    the follower's IRM pool pairs on.
    """

    def __init__(self, origin: str) -> None:
        self.origin = origin
        self._wrapped: dict[str, list[ObjectRef]] = {}
        self._counter = 0

    def wrap_target(self, logical_key: str, fso_refs: list[ObjectRef]) -> None:
        """Requests to ``logical_key`` now fan out to ``fso_refs``."""
        if len(fso_refs) < 1:
            raise ValueError("need at least one wrapper endpoint")
        self._wrapped[logical_key] = list(fso_refs)

    def outgoing(self, request: Request, orb: Orb) -> list[Request]:
        endpoints = self._wrapped.get(request.target.key)
        if endpoints is None:
            return [request]
        self._counter += 1
        fs_input = FsInput(
            method=request.method,
            args=request.args,
            input_id=("ext", self.origin, self._counter),
        )
        out = []
        for endpoint in endpoints:
            out.append(
                Request(
                    target=endpoint,
                    method="receiveNew",
                    args=(fs_input,),
                    oneway=True,
                    request_id=request.request_id,
                    reply_to=None,
                    sender=request.sender,
                    size=request.size + 32,
                )
            )
        return out
