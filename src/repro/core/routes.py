"""Routing of FS outputs to their real destinations.

The wrapped process addresses *logical* object references (its original,
crash-tolerant world view).  A checked, double-signed output must then
reach the real endpoints standing behind that logical reference:

* for a destination that is itself an FS process -- both wrapper objects
  of the pair ("each Compare process transmits the output to both the
  replicas of the destination FS process", section 2.1);
* for a plain destination (e.g. the Invocation layer) -- that member's
  :class:`repro.core.inbox.FsOutputInbox`, which verifies, strips and
  de-duplicates.

Every endpoint in a route accepts ``receiveNew(double_signed)``.
"""

from __future__ import annotations

from repro.corba.orb import ObjectRef


class FsRouteTable:
    """Maps logical object keys to the endpoints that accept FS outputs
    aimed at them."""

    def __init__(self) -> None:
        self._routes: dict[str, list[ObjectRef]] = {}

    def set_route(self, logical_key: str, endpoints: list[ObjectRef]) -> None:
        if not endpoints:
            raise ValueError(f"route for {logical_key!r} must have >= 1 endpoint")
        self._routes[logical_key] = list(endpoints)

    def resolve(self, logical: ObjectRef) -> list[ObjectRef]:
        """Endpoints for a logical target; unrouted targets are returned
        as-is (identity route -- useful in plain, non-NewTOP setups)."""
        return self._routes.get(logical.key, [logical])

    def known_keys(self) -> list[str]:
        return sorted(self._routes)
