"""Fail-silent processes: the predecessor of fail-signal.

"The key idea in the construction of a fail-silent process is similar to
that of fail-signal processes ... except that no fail-signals are
emitted.  If the results differ, the replicas stop functioning and
refrain from propagating any output to the environment" (Appendix A,
citing the Voltan work [BESST96, BLS98]).

Kept both as lineage documentation and as an ablation: a fail-silent
middleware process looks exactly like a *crashed* one to its peers, so
systems built on it are back to timeout-based failure detection -- which
is precisely the gap fail-signalling closes.
"""

from __future__ import annotations

from repro.core.fso import Fso


class FailSilentFso(Fso):
    """An FSO that falls silent instead of signalling.

    All the self-checking machinery (ordering, IRMP, ICMP/ECMP
    comparison, timeouts) is inherited unchanged; only the reaction to a
    detected failure differs: stop, emit nothing, forever.
    """

    def _start_signaling(self, reason: str) -> None:
        if self.signaled:
            return
        self.signaled = True
        self.signal_reason = f"silent:{reason}"
        self.trace("fso", "fail-silent-stop", reason=reason)
        for corr in list(self._icmp):
            self.cancel_timer(("icmp", corr))
        for input_id in list(self._irmp_pending):
            self.cancel_timer(("t2", input_id))
        self._icmp.clear()
        self._ecmp.clear()
        self._irmp_pending.clear()
        self._ds_ready.clear()
        self._single_ready.clear()
        # And that is all: no blank is countersigned, nothing is emitted.

    def _emit_fail_signal(self) -> None:
        return
