"""The Fail-Signal wrapper Object (FSO).

One FSO hosts one replica of the wrapped deterministic process plus the
Order and Compare roles of figure 1 / Appendix A:

* **ordering** (leader/follower asymmetric protocol): the leader fixes
  the input order and forwards each ordered input to the follower over
  the synchronous LAN; the follower checks through its IRM pool that
  everything it receives directly is being ordered by the leader (t1=0
  forward, t2=2δ deadline);
* **processing**: the wrapped replica consumes the Delivered Message
  Queue serially; its outputs are captured via the node's client
  interceptor;
* **comparing**: each locally produced output is signed once and
  forwarded to the peer Compare (ICM pool, with the section 2.2 timeout
  2δ+κπ+στ on the leader and δ+κπ+στ on the follower); the peer's
  singles land in the ECM pool; matching contents are countersigned and
  transmitted to the destinations, mismatches and timeouts trigger
  fail-signalling.

A signalling FSO countersigns the fail-signal blank its peer signed at
start-up, emits it to every configured destination, ceases LAN
interaction, and answers any further output duty with the fail-signal.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing

from repro.corba.node import Node
from repro.corba.orb import ObjectRef, Request, Servant
from repro.core.config import FsoConfig
from repro.core.errors import FsWiringError
from repro.core.messages import (
    FailSignal,
    ForwardedInput,
    FsInput,
    FsOutput,
    FsRegistry,
    OrderedInput,
    SingleSigned,
)
from repro.core.routes import FsRouteTable
from repro.crypto.keystore import KeyStore
from repro.crypto.signing import DoubleSigned, Signed, Signer
from repro.net.links import SynchronousLink
from repro.net.message import Envelope
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


class FsoRole(enum.Enum):
    LEADER = "leader"
    FOLLOWER = "follower"


@dataclasses.dataclass(slots=True)
class _IcmpEntry:
    """Internal Candidate Message pool entry: a locally produced output
    waiting for its peer counterpart."""

    output: FsOutput
    content_key: str
    prod_no: int
    pi: float
    tau: float


@dataclasses.dataclass(slots=True)
class _DsReady:
    """A checked output waiting its turn in the ordered transmit stage."""

    output: FsOutput
    double_signed: DoubleSigned


class Fso(Process, Servant):
    """One Fail-Signal wrapper Object (leader or follower)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        fs_id: str,
        role: FsoRole,
        wrapped: Servant,
        link: SynchronousLink,
        signer: Signer,
        keystore: KeyStore,
        registry: FsRegistry,
        config: FsoConfig,
        routes: FsRouteTable,
        capture_interceptor: "FsCaptureInterceptorProtocol",
    ) -> None:
        Process.__init__(self, sim, f"{fs_id}/{role.value}")
        self.node = node
        self.fs_id = fs_id
        self.role = role
        self.wrapped = wrapped
        self.link = link
        self.signer = signer
        self.keystore = keystore
        self.registry = registry
        self.config = config
        self.routes = routes
        self._capture = capture_interceptor
        self.signal_destinations: list[ObjectRef] = []
        self.fail_signal_blank: Signed | None = None  # peer-signed, set at start-up
        self.on_fail_signal_input: typing.Callable[[FailSignal], FsInput | None] | None = None

        # --- ordering state ---------------------------------------------------
        self._next_seq = 0  # leader: next order number to assign
        self._dmq: collections.deque[tuple[int, FsInput]] = collections.deque()
        self._seen_inputs: set[tuple] = set()
        # follower IRM pool: inputs seen directly but not yet ordered by
        # the leader, plus the set already ordered (for pairing).
        self._irmp_pending: dict[tuple, FsInput] = {}
        self._ordered_ids: set[tuple] = set()

        # --- processing state -------------------------------------------------
        self._processing = False
        self._submitted_at: dict[int, float] = {}
        self._prod_counter = 0

        # --- compare state ----------------------------------------------------
        self._icmp: dict[tuple[int, int], _IcmpEntry] = {}
        self._ecmp: dict[tuple[int, int], Signed] = {}
        # ordered transmit stages (keep per-destination FIFO intact even
        # though signing bursts may complete out of order on the CPU)
        self._single_next = 0
        self._single_ready: dict[int, SingleSigned] = {}
        self._ds_next = 0
        self._ds_ready: dict[int, _DsReady] = {}

        # Dedicated execution lane: the wrapper pipeline (replica
        # processing, signing, verification) runs as a high-priority
        # serial thread of its own, per section 5's prescription that
        # "the replicas be run with a high priority".  Without this, the
        # pair's corresponding jobs sit at different depths of their
        # nodes' shared CPU queues and the divergence bounds A3/A4 are
        # violated under load, causing spurious fail-signals.
        from repro.sim.resources import CpuResource

        self.lane = CpuResource(sim, cores=1, name=f"{self.name}/lane")
        # Inbound verification gets its own lane (the node is a dual
        # processor; the Compare's checking of peer singles must not
        # starve the replica's own processing+signing pipeline, or the
        # pair's pipelines drift apart and A3/A4 break).
        self.lane_in = CpuResource(sim, cores=1, name=f"{self.name}/lane-in")

        # --- failure state ----------------------------------------------------
        self.signaled = False
        self.signal_reason: str | None = None
        self.outputs_transmitted = 0
        self.inputs_ordered = 0

    # ======================================================================
    # wiring helpers
    # ======================================================================
    def ensure_wired(self) -> None:
        if self.fail_signal_blank is None:
            raise FsWiringError(f"{self.name}: no fail-signal blank installed")
        if self.fail_signal_blank.payload != FailSignal(self.fs_id):
            raise FsWiringError(f"{self.name}: fail-signal blank is for the wrong process")

    @property
    def is_leader(self) -> bool:
        return self.role is FsoRole.LEADER

    # ======================================================================
    # servant methods (async-network side)
    # ======================================================================
    def receiveNew(self, raw: typing.Any) -> None:
        """Entry point for inputs arriving over the asynchronous network:
        plain :class:`FsInput` or a double-signed FS output/fail-signal."""
        if not self.alive:
            return
        fs_input = self._authenticate(raw)
        if fs_input is None:
            return
        if self.signaled:
            # A signalling FSO answers anything that expects a response
            # with its fail-signal.
            self._emit_fail_signal()
            return
        if fs_input.input_id in self._seen_inputs:
            return  # duplicate copy (outputs arrive from both peer Compares)
        self._seen_inputs.add(fs_input.input_id)
        if self.is_leader:
            self._order_input(fs_input)
        else:
            self._follower_saw_input(fs_input)

    def invocation_cost(self, request: Request) -> float:
        """ORB dispatch surcharge: authenticating a double-signed input
        costs two signature verifications."""
        if request.args and isinstance(request.args[0], DoubleSigned):
            return self.node.crypto_costs.verify_cost(request.size) * 2
        return 0.0

    # ======================================================================
    # input authentication and normalisation
    # ======================================================================
    def _authenticate(self, raw: typing.Any) -> FsInput | None:
        if isinstance(raw, FsInput):
            return raw
        if isinstance(raw, DoubleSigned):
            payload = raw.payload
            if isinstance(payload, FsOutput):
                if not self._check_double(raw, payload.fs_id):
                    return None
                return FsInput(
                    method=payload.method,
                    args=payload.args,
                    input_id=("fso",) + payload.dedup_key,
                )
            if isinstance(payload, FailSignal):
                if not self._check_double(raw, payload.fs_id):
                    return None
                if self.on_fail_signal_input is None:
                    self.trace("fso", "fail-signal-dropped", origin=payload.fs_id)
                    return None
                return self.on_fail_signal_input(payload)
        self.trace("fso", "input-rejected", kind=type(raw).__name__)
        return None

    def _check_double(self, message: DoubleSigned, fs_id: str) -> bool:
        expected = self.registry.signers(fs_id)
        if expected is None:
            self.trace("fso", "unknown-fs-source", origin=fs_id)
            return False
        if set(message.signers) != set(expected):
            self.trace("fso", "wrong-signers", origin=fs_id, got=message.signers)
            return False
        if not self.keystore.check_double(message):
            self.trace("fso", "bad-signature", origin=fs_id)
            return False
        return True

    # ======================================================================
    # ordering protocol (Order / Order')
    # ======================================================================
    def _order_input(self, fs_input: FsInput) -> None:
        """Leader: fix this input's position and tell the follower."""
        seq = self._next_seq
        self._next_seq += 1
        self.inputs_ordered += 1
        self._ordered_ids.add(fs_input.input_id)
        # π is measured "since the corresponding input was submitted for
        # processing" (section 2.2) -- i.e. from DMQ insertion, so the
        # comparison timeout scales with queueing under load.
        self._submitted_at[seq] = self.sim.now
        self._dmq.append((seq, fs_input))
        self._lan_send(OrderedInput(seq=seq, input=fs_input))
        self._pump_processing()

    def _follower_saw_input(self, fs_input: FsInput) -> None:
        """Follower: pair a directly received input against the leader's
        ordering stream (Appendix A; t1 = 0 so forwarding is immediate)."""
        if fs_input.input_id in self._ordered_ids:
            return  # already ordered by the leader; pair consumed
        if fs_input.input_id in self._irmp_pending:
            return
        self._irmp_pending[fs_input.input_id] = fs_input
        # t1 = 0: dispatch to the leader straight away...
        self._lan_send(ForwardedInput(input=fs_input))
        # ...and give it t2 = 2δ to order the message.
        self.set_timer(("t2", fs_input.input_id), self.config.t2, fs_input.input_id)

    # ======================================================================
    # synchronous LAN endpoint
    # ======================================================================
    def _lan_send(self, payload: typing.Any) -> None:
        if self.signaled:
            return  # a signalling Compare ceases interaction with its peer
        self.link.send(self.node.name, payload)

    def on_message(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, OrderedInput):
            self._on_ordered(payload)
        elif isinstance(payload, ForwardedInput):
            self._on_forwarded(payload)
        elif isinstance(payload, SingleSigned):
            self._on_single(payload)
        else:
            self.trace("fso", "unknown-lan-payload", kind=type(payload).__name__)

    def _on_ordered(self, msg: OrderedInput) -> None:
        """Follower: the leader ordered an input."""
        if self.signaled or self.is_leader:
            return
        input_id = msg.input.input_id
        self._ordered_ids.add(input_id)
        self._seen_inputs.add(input_id)
        if input_id in self._irmp_pending:
            del self._irmp_pending[input_id]
        self.cancel_timer(("t2", input_id))
        self.inputs_ordered += 1
        self._submitted_at[msg.seq] = self.sim.now
        self._dmq.append((msg.seq, msg.input))
        self._pump_processing()

    def _on_forwarded(self, msg: ForwardedInput) -> None:
        """Leader: the follower saw an input we have not ordered yet."""
        if self.signaled or not self.is_leader:
            return
        if msg.input.input_id in self._seen_inputs:
            return  # we did order it; our OrderedInput is on its way
        self._seen_inputs.add(msg.input.input_id)
        self._order_input(msg.input)

    def on_timer(self, tag, *args) -> None:
        if isinstance(tag, tuple) and tag[0] == "t2":
            input_id = args[0]
            if input_id in self._irmp_pending and not self.signaled:
                # The leader never ordered an input we saw: leader failed.
                self._start_signaling("leader-silent")
        elif isinstance(tag, tuple) and tag[0] == "icmp":
            corr = args[0]
            if corr in self._icmp and not self.signaled:
                self._start_signaling("compare-timeout")
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.name}: unexpected timer {tag!r}")

    # ======================================================================
    # processing (the wrapped replica consumes the DMQ serially)
    # ======================================================================
    def _pump_processing(self) -> None:
        if self._processing or not self._dmq:
            return
        self._processing = True
        seq, fs_input = self._dmq.popleft()
        cost = self._processing_cost(fs_input)
        self.lane.execute(cost, self._process, seq, fs_input)

    def _processing_cost(self, fs_input: FsInput) -> float:
        pseudo = Request(
            target=self.wrapped.ref,
            method=fs_input.method,
            args=fs_input.args,
            oneway=True,
            request_id=-1,
            reply_to=None,
            sender=self.name,
            size=fs_input.wire_size,
        )
        # The ORB already charged unmarshalling when the input arrived at
        # the wrapper; what remains is the replica's own processing.
        return 0.1 + self.wrapped.invocation_cost(pseudo)

    def _process(self, seq: int, fs_input: FsInput) -> None:
        if not self.alive:
            return
        handler = getattr(self.wrapped, fs_input.method, None)
        if handler is None:
            self.trace("fso", "no-such-method", method=fs_input.method)
        else:
            outputs = self._capture.capture(self, handler, fs_input.args)
            pi = self.sim.now - self._submitted_at[seq]
            for idx, request in enumerate(outputs):
                self._handle_output(seq, idx, request, pi)
        del self._submitted_at[seq]
        self._processing = False
        self._pump_processing()

    # ======================================================================
    # compare (Compare / Compare')
    # ======================================================================
    def _handle_output(self, seq: int, idx: int, request: Request, pi: float) -> None:
        if self.signaled:
            # "...it sends the double-signed fail-signal to destination(s)
            # of any locally produced output."
            self._emit_fail_signal()
            return
        output = FsOutput(
            fs_id=self.fs_id,
            input_seq=seq,
            output_idx=idx,
            target=request.target,
            method=request.method,
            args=request.args,
        )
        prod_no = self._prod_counter
        self._prod_counter += 1
        entry = _IcmpEntry(
            output=output,
            content_key=output.content_key(),
            prod_no=prod_no,
            pi=pi,
            tau=0.0,  # measured once signing completes
        )
        # Sign the candidate (CPU burst), then forward to the peer and
        # start the comparison timeout.  τ is *measured*, per section
        # 2.2 ("the time taken to sign and forward the output"), so it
        # includes CPU queueing behind other signing work.
        sign_cost = self.node.crypto_costs.sign_cost(output.wire_size)
        produced_at = self.sim.now
        self.lane.execute(sign_cost, self._single_signed, entry, produced_at)

    def _single_signed(self, entry: _IcmpEntry, produced_at: float) -> None:
        if not self.alive or self.signaled:
            return
        entry.tau = self.sim.now - produced_at
        corr = entry.output.correlation
        self._icmp[corr] = entry
        # What this Compare *vouches for* -- the reference stream the
        # double-sign soundness oracle checks delivered values against.
        if self.sim.trace.enabled:
            self.trace("fso", "single", corr=list(corr), digest=entry.content_key)
        single = SingleSigned(signed=self.signer.sign_payload(entry.output))
        self._single_ready[entry.prod_no] = single
        while self._single_next in self._single_ready:
            self._lan_send(self._single_ready.pop(self._single_next))
            self._single_next += 1
        if self.is_leader:
            timeout = self.config.leader_compare_timeout(entry.pi, entry.tau)
        else:
            timeout = self.config.follower_compare_timeout(entry.pi, entry.tau)
        self.set_timer(("icmp", corr), timeout, corr)
        self._try_match(corr)

    def _on_single(self, msg: SingleSigned) -> None:
        """Peer Compare forwarded a single-signed candidate output."""
        if self.signaled:
            return
        signed = msg.signed
        payload = signed.payload
        if not isinstance(payload, FsOutput):
            self.trace("fso", "single-bad-payload")
            return
        verify_cost = self.node.crypto_costs.verify_cost(payload.wire_size)
        self.lane_in.execute(verify_cost, self._single_verified, signed)

    def _single_verified(self, signed: Signed) -> None:
        if not self.alive or self.signaled:
            return
        peer_identity = self._peer_signer_identity()
        if signed.signer != peer_identity or not self.keystore.check_signed(signed):
            # A corrupted single cannot be attributed; ignore it and let
            # the comparison timeout catch the failure.
            self.trace("fso", "single-rejected", claimed=signed.signer)
            return
        payload: FsOutput = signed.payload
        corr = payload.correlation
        existing = self._ecmp.get(corr)
        if existing is not None and existing.payload.content_key() != payload.content_key():
            # Two validly signed, conflicting candidates for one slot:
            # the peer signed both, which only a faulty Compare does.
            # This is double-sign evidence -- unforgeable under A5.
            self.trace(
                "fso",
                "double-sign-evidence",
                corr=list(corr),
                signer=signed.signer,
            )
            self._start_signaling("double-sign-evidence")
            return
        if self.sim.trace.enabled:
            self.trace(
                "fso",
                "single-accepted",
                corr=list(corr),
                digest=payload.content_key(),
                signer=signed.signer,
            )
        self._ecmp[corr] = signed
        self._try_match(corr)

    def _try_match(self, corr: tuple[int, int]) -> None:
        entry = self._icmp.get(corr)
        peer_signed = self._ecmp.get(corr)
        if entry is None or peer_signed is None:
            return
        peer_output: FsOutput = peer_signed.payload
        if peer_output.content_key() != entry.content_key:
            self.trace(
                "fso",
                "compare-mismatch",
                corr=list(corr),
                local=entry.content_key,
                remote=peer_output.content_key(),
            )
            self._start_signaling("output-mismatch")
            return
        # Success: countersign the peer's single so the double signature
        # carries both identities, then transmit in production order.
        del self._icmp[corr]
        del self._ecmp[corr]
        self.cancel_timer(("icmp", corr))
        sign_cost = self.node.crypto_costs.sign_cost(peer_output.wire_size)
        self.lane.execute(sign_cost, self._countersigned, entry, peer_signed)

    def _countersigned(self, entry: _IcmpEntry, peer_signed: Signed) -> None:
        if not self.alive or self.signaled:
            return
        double = self.signer.countersign(peer_signed)
        self._ds_ready[entry.prod_no] = _DsReady(output=entry.output, double_signed=double)
        while self._ds_next in self._ds_ready:
            ready = self._ds_ready.pop(self._ds_next)
            self._transmit_output(ready)
            self._ds_next += 1

    def _transmit_output(self, ready: _DsReady) -> None:
        self.outputs_transmitted += 1
        if self.sim.trace.enabled:
            self.trace(
                "fso",
                "output",
                corr=list(ready.output.correlation),
                target=str(ready.output.target),
                digest=ready.output.content_key(),
            )
        for endpoint in self.routes.resolve(ready.output.target):
            self.node.orb.oneway(endpoint, "receiveNew", ready.double_signed)

    # ======================================================================
    # fail-signalling
    # ======================================================================
    def _start_signaling(self, reason: str) -> None:
        if self.signaled:
            return
        self.ensure_wired()
        self.signaled = True
        self.signal_reason = reason
        self.trace("fso", "fail-signal", reason=reason)
        # Cease peer interaction: drop pools and pending timers.
        for corr in list(self._icmp):
            self.cancel_timer(("icmp", corr))
        for input_id in list(self._irmp_pending):
            self.cancel_timer(("t2", input_id))
        self._icmp.clear()
        self._ecmp.clear()
        self._irmp_pending.clear()
        self._ds_ready.clear()
        self._single_ready.clear()
        sign_cost = self.node.crypto_costs.sign_cost(64)
        self.lane.execute(sign_cost, self._emit_fail_signal, priority=-2)

    def inject_arbitrary_signal(self) -> None:
        """Fault injection: make this (possibly healthy) FSO emit its
        fail-signal spontaneously -- failure mode fs2."""
        self._start_signaling("injected-fs2")

    def _emit_fail_signal(self) -> None:
        if not self.alive or self.fail_signal_blank is None:
            return
        double = self.signer.countersign(self.fail_signal_blank)
        for endpoint in self.signal_destinations:
            self.node.orb.oneway(endpoint, "receiveNew", double)

    # ======================================================================
    # misc
    # ======================================================================
    def _peer_signer_identity(self) -> str:
        pair = self.registry.signers(self.fs_id)
        if pair is None:
            raise FsWiringError(f"{self.name}: own FS id not in registry")
        others = [identity for identity in pair if identity != self.signer.identity]
        if len(others) != 1:
            raise FsWiringError(f"{self.name}: registry signers {pair} inconsistent")
        return others[0]


class FsCaptureInterceptorProtocol(typing.Protocol):
    """What the FSO needs from the node's capture interceptor."""

    def capture(
        self,
        fso: Fso,
        handler: typing.Callable[..., typing.Any],
        args: tuple,
    ) -> list[Request]: ...
