"""The Fail-Signal wrapper Object (FSO).

One FSO hosts one replica of the wrapped deterministic process plus the
Order and Compare roles of figure 1 / Appendix A:

* **ordering** (leader/follower asymmetric protocol): the leader fixes
  the input order and forwards each ordered input to the follower over
  the synchronous LAN; the follower checks through its IRM pool that
  everything it receives directly is being ordered by the leader (t1=0
  forward, t2=2δ deadline);
* **processing**: the wrapped replica consumes the Delivered Message
  Queue serially; its outputs are captured via the node's client
  interceptor;
* **comparing**: each locally produced output is signed once and
  forwarded to the peer Compare (ICM pool, with the section 2.2 timeout
  2δ+κπ+στ on the leader and δ+κπ+στ on the follower); the peer's
  singles land in the ECM pool; matching contents are countersigned and
  transmitted to the destinations, mismatches and timeouts trigger
  fail-signalling.

A signalling FSO countersigns the fail-signal blank its peer signed at
start-up, emits it to every configured destination, ceases LAN
interaction, and answers any further output duty with the fail-signal.

**Batched compare path** (``FsoConfig.batch_max > 1``; beyond the
paper): locally produced outputs are accumulated per destination by a
:class:`repro.core.batching.BatchAccumulator` and signed/countersigned
one *batch* digest at a time, with up to ``batch_inflight`` batches
pipelined through the compare stage.  Comparison, timeouts, dedup keys
and trace events all stay per-output, so detection semantics and the
invariant oracles are unchanged; only the crypto is amortised.

**Invariants this module maintains** (what the :mod:`repro.invariants`
oracles are sound against):

* every output the pair transmits was *vouched for* by both wrappers: a
  ``fso``/``single`` trace record with the output's content digest is
  emitted by each side before its (batch) signature leaves the node, and
  a ``DoubleSigned`` only forms over content both sides signed;
* each correlation slot ``(input_seq, output_idx)`` is signed at most
  once per wrapper per content -- two validly signed, conflicting
  candidates for one slot are possible only if a wrapper really signed
  both (double-sign evidence, unforgeable under A5);
* a wrapper that detects mismatch, starvation (section 2.2 timeouts),
  ordering silence (t2) or double-sign evidence stops transmitting
  outputs *before* emitting its fail-signal, and a signalling wrapper
  never re-enters the compare path;
* transmit order per destination equals production order (unbatched:
  per-output production counter; batched: the peer's sequential batch
  numbers), regardless of CPU-lane completion order.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing

from repro.corba.node import Node
from repro.corba.orb import ObjectRef, Request, Servant
from repro.core.batching import BatchAccumulator, BatchPolicy
from repro.core.config import FsoConfig
from repro.core.errors import FsWiringError
from repro.core.messages import (
    BatchSingle,
    FailSignal,
    ForwardedInput,
    FsInput,
    FsOutput,
    FsRegistry,
    OrderedInput,
    OutputBatch,
    SingleSigned,
)
from repro.core.routes import FsRouteTable
from repro.crypto.keystore import KeyStore
from repro.crypto.signing import DoubleSigned, Signed, Signer
from repro.net.links import SynchronousLink
from repro.net.message import Envelope
from repro.sim.process import Process
if typing.TYPE_CHECKING:
    from repro.transport.base import Clock


class FsoRole(enum.Enum):
    LEADER = "leader"
    FOLLOWER = "follower"


@dataclasses.dataclass(slots=True)
class _IcmpEntry:
    """Internal Candidate Message pool entry: a locally produced output
    waiting for its peer counterpart."""

    output: FsOutput
    content_key: str
    prod_no: int
    pi: float
    tau: float
    produced_at: float = 0.0
    signed_at: float = 0.0  # batched path: when our (batch) signature completed


@dataclasses.dataclass(slots=True)
class _DsReady:
    """A checked output waiting its turn in the ordered transmit stage."""

    output: FsOutput
    double_signed: DoubleSigned


@dataclasses.dataclass(slots=True)
class _PeerBatch:
    """One peer candidate batch moving through the compare stage:
    countersigned (once) when every output inside has matched."""

    signed: Signed  # payload is an OutputBatch
    remaining: int


@dataclasses.dataclass(frozen=True, slots=True)
class _EcmpBatchEntry:
    """ECM pool entry of the batched path: one peer output plus the
    batch whose signature vouches for it."""

    output: FsOutput
    batch: _PeerBatch


class Fso(Process, Servant):
    """One Fail-Signal wrapper Object (leader or follower)."""

    def __init__(
        self,
        sim: Clock,
        node: Node,
        fs_id: str,
        role: FsoRole,
        wrapped: Servant,
        link: SynchronousLink,
        signer: Signer,
        keystore: KeyStore,
        registry: FsRegistry,
        config: FsoConfig,
        routes: FsRouteTable,
        capture_interceptor: "FsCaptureInterceptorProtocol",
    ) -> None:
        Process.__init__(self, sim, f"{fs_id}/{role.value}")
        self.node = node
        self.fs_id = fs_id
        self.role = role
        self.wrapped = wrapped
        self.link = link
        self.signer = signer
        self.keystore = keystore
        self.registry = registry
        self.config = config
        self.routes = routes
        self._capture = capture_interceptor
        self.signal_destinations: list[ObjectRef] = []
        self.fail_signal_blank: Signed | None = None  # peer-signed, set at start-up
        self.on_fail_signal_input: typing.Callable[[FailSignal], FsInput | None] | None = None

        # --- ordering state ---------------------------------------------------
        self._next_seq = 0  # leader: next order number to assign
        self._dmq: collections.deque[tuple[int, FsInput]] = collections.deque()
        self._seen_inputs: set[tuple] = set()
        # follower IRM pool: inputs seen directly but not yet ordered by
        # the leader, plus the set already ordered (for pairing).
        self._irmp_pending: dict[tuple, FsInput] = {}
        self._ordered_ids: set[tuple] = set()

        # --- processing state -------------------------------------------------
        self._processing = False
        self._submitted_at: dict[int, float] = {}
        self._prod_counter = 0

        # --- compare state ----------------------------------------------------
        self._icmp: dict[tuple[int, int], _IcmpEntry] = {}
        # Unbatched path stores the peer's Signed per slot; batched path
        # stores an _EcmpBatchEntry tying the slot to its peer batch.
        self._ecmp: dict[tuple[int, int], typing.Union[Signed, _EcmpBatchEntry]] = {}
        # ordered transmit stages (keep per-destination FIFO intact even
        # though signing bursts may complete out of order on the CPU)
        self._single_next = 0
        self._single_ready: dict[int, SingleSigned] = {}
        self._ds_next = 0
        self._ds_ready: dict[int, _DsReady] = {}

        # --- batched compare state (see repro.core.batching) ------------------
        self._accum: BatchAccumulator | None = None
        if config.batching:
            self._accum = BatchAccumulator(
                BatchPolicy(
                    max_batch=config.batch_max,
                    max_delay_ms=config.batch_delay_ms,
                    max_inflight=config.batch_inflight,
                ),
                flush_fn=self._flush_batch,
                start_timer=self._start_batch_timer,
                cancel_timer=self._cancel_batch_timer,
            )
        self._batch_counter = 0  # local batch numbering (sequential)
        self._local_batch_of: dict[tuple[int, int], int] = {}
        self._local_batch_pending: dict[int, int] = {}
        # Countersigned peer batches awaiting their turn in the ordered
        # transmit stage, keyed by the peer's batch number.
        self._pb_ready: dict[int, DoubleSigned] = {}
        self._pb_next = 0

        # Measured drift terms of the batched path, kept as decaying
        # maxima and fed back into the comparison timeouts in the same
        # spirit as section 2.2's measured π and τ.  The unbatched path
        # implicitly tolerates pair drift because every output's τ
        # inflates with the per-output signing queue; batching deflates
        # τ, so the drift the pair actually exhibits is measured
        # explicitly instead:
        #
        # * ``_pair_lag`` -- how long after our own signature the peer's
        #   matching candidate has recently been arriving (trailing);
        # * ``_tau_peak`` -- the worst recent sign-and-forward time τ on
        #   our side.  Flush timers synchronise batches into signing
        #   *bursts*; an output straddling a window boundary pays the
        #   peer's full burst, which mirrors our own under the A3/A4
        #   divergence bounds, so our measured peak stands in for the
        #   peer's (leading).
        self._pair_lag = 0.0
        self._tau_peak = 0.0

        # --- crypto accounting (amortisation metrics) -------------------------
        self.signatures_made = 0
        self.batches_signed = 0
        self.batch_outputs_signed = 0

        # --- live observability (no-ops unless a hub rides the clock) ---------
        from repro.obs.spans import hub_of

        hub = hub_of(sim)
        scheme = signer.scheme_name
        self._obs_sign = hub.sign_histogram(scheme)
        self._obs_verify = hub.verify_histogram(scheme)
        self._obs_countersign = hub.countersign_histogram(scheme)
        self._obs_fail_signals = hub.fail_signals
        if self._accum is not None and hub.enabled:
            self._accum.on_flush = hub.batch_flush_outputs.observe
            self._accum.on_defer = hub.batch_deferrals.inc

        # Dedicated execution lane: the wrapper pipeline (replica
        # processing, signing, verification) runs as a high-priority
        # serial thread of its own, per section 5's prescription that
        # "the replicas be run with a high priority".  Without this, the
        # pair's corresponding jobs sit at different depths of their
        # nodes' shared CPU queues and the divergence bounds A3/A4 are
        # violated under load, causing spurious fail-signals.
        from repro.sim.resources import CpuResource

        self.lane = CpuResource(sim, cores=1, name=f"{self.name}/lane")
        # Inbound verification gets its own lane (the node is a dual
        # processor; the Compare's checking of peer singles must not
        # starve the replica's own processing+signing pipeline, or the
        # pair's pipelines drift apart and A3/A4 break).
        self.lane_in = CpuResource(sim, cores=1, name=f"{self.name}/lane-in")

        # --- failure state ----------------------------------------------------
        self.signaled = False
        self.signal_reason: str | None = None
        self.outputs_transmitted = 0
        self.inputs_ordered = 0

    # ======================================================================
    # wiring helpers
    # ======================================================================
    def ensure_wired(self) -> None:
        if self.fail_signal_blank is None:
            raise FsWiringError(f"{self.name}: no fail-signal blank installed")
        if self.fail_signal_blank.payload != FailSignal(self.fs_id):
            raise FsWiringError(f"{self.name}: fail-signal blank is for the wrong process")

    @property
    def is_leader(self) -> bool:
        return self.role is FsoRole.LEADER

    # ======================================================================
    # servant methods (async-network side)
    # ======================================================================
    def receiveNew(self, raw: typing.Any) -> None:
        """Entry point for inputs arriving over the asynchronous network:
        plain :class:`FsInput`, a double-signed FS output/fail-signal, or
        a double-signed :class:`OutputBatch` (unpacked per output)."""
        if not self.alive:
            return
        if isinstance(raw, DoubleSigned) and isinstance(raw.payload, OutputBatch):
            batch: OutputBatch = raw.payload
            if not self._check_double(raw, batch.fs_id):
                return
            if self.signaled:
                self._emit_fail_signal()
                return
            # One batch authentication admits every output inside; each
            # becomes its own input with the usual per-output dedup key.
            for output in batch.outputs:
                if not isinstance(output, FsOutput) or output.fs_id != batch.fs_id:
                    self.trace("fso", "batch-foreign-output", origin=batch.fs_id)
                    continue
                self._ingest(
                    FsInput(
                        method=output.method,
                        args=output.args,
                        input_id=("fso",) + output.dedup_key,
                    )
                )
            return
        fs_input = self._authenticate(raw)
        if fs_input is None:
            return
        if self.signaled:
            # A signalling FSO answers anything that expects a response
            # with its fail-signal.
            self._emit_fail_signal()
            return
        self._ingest(fs_input)

    def _ingest(self, fs_input: FsInput) -> None:
        if fs_input.input_id in self._seen_inputs:
            return  # duplicate copy (outputs arrive from both peer Compares)
        self._seen_inputs.add(fs_input.input_id)
        if self.is_leader:
            self._order_input(fs_input)
        else:
            self._follower_saw_input(fs_input)

    def invocation_cost(self, request: Request) -> float:
        """ORB dispatch surcharge: authenticating a double-signed input
        costs checking both signatures (``double_verify_cost`` -- a
        provider with amortised batch verification pays less than two
        sequential checks)."""
        if request.args and isinstance(request.args[0], DoubleSigned):
            return self.node.crypto_costs.double_verify_cost(request.size)
        return 0.0

    # ======================================================================
    # input authentication and normalisation
    # ======================================================================
    def _authenticate(self, raw: typing.Any) -> FsInput | None:
        if isinstance(raw, FsInput):
            return raw
        if isinstance(raw, DoubleSigned):
            payload = raw.payload
            if isinstance(payload, FsOutput):
                if not self._check_double(raw, payload.fs_id):
                    return None
                return FsInput(
                    method=payload.method,
                    args=payload.args,
                    input_id=("fso",) + payload.dedup_key,
                )
            if isinstance(payload, FailSignal):
                if not self._check_double(raw, payload.fs_id):
                    return None
                if self.on_fail_signal_input is None:
                    self.trace("fso", "fail-signal-dropped", origin=payload.fs_id)
                    return None
                return self.on_fail_signal_input(payload)
        self.trace("fso", "input-rejected", kind=type(raw).__name__)
        return None

    def _check_double(self, message: DoubleSigned, fs_id: str) -> bool:
        expected = self.registry.signers(fs_id)
        if expected is None:
            self.trace("fso", "unknown-fs-source", origin=fs_id)
            return False
        if set(message.signers) != set(expected):
            self.trace("fso", "wrong-signers", origin=fs_id, got=message.signers)
            return False
        if not self.keystore.check_double(message):
            self.trace("fso", "bad-signature", origin=fs_id)
            return False
        return True

    # ======================================================================
    # ordering protocol (Order / Order')
    # ======================================================================
    def _order_input(self, fs_input: FsInput) -> None:
        """Leader: fix this input's position and tell the follower."""
        seq = self._next_seq
        self._next_seq += 1
        self.inputs_ordered += 1
        self._ordered_ids.add(fs_input.input_id)
        # π is measured "since the corresponding input was submitted for
        # processing" (section 2.2) -- i.e. from DMQ insertion, so the
        # comparison timeout scales with queueing under load.
        self._submitted_at[seq] = self.sim.now
        self._dmq.append((seq, fs_input))
        self._lan_send(OrderedInput(seq=seq, input=fs_input))
        self._pump_processing()

    def _follower_saw_input(self, fs_input: FsInput) -> None:
        """Follower: pair a directly received input against the leader's
        ordering stream (Appendix A; t1 = 0 so forwarding is immediate)."""
        if fs_input.input_id in self._ordered_ids:
            return  # already ordered by the leader; pair consumed
        if fs_input.input_id in self._irmp_pending:
            return
        self._irmp_pending[fs_input.input_id] = fs_input
        # t1 = 0: dispatch to the leader straight away...
        self._lan_send(ForwardedInput(input=fs_input))
        # ...and give it t2 = 2δ to order the message.
        self.set_timer(("t2", fs_input.input_id), self.config.t2, fs_input.input_id)

    # ======================================================================
    # synchronous LAN endpoint
    # ======================================================================
    def _lan_send(self, payload: typing.Any) -> None:
        if self.signaled:
            return  # a signalling Compare ceases interaction with its peer
        self.link.send(self.node.name, payload)

    def on_message(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, OrderedInput):
            self._on_ordered(payload)
        elif isinstance(payload, ForwardedInput):
            self._on_forwarded(payload)
        elif isinstance(payload, SingleSigned):
            self._on_single(payload)
        elif isinstance(payload, BatchSingle):
            self._on_batch_single(payload)
        else:
            self.trace("fso", "unknown-lan-payload", kind=type(payload).__name__)

    def _on_ordered(self, msg: OrderedInput) -> None:
        """Follower: the leader ordered an input."""
        if self.signaled or self.is_leader:
            return
        input_id = msg.input.input_id
        self._ordered_ids.add(input_id)
        self._seen_inputs.add(input_id)
        if input_id in self._irmp_pending:
            del self._irmp_pending[input_id]
        self.cancel_timer(("t2", input_id))
        self.inputs_ordered += 1
        self._submitted_at[msg.seq] = self.sim.now
        self._dmq.append((msg.seq, msg.input))
        self._pump_processing()

    def _on_forwarded(self, msg: ForwardedInput) -> None:
        """Leader: the follower saw an input we have not ordered yet."""
        if self.signaled or not self.is_leader:
            return
        if msg.input.input_id in self._seen_inputs:
            return  # we did order it; our OrderedInput is on its way
        self._seen_inputs.add(msg.input.input_id)
        self._order_input(msg.input)

    def on_timer(self, tag, *args) -> None:
        if isinstance(tag, tuple) and tag[0] == "t2":
            input_id = args[0]
            if input_id in self._irmp_pending and not self.signaled:
                # The leader never ordered an input we saw: leader failed.
                self._start_signaling("leader-silent")
        elif isinstance(tag, tuple) and tag[0] == "icmp":
            corr = args[0]
            if corr in self._icmp and not self.signaled:
                self._start_signaling("compare-timeout")
        elif isinstance(tag, tuple) and tag[0] == "batch":
            if self._accum is not None and not self.signaled:
                self._accum.on_delay_expired(args[0], args[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.name}: unexpected timer {tag!r}")

    # ======================================================================
    # processing (the wrapped replica consumes the DMQ serially)
    # ======================================================================
    def _pump_processing(self) -> None:
        if self._processing or not self._dmq:
            return
        self._processing = True
        seq, fs_input = self._dmq.popleft()
        cost = self._processing_cost(fs_input)
        self.lane.execute(cost, self._process, seq, fs_input)

    def _processing_cost(self, fs_input: FsInput) -> float:
        pseudo = Request(
            target=self.wrapped.ref,
            method=fs_input.method,
            args=fs_input.args,
            oneway=True,
            request_id=-1,
            reply_to=None,
            sender=self.name,
            size=fs_input.wire_size,
        )
        # The ORB already charged unmarshalling when the input arrived at
        # the wrapper; what remains is the replica's own processing.
        return 0.1 + self.wrapped.invocation_cost(pseudo)

    def _process(self, seq: int, fs_input: FsInput) -> None:
        if not self.alive:
            return
        handler = getattr(self.wrapped, fs_input.method, None)
        if handler is None:
            self.trace("fso", "no-such-method", method=fs_input.method)
        else:
            outputs = self._capture.capture(self, handler, fs_input.args)
            pi = self.sim.now - self._submitted_at[seq]
            for idx, request in enumerate(outputs):
                self._handle_output(seq, idx, request, pi)
        del self._submitted_at[seq]
        self._processing = False
        self._pump_processing()

    # ======================================================================
    # compare (Compare / Compare')
    # ======================================================================
    def _handle_output(self, seq: int, idx: int, request: Request, pi: float) -> None:
        if self.signaled:
            # "...it sends the double-signed fail-signal to destination(s)
            # of any locally produced output."
            self._emit_fail_signal()
            return
        output = FsOutput(
            fs_id=self.fs_id,
            input_seq=seq,
            output_idx=idx,
            target=request.target,
            method=request.method,
            args=request.args,
        )
        prod_no = self._prod_counter
        self._prod_counter += 1
        entry = _IcmpEntry(
            output=output,
            content_key=output.content_key(),
            prod_no=prod_no,
            pi=pi,
            tau=0.0,  # measured once signing completes
            produced_at=self.sim.now,
        )
        if self._accum is not None:
            # Batched path: accumulate per destination; the accumulator
            # flushes on size / delay / barrier into _flush_batch.
            self._accum.add((output.target.node, output.target.key), entry)
            return
        # Sign the candidate (CPU burst), then forward to the peer and
        # start the comparison timeout.  τ is *measured*, per section
        # 2.2 ("the time taken to sign and forward the output"), so it
        # includes CPU queueing behind other signing work.
        sign_cost = self.node.crypto_costs.sign_cost(output.wire_size)
        self.signatures_made += 1
        self.lane.execute(sign_cost, self._single_signed, entry)

    def _single_signed(self, entry: _IcmpEntry) -> None:
        if not self.alive or self.signaled:
            return
        entry.tau = self.sim.now - entry.produced_at
        self._obs_sign.observe(entry.tau)
        corr = entry.output.correlation
        self._icmp[corr] = entry
        # What this Compare *vouches for* -- the reference stream the
        # double-sign soundness oracle checks delivered values against.
        if self.sim.trace.enabled:
            self.trace("fso", "single", corr=list(corr), digest=entry.content_key)
        single = SingleSigned(signed=self.signer.sign_payload(entry.output))
        self._single_ready[entry.prod_no] = single
        while self._single_next in self._single_ready:
            self._lan_send(self._single_ready.pop(self._single_next))
            self._single_next += 1
        if self.is_leader:
            timeout = self.config.leader_compare_timeout(entry.pi, entry.tau)
        else:
            timeout = self.config.follower_compare_timeout(entry.pi, entry.tau)
        self.set_timer(("icmp", corr), timeout, corr)
        self._try_match(corr)

    # ======================================================================
    # batched compare path (sign / verify / countersign one digest per
    # batch; see repro.core.batching and docs/PERFORMANCE.md)
    # ======================================================================
    def _start_batch_timer(self, target_key, open_no: int, delay_ms: float) -> None:
        self.set_timer(("batch", target_key, open_no), delay_ms, target_key, open_no)

    def _cancel_batch_timer(self, target_key, open_no: int) -> None:
        self.cancel_timer(("batch", target_key, open_no))

    def flush_batches(self) -> None:
        """Explicit batch barrier: sign and forward everything pending
        now, regardless of size/delay/in-flight state."""
        if self._accum is not None and not self.signaled:
            self._accum.barrier()

    def _flush_batch(self, target_key, entries: list) -> None:
        batch_no = self._batch_counter
        self._batch_counter += 1
        batch = OutputBatch(
            fs_id=self.fs_id,
            batch_no=batch_no,
            outputs=tuple(entry.output for entry in entries),
        )
        # ONE signature for the whole batch -- the amortisation.
        sign_cost = self.node.crypto_costs.sign_cost(batch.wire_size)
        self.signatures_made += 1
        self.lane.execute(sign_cost, self._batch_signed, batch, entries)

    def _batch_signed(self, batch: OutputBatch, entries: list) -> None:
        if not self.alive or self.signaled:
            return
        self.batches_signed += 1
        self.batch_outputs_signed += len(entries)
        now = self.sim.now
        trace_on = self.sim.trace.enabled
        self._tau_peak *= 0.9
        for entry in entries:
            # τ includes the accumulation wait and the lane's signing-
            # burst queue: the timeout's στ term must cover the peer's
            # (equally bounded) version of both.
            entry.tau = now - entry.produced_at
            entry.signed_at = now
            self._obs_sign.observe(entry.tau)
            if entry.tau > self._tau_peak:
                self._tau_peak = entry.tau
            corr = entry.output.correlation
            self._icmp[corr] = entry
            self._local_batch_of[corr] = batch.batch_no
            if trace_on:
                self.trace("fso", "single", corr=list(corr), digest=entry.content_key)
        self._local_batch_pending[batch.batch_no] = len(entries)
        self._lan_send(BatchSingle(signed=self.signer.sign_payload(batch)))
        # Per-output comparison timeouts.  τ is taken as the worst of
        # the entry's own and the recent peak (_tau_peak): an output
        # straddling a flush-window boundary pays the peer's next window
        # plus its signing burst, which our own peak mirrors.  On top,
        # two explicit slack terms: the peer's bounded holding delay
        # (batch_delay_ms) and σ times the measured pairing lag -- all
        # finite, so a genuinely silent peer is still always caught.
        slack = self.config.batch_delay_ms + self.config.sigma * self._pair_lag
        for entry in entries:
            corr = entry.output.correlation
            tau = entry.tau if entry.tau > self._tau_peak else self._tau_peak
            if self.is_leader:
                timeout = self.config.leader_compare_timeout(entry.pi, tau)
            else:
                timeout = self.config.follower_compare_timeout(entry.pi, tau)
            self.set_timer(("icmp", corr), timeout + slack, corr)
        for entry in entries:
            if self.signaled:
                return  # a mid-loop mismatch already tore the pools down
            self._try_match(entry.output.correlation)

    def _on_batch_single(self, msg: BatchSingle) -> None:
        """Peer Compare forwarded a whole batch of signed candidates."""
        if self.signaled:
            return
        signed = msg.signed
        if not isinstance(signed.payload, OutputBatch):
            self.trace("fso", "single-bad-payload")
            return
        # ONE verification admits the whole batch.
        verify_cost = self.node.crypto_costs.verify_cost(signed.payload.wire_size)
        self._obs_verify.observe(verify_cost)
        self.lane_in.execute(verify_cost, self._batch_verified, signed)

    def _batch_verified(self, signed: Signed) -> None:
        if not self.alive or self.signaled:
            return
        peer_identity = self._peer_signer_identity()
        if signed.signer != peer_identity or not self.keystore.check_signed(signed):
            # A corrupted/forged batch cannot be attributed; the per-
            # output comparison timeouts catch the failure.
            self.trace("fso", "single-rejected", claimed=signed.signer)
            return
        batch: OutputBatch = signed.payload
        if batch.fs_id != self.fs_id:
            self.trace("fso", "single-bad-payload")
            return
        if any(
            not isinstance(output, FsOutput) or output.fs_id != batch.fs_id
            for output in batch.outputs
        ):
            # Countersigning vouches for the WHOLE batch, so a batch
            # carrying content we would refuse to compare (a smuggled
            # foreign identity, a non-output) is rejected outright --
            # only a faulty peer builds one, and the comparison
            # timeouts convert the resulting starvation into a signal.
            self.trace("fso", "batch-foreign-output", origin=batch.fs_id)
            return
        state = _PeerBatch(signed=signed, remaining=0)
        trace_on = self.sim.trace.enabled
        accepted: list[tuple[int, int]] = []
        for output in batch.outputs:
            corr = output.correlation
            existing = self._ecmp.get(corr)
            if existing is not None:
                held = (
                    existing.output if isinstance(existing, _EcmpBatchEntry)
                    else existing.payload
                )
                if held.content_key() != output.content_key():
                    # Two validly signed, conflicting candidates for one
                    # slot: double-sign evidence (see _single_verified).
                    self.trace(
                        "fso",
                        "double-sign-evidence",
                        corr=list(corr),
                        signer=signed.signer,
                    )
                    self._start_signaling("double-sign-evidence")
                    return
                continue  # replayed duplicate of the same content: keep the first
            state.remaining += 1
            self._ecmp[corr] = _EcmpBatchEntry(output=output, batch=state)
            accepted.append(corr)
            if trace_on:
                self.trace(
                    "fso",
                    "single-accepted",
                    corr=list(corr),
                    digest=output.content_key(),
                    signer=signed.signer,
                )
        for corr in accepted:
            if self.signaled:
                return
            self._try_match(corr)

    def _retire_local(self, corr: tuple[int, int]) -> None:
        """A local batched candidate matched: when its whole batch has
        matched, free the batch's in-flight pipeline slot."""
        batch_no = self._local_batch_of.pop(corr, None)
        if batch_no is None:
            return
        left = self._local_batch_pending.get(batch_no)
        if left is None:
            return
        left -= 1
        if left:
            self._local_batch_pending[batch_no] = left
        else:
            del self._local_batch_pending[batch_no]
            if self._accum is not None:
                self._accum.retire_batch()

    def _batch_countersigned(self, peer_signed: Signed) -> None:
        if not self.alive or self.signaled:
            return
        double = self.signer.countersign(peer_signed)
        batch: OutputBatch = peer_signed.payload
        self._pb_ready[batch.batch_no] = double
        # Transmit in the peer's batch order: batches may finish
        # matching out of order, destinations still see production order.
        while self._pb_next in self._pb_ready:
            self._transmit_batch(self._pb_ready.pop(self._pb_next))
            self._pb_next += 1

    def _transmit_batch(self, double: DoubleSigned) -> None:
        batch: OutputBatch = double.payload
        if not batch.outputs:
            return
        self.outputs_transmitted += len(batch.outputs)
        trace_on = self.sim.trace.enabled
        endpoints: list[ObjectRef] = []
        seen_targets: set[tuple[str, str]] = set()
        for output in batch.outputs:
            if trace_on:
                self.trace(
                    "fso",
                    "output",
                    corr=list(output.correlation),
                    target=str(output.target),
                    digest=output.content_key(),
                )
            # Honest batches share one target; resolve defensively per
            # distinct target so a faulty peer's mixed batch still
            # reaches every legitimate destination exactly once.
            target_key = (output.target.node, output.target.key)
            if target_key in seen_targets:
                continue
            seen_targets.add(target_key)
            for endpoint in self.routes.resolve(output.target):
                if endpoint not in endpoints:
                    endpoints.append(endpoint)
        for endpoint in endpoints:
            self.node.orb.oneway(endpoint, "receiveNew", double)

    def _on_single(self, msg: SingleSigned) -> None:
        """Peer Compare forwarded a single-signed candidate output."""
        if self.signaled:
            return
        signed = msg.signed
        payload = signed.payload
        if not isinstance(payload, FsOutput):
            self.trace("fso", "single-bad-payload")
            return
        verify_cost = self.node.crypto_costs.verify_cost(payload.wire_size)
        self._obs_verify.observe(verify_cost)
        self.lane_in.execute(verify_cost, self._single_verified, signed)

    def _single_verified(self, signed: Signed) -> None:
        if not self.alive or self.signaled:
            return
        peer_identity = self._peer_signer_identity()
        if signed.signer != peer_identity or not self.keystore.check_signed(signed):
            # A corrupted single cannot be attributed; ignore it and let
            # the comparison timeout catch the failure.
            self.trace("fso", "single-rejected", claimed=signed.signer)
            return
        payload: FsOutput = signed.payload
        corr = payload.correlation
        existing = self._ecmp.get(corr)
        if existing is not None:
            held: FsOutput = (
                existing.output if isinstance(existing, _EcmpBatchEntry)
                else existing.payload
            )
            if held.content_key() != payload.content_key():
                # Two validly signed, conflicting candidates for one
                # slot: the peer signed both, which only a faulty
                # Compare does.  Double-sign evidence, unforgeable
                # under A5.
                self.trace(
                    "fso",
                    "double-sign-evidence",
                    corr=list(corr),
                    signer=signed.signer,
                )
                self._start_signaling("double-sign-evidence")
                return
        if self.sim.trace.enabled:
            self.trace(
                "fso",
                "single-accepted",
                corr=list(corr),
                digest=payload.content_key(),
                signer=signed.signer,
            )
        self._ecmp[corr] = signed
        self._try_match(corr)

    def _try_match(self, corr: tuple[int, int]) -> None:
        entry = self._icmp.get(corr)
        peer_held = self._ecmp.get(corr)
        if entry is None or peer_held is None:
            return
        batched = isinstance(peer_held, _EcmpBatchEntry)
        peer_output: FsOutput = peer_held.output if batched else peer_held.payload
        if peer_output.content_key() != entry.content_key:
            self.trace(
                "fso",
                "compare-mismatch",
                corr=list(corr),
                local=entry.content_key,
                remote=peer_output.content_key(),
            )
            self._start_signaling("output-mismatch")
            return
        # Success: countersign the peer's single so the double signature
        # carries both identities, then transmit in production order.
        del self._icmp[corr]
        del self._ecmp[corr]
        self.cancel_timer(("icmp", corr))
        if batched:
            self._retire_local(corr)
            # Update the measured pairing lag: how far behind our own
            # signature the peer's candidate for this slot arrived.
            lag = self.sim.now - entry.signed_at
            decayed = self._pair_lag * 0.9
            self._pair_lag = lag if lag > decayed else decayed
            state = peer_held.batch
            state.remaining -= 1
            if state.remaining == 0:
                # Whole peer batch matched: ONE countersignature for it.
                sign_cost = self.node.crypto_costs.sign_cost(
                    state.signed.payload.wire_size
                )
                self.signatures_made += 1
                self._obs_countersign.observe(sign_cost)
                self.lane.execute(sign_cost, self._batch_countersigned, state.signed)
            return
        sign_cost = self.node.crypto_costs.sign_cost(peer_output.wire_size)
        self.signatures_made += 1
        self._obs_countersign.observe(sign_cost)
        self.lane.execute(sign_cost, self._countersigned, entry, peer_held)

    def _countersigned(self, entry: _IcmpEntry, peer_signed: Signed) -> None:
        if not self.alive or self.signaled:
            return
        double = self.signer.countersign(peer_signed)
        self._ds_ready[entry.prod_no] = _DsReady(output=entry.output, double_signed=double)
        while self._ds_next in self._ds_ready:
            ready = self._ds_ready.pop(self._ds_next)
            self._transmit_output(ready)
            self._ds_next += 1

    def _transmit_output(self, ready: _DsReady) -> None:
        self.outputs_transmitted += 1
        if self.sim.trace.enabled:
            self.trace(
                "fso",
                "output",
                corr=list(ready.output.correlation),
                target=str(ready.output.target),
                digest=ready.output.content_key(),
            )
        for endpoint in self.routes.resolve(ready.output.target):
            self.node.orb.oneway(endpoint, "receiveNew", ready.double_signed)

    # ======================================================================
    # fail-signalling
    # ======================================================================
    def _start_signaling(self, reason: str) -> None:
        if self.signaled:
            return
        self.ensure_wired()
        self.signaled = True
        self.signal_reason = reason
        self._obs_fail_signals.inc()
        self.trace("fso", "fail-signal", reason=reason)
        # Cease peer interaction: drop pools and pending timers.
        for corr in list(self._icmp):
            self.cancel_timer(("icmp", corr))
        for input_id in list(self._irmp_pending):
            self.cancel_timer(("t2", input_id))
        self._icmp.clear()
        self._ecmp.clear()
        self._irmp_pending.clear()
        self._ds_ready.clear()
        self._single_ready.clear()
        if self._accum is not None:
            for target_key, open_no in self._accum.clear():
                self._cancel_batch_timer(target_key, open_no)
        self._local_batch_of.clear()
        self._local_batch_pending.clear()
        self._pb_ready.clear()
        sign_cost = self.node.crypto_costs.sign_cost(64)
        self.signatures_made += 1
        self.lane.execute(sign_cost, self._emit_fail_signal, priority=-2)

    def inject_arbitrary_signal(self) -> None:
        """Fault injection: make this (possibly healthy) FSO emit its
        fail-signal spontaneously -- failure mode fs2."""
        self._start_signaling("injected-fs2")

    def _emit_fail_signal(self) -> None:
        if not self.alive or self.fail_signal_blank is None:
            return
        double = self.signer.countersign(self.fail_signal_blank)
        for endpoint in self.signal_destinations:
            self.node.orb.oneway(endpoint, "receiveNew", double)

    # ======================================================================
    # misc
    # ======================================================================
    def _peer_signer_identity(self) -> str:
        pair = self.registry.signers(self.fs_id)
        if pair is None:
            raise FsWiringError(f"{self.name}: own FS id not in registry")
        others = [identity for identity in pair if identity != self.signer.identity]
        if len(others) != 1:
            raise FsWiringError(f"{self.name}: registry signers {pair} inconsistent")
        return others[0]


class FsCaptureInterceptorProtocol(typing.Protocol):
    """What the FSO needs from the node's capture interceptor."""

    def capture(
        self,
        fso: Fso,
        handler: typing.Callable[..., typing.Any],
        args: tuple,
    ) -> list[Request]: ...
