"""High-level transform API: one environment, many FS processes.

An :class:`FsEnvironment` owns the shared trust infrastructure (keystore,
registry, route table) so that several FS processes built in the same
simulation can authenticate one another -- which is exactly the FS-NewTOP
configuration, where every member's GC becomes one FS process.
"""

from __future__ import annotations

from repro.corba.node import Node
from repro.corba.orb import Servant
from repro.core.config import FsoConfig
from repro.core.failsignal import FsProcess, make_fail_signal
from repro.core.fso import Fso
from repro.core.inbox import FsOutputInbox
from repro.core.messages import FsRegistry
from repro.core.routes import FsRouteTable
from repro.crypto.keystore import KeyStore
from repro.crypto.signing import HmacScheme, SignatureScheme
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.transport.base import Clock


class FsEnvironment:
    """Shared PKI, registry and routing for a set of FS processes."""

    def __init__(
        self,
        sim: Clock,
        scheme: SignatureScheme | None = None,
        config: FsoConfig | None = None,
        codec: str | None = None,
    ) -> None:
        self.sim = sim
        self.keystore = KeyStore(
            scheme if scheme is not None else HmacScheme(), codec=codec
        )
        self.registry = FsRegistry()
        self.routes = FsRouteTable()
        self.config = config if config is not None else FsoConfig()
        self.processes: dict[str, FsProcess] = {}

    def make_fail_signal(
        self,
        fs_id: str,
        leader_node: Node,
        follower_node: Node,
        leader_replica: Servant,
        follower_replica: Servant,
        fso_class: type[Fso] = Fso,
        leader_fso_class: type[Fso] | None = None,
        follower_fso_class: type[Fso] | None = None,
    ) -> FsProcess:
        """Build one FS process inside this environment and route its
        logical identity to the wrapper pair."""
        process = make_fail_signal(
            sim=self.sim,
            fs_id=fs_id,
            leader_node=leader_node,
            follower_node=follower_node,
            leader_replica=leader_replica,
            follower_replica=follower_replica,
            keystore=self.keystore,
            registry=self.registry,
            routes=self.routes,
            config=self.config,
            fso_class=fso_class,
            leader_fso_class=leader_fso_class,
            follower_fso_class=follower_fso_class,
        )
        self.processes[fs_id] = process
        return process

    def make_inbox(self, node: Node, key: str) -> FsOutputInbox:
        """Create and activate an unwrapping inbox on ``node``."""
        inbox = FsOutputInbox(self.keystore, self.registry, crypto_costs=node.crypto_costs)
        node.activate(key, inbox)
        return inbox

    def broadcast_signal_destinations(self, destinations) -> None:
        """Point every FS process's fail-signal at the same audience."""
        for process in self.processes.values():
            process.set_signal_destinations(list(destinations))
