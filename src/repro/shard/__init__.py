"""Horizontal scale-out: keyspace-sharded multi-group ordering.

The paper evaluates one fail-signal ordering group; this package
multiplies throughput with group count.  A :class:`ShardRouter`
partitions the keyspace over S independent FS-NewTOP groups
(*shards*), each reusing the existing :class:`repro.core.fso.Fso`
batching path unchanged, and a :class:`CrossShardCoordinator` runs a
two-phase sequence-reservation (Skeen-style: reserve a slot in every
involved shard's total order, commit at the maximum) so multi-key
operations spanning shards get one global order consistent with every
per-shard order.

Layers:

* :mod:`repro.shard.router` -- stable rendezvous (HRW) key->shard
  mapping: re-sizing the shard set only moves the keys it must;
* :mod:`repro.shard.barrier` -- the cross-shard sequencing protocol
  (coordinator plus the per-member holdback agents);
* :mod:`repro.shard.group` -- :class:`ShardedGroup`, the facade that
  makes S groups drivable (and auditable) like one.

The unsharded path is untouched: a spec without a
:class:`repro.experiments.spec.ShardSpec` never builds a router, a
barrier or an agent, and a single-shard (S=1) run is byte-identical to
the unsharded one (asserted by ``tests/shard/test_differential.py``).
"""

from repro.shard.barrier import CrossShardCoordinator, ShardBarrierAgent
from repro.shard.group import ShardedGroup, build_sharded_group
from repro.shard.router import ShardRouter

__all__ = [
    "CrossShardCoordinator",
    "ShardBarrierAgent",
    "ShardRouter",
    "ShardedGroup",
    "build_sharded_group",
]
