"""Stable key->shard routing.

The router uses rendezvous (highest-random-weight) hashing: every
(key, shard) pair gets a deterministic score and a key lives on the
highest-scoring shard.  The property that matters for operations --
and that ``tests/shard/test_router_properties.py`` property-tests --
is *minimal re-mapping under membership churn*: growing the shard set
from S to S+1 moves only the keys the new shard wins (roughly a
1/(S+1) fraction), and shrinking it moves only the removed shard's
keys.  A mod-S mapping would reshuffle almost everything.

Scores are derived from SHA-256, so the mapping is identical on every
machine and Python build (no ``hash()`` randomisation).
"""

from __future__ import annotations

import hashlib
import typing


def _score(key: str, shard: int) -> int:
    digest = hashlib.sha256(f"{key}|shard-{shard}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRouter:
    """Deterministic keyspace partition over ``shards`` groups."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards
        self._memo: dict[str, int] = {}

    def shard_of(self, key: str) -> int:
        """The shard owning ``key`` (rendezvous winner)."""
        owner = self._memo.get(key)
        if owner is None:
            owner = max(range(self.shards), key=lambda s: _score(key, s))
            self._memo[key] = owner
        return owner

    def shards_of(self, keys: typing.Iterable[str]) -> tuple[int, ...]:
        """The sorted set of shards an operation over ``keys`` touches."""
        return tuple(sorted({self.shard_of(key) for key in keys}))

    def owned_keys(self, shard: int, keys: typing.Sequence[str]) -> list[str]:
        """The subset of ``keys`` living on ``shard``, in input order."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range [0, {self.shards})")
        return [key for key in keys if self.shard_of(key) == shard]


def keyspace(size: int) -> list[str]:
    """The canonical keyspace the keyed workloads draw from.

    Key names are zero-padded so lexicographic order equals index
    order -- pools sliced from this list stay deterministic.
    """
    if size < 1:
        raise ValueError(f"keyspace needs at least one key, got {size}")
    return [f"key-{i:04d}" for i in range(size)]
