"""The sharded deployment facade.

A :class:`ShardedGroup` wraps S independent
:class:`~repro.fsnewtop.system.ByzantineTolerantGroup` instances (each
with its own network, PKI environment and member namespace) behind the
single-group API the workloads, the adversary engine and the invariant
monitor already speak: global member ids, index-addressed fault hooks,
aggregated network statistics.  The cross-shard machinery -- router,
coordinator and per-member holdback agents -- is wired here.

**Naming invariant:** a single-shard deployment (S=1) uses the default
group/member/network names, so its construction -- and therefore its
trace stream -- is byte-identical to the unsharded path
(``tests/shard/test_differential.py`` asserts this).  With S > 1,
shard ``s`` gets group name ``shard<s>``, member prefix
``s<s>-member-`` and network ``net-s<s>``, keeping every trace source
globally unique for the oracles.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.shard.barrier import CrossShardCoordinator, ShardBarrierAgent

if typing.TYPE_CHECKING:
    from repro.transport.base import Clock
from repro.shard.router import ShardRouter


@dataclasses.dataclass
class _AggregateStats:
    """Summed traffic counters across every shard network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0


class _AggregateNetwork:
    """Read-only ``.stats`` facade over the per-shard networks."""

    def __init__(self, groups: typing.Sequence) -> None:
        self._groups = groups

    @property
    def stats(self) -> _AggregateStats:
        total = _AggregateStats()
        for group in self._groups:
            stats = group.network.stats
            total.messages_sent += stats.messages_sent
            total.messages_delivered += stats.messages_delivered
            total.messages_dropped += stats.messages_dropped
            total.bytes_sent += stats.bytes_sent
        return total


class ShardedGroup:
    """S independent FS-NewTOP groups drivable (and auditable) as one."""

    #: Duck-typed capability flag: the adversary engine accepts this
    #: group for fail-signal-pair strategies.
    has_fs_pairs = True

    def __init__(
        self, sim: Clock, groups: typing.Sequence, router: ShardRouter
    ) -> None:
        if router.shards != len(groups):
            raise ValueError(
                f"router partitions {router.shards} shards but {len(groups)} "
                f"groups were built"
            )
        self.sim = sim
        self.shard_groups = list(groups)
        self.router = router
        self.network = _AggregateNetwork(self.shard_groups)
        self.member_ids: list[str] = []
        self.member_shard: dict[str, int] = {}
        self._member_group: dict[str, typing.Any] = {}
        for shard, group in enumerate(self.shard_groups):
            for member_id in group.member_ids:
                if member_id in self.member_shard:
                    raise ValueError(f"duplicate member id across shards: {member_id}")
                self.member_ids.append(member_id)
                self.member_shard[member_id] = shard
                self._member_group[member_id] = group
        self.coordinator = CrossShardCoordinator(
            sim, len(self.shard_groups), self._send_protocol
        )
        self._next_op = 0
        self.agents: dict[str, ShardBarrierAgent] = {}
        for shard, group in enumerate(self.shard_groups):
            for index, member_id in enumerate(group.member_ids):
                agent = ShardBarrierAgent(
                    sim, member_id, shard, self.coordinator, is_proxy=(index == 0)
                )
                invocation = group.members[member_id].invocation
                agent.on_deliver = invocation.on_deliver
                invocation.on_deliver = agent.handle
                self.agents[member_id] = agent

    # ------------------------------------------------------------------
    # shard views
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.shard_groups)

    def shard_of_member(self, member: int | str) -> int:
        if isinstance(member, int):
            member = self.member_ids[member]
        return self.member_shard[member]

    def shard_size(self, shard: int) -> int:
        return len(self.shard_groups[shard].member_ids)

    def proxy_of(self, shard: int) -> str:
        """The member whose invocation layer carries protocol traffic
        (and whose holdback agent reports reservation proposals)."""
        return self.shard_groups[shard].member_ids[0]

    # ------------------------------------------------------------------
    # single-group API (global member addressing)
    # ------------------------------------------------------------------
    def member(self, index_or_id: int | str):
        if isinstance(index_or_id, int):
            index_or_id = self.member_ids[index_or_id]
        return self._member_group[index_or_id].members[index_or_id]

    def _group_of(self, index_or_id: int | str):
        if isinstance(index_or_id, int):
            index_or_id = self.member_ids[index_or_id]
        return self._member_group[index_or_id], index_or_id

    def multicast(self, member: int | str, service: str, value: typing.Any) -> None:
        """Multicast within the sender's own shard."""
        group, member_id = self._group_of(member)
        group.multicast(member_id, service, value)

    def deliveries(self, member: int | str) -> list:
        group, member_id = self._group_of(member)
        return group.deliveries(member_id)

    def views(self, member: int | str) -> list:
        group, member_id = self._group_of(member)
        return group.views(member_id)

    def fs_process_of(self, member: int | str):
        group, member_id = self._group_of(member)
        return group.fs_process_of(member_id)

    def byzantine_fso(self, member: int | str, role):
        group, member_id = self._group_of(member)
        return group.byzantine_fso(member_id, role)

    def crash_primary(self, member: int | str) -> None:
        group, member_id = self._group_of(member)
        group.crash_primary(member_id)

    def crash_backup(self, member: int | str) -> None:
        group, member_id = self._group_of(member)
        group.crash_backup(member_id)

    # ------------------------------------------------------------------
    # cross-shard operations
    # ------------------------------------------------------------------
    def submit(
        self, origin: int | str, value: dict, keys: typing.Sequence[str]
    ) -> tuple[int, ...]:
        """Route one keyed operation; returns the shards it touches.

        Single-shard operations go straight into the owning shard's
        ordering service -- from the origin member when it lives there,
        else from the shard proxy.  Multi-shard operations run the
        two-phase barrier.
        """
        involved = self.router.shards_of(keys)
        __, origin_id = self._group_of(origin)
        if len(involved) == 1:
            shard = involved[0]
            sender = origin_id if self.member_shard[origin_id] == shard else self.proxy_of(shard)
            self.multicast(sender, "symmetric_total", value)
            return involved
        op_id = f"x{self._next_op:06d}"
        self._next_op += 1
        self.coordinator.begin(op_id, involved, value)
        return involved

    def _send_protocol(self, shard: int, value: dict) -> None:
        self.multicast(self.proxy_of(shard), "symmetric_total", value)

    def nodes_used(self) -> int:
        return sum(group.nodes_used() for group in self.shard_groups)


def build_sharded_group(
    sim: Clock, spec, transport=None, overrides=None
) -> ShardedGroup:
    """Construct the S-shard deployment a spec's ShardSpec describes.

    Every shard is built through the same
    :func:`repro.experiments.runner.build_ordering_group` path the
    unsharded runner uses, so a single-shard deployment is constructed
    -- argument for argument -- exactly like the unsharded one.

    A live ``transport`` supplies each shard's network (the asyncio
    backend's queue/TCP fabric); ``None`` keeps the simulator-native
    construction byte-identical to before the transport layer existed.
    ``overrides`` (e.g. a calibrated cost model) apply to every shard.
    """
    from repro.experiments.runner import build_ordering_group
    from repro.net.network import Network

    shard_spec = spec.shard
    if shard_spec is None:
        raise ValueError("spec has no ShardSpec; use build_ordering_group")
    if spec.system != "fs-newtop":
        raise ValueError(f"sharding needs the fs-newtop system, got {spec.system!r}")
    shards = shard_spec.shards
    if spec.n_members % shards:
        raise ValueError(
            f"n_members={spec.n_members} is not divisible into {shards} shards"
        )
    per_shard = spec.n_members // shards
    shard_view = spec.replace(n_members=per_shard, shard=None)
    byzantine = spec.byzantine_members
    groups = []
    for shard in range(shards):
        local_byzantine = tuple(
            index - shard * per_shard
            for index in byzantine
            if shard * per_shard <= index < (shard + 1) * per_shard
        )
        shard_overrides: dict[str, typing.Any] = dict(overrides or {})
        shard_overrides["byzantine_members"] = local_byzantine
        net_name = "net" if shards == 1 else f"net-s{shard}"
        if shards > 1:
            shard_overrides["group"] = f"shard{shard}"
            shard_overrides["member_prefix"] = f"s{shard}-member-"
        if transport is not None:
            shard_overrides["network"] = transport.make_network(
                default_delay=spec.delay.build(), name=net_name
            )
        elif shards > 1:
            shard_overrides["network"] = Network(
                sim, default_delay=spec.delay.build(), name=net_name
            )
        groups.append(build_ordering_group(sim, shard_view, **shard_overrides))
    return ShardedGroup(sim, groups, ShardRouter(shards))
