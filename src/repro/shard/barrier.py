"""The cross-shard barrier: two-phase sequence reservation.

A multi-key operation whose keys live on different shards must appear
in one global order consistent with every involved shard's total
order.  The protocol is Skeen-style total-order multicast over groups:

1. **Reserve** -- the coordinator multicasts a ``reserve`` marker for
   the operation through every involved shard's ordering service.
   Each member, on delivering the reserve *in its shard's total
   order*, advances a per-shard logical clock and records the clock
   value as that shard's *proposal* for the operation.  Because the
   clock is driven purely by the shard's ordered stream, every member
   of a shard computes the same proposal.
2. **Commit** -- once the coordinator has the proposal from every
   involved shard (reported by the shard's *proxy*, its first member),
   the final sequence number is the maximum proposal.  The coordinator
   multicasts a ``commit`` carrying the final sequence (and the
   operation's payload) through each involved shard.

Members hold committed operations back and release them to the
application in ``(final_seq, op_id)`` order; an operation is released
only when no reserved-but-uncommitted operation could still commit
with a smaller final sequence (every proposal is a lower bound on its
final sequence).  Since all shards release cross-shard operations in
the same ``(final_seq, op_id)`` order, the global order is consistent
with every per-shard order by construction -- the property the
``cross-shard-order`` oracle (:mod:`repro.invariants.oracles`) checks.

Shard-local traffic never enters the holdback: single-key messages
pass straight through, so a run with no cross-shard operations is
byte-identical to one without the agents installed.

The coordinator is co-located with the shard proxies (its reservation
reports are local calls, its multicasts pay the full ordering cost);
coordinator fault-tolerance is out of scope for this layer.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:
    from repro.transport.base import Clock

#: Marker field distinguishing barrier-protocol payloads from
#: application payloads inside a shard's ordered stream.
PROTOCOL_FIELD = "_xs"


def is_protocol(value: typing.Any) -> bool:
    """Whether a delivered value is barrier-protocol traffic."""
    return isinstance(value, dict) and PROTOCOL_FIELD in value


@dataclasses.dataclass
class _PendingOp:
    """Coordinator-side state of one in-flight cross-shard operation."""

    involved: tuple[int, ...]
    payload: dict
    proposals: dict[int, int] = dataclasses.field(default_factory=dict)
    begun_at: float = 0.0


class CrossShardCoordinator:
    """Runs the two-phase reservation for every cross-shard operation.

    ``send(shard, value)`` must multicast ``value`` through the given
    shard's totally-ordered service (the :class:`ShardedGroup` wires it
    to the shard proxy's invocation layer).
    """

    def __init__(
        self, sim: Clock, shards: int, send: typing.Callable[[int, dict], None]
    ) -> None:
        self.sim = sim
        self.shards = shards
        self._send = send
        self._pending: dict[str, _PendingOp] = {}
        self._corrupt = False
        self.ops_started = 0
        self.ops_committed = 0
        # Live observability: no-ops unless a hub rides the clock.
        from repro.obs.spans import hub_of

        hub = hub_of(sim)
        self._obs_reserves = hub.barrier_reserves
        self._obs_commits = hub.barrier_commits
        self._obs_commit_ms = hub.barrier_commit_ms

    def corrupt_commits(self, on: bool) -> None:
        """Adversary hook (``shard_reorder``): equivocate on the final
        sequence, sending different numbers to different shards.  The
        cross-shard oracle must flag the resulting order divergence."""
        self._corrupt = bool(on)

    # ------------------------------------------------------------------
    # phase 1: reserve
    # ------------------------------------------------------------------
    def begin(self, op_id: str, involved: typing.Sequence[int], payload: dict) -> None:
        """Start the reservation for one multi-shard operation."""
        shards = tuple(sorted(set(involved)))
        if len(shards) < 2:
            raise ValueError(f"op {op_id!r} involves {shards}; use a plain multicast")
        if op_id in self._pending:
            raise ValueError(f"duplicate cross-shard op id {op_id!r}")
        self._pending[op_id] = _PendingOp(
            involved=shards, payload=dict(payload), begun_at=self.sim.now
        )
        self.ops_started += 1
        self._obs_reserves.inc()
        self.sim.trace.record(
            self.sim.now, "shard", "router", "submit", op=op_id, shards=list(shards)
        )
        for shard in shards:
            self._send(shard, {PROTOCOL_FIELD: "reserve", "op": op_id, "g": list(shards)})

    # ------------------------------------------------------------------
    # phase 2: commit at the maximum proposal
    # ------------------------------------------------------------------
    def on_proposal(self, shard: int, op_id: str, proposal: int) -> None:
        """A shard proxy reports its shard's reservation clock value."""
        entry = self._pending.get(op_id)
        if entry is None or shard not in entry.involved:
            return
        entry.proposals.setdefault(shard, proposal)
        if len(entry.proposals) < len(entry.involved):
            return
        final = max(entry.proposals.values())
        del self._pending[op_id]
        self.ops_committed += 1
        self._obs_commits.inc()
        self._obs_commit_ms.observe(self.sim.now - entry.begun_at)
        self.sim.trace.record(
            self.sim.now, "shard", "router", "commit", op=op_id, seq=final
        )
        for rank, target in enumerate(entry.involved):
            seq = final + 17 * rank if self._corrupt else final
            value = {PROTOCOL_FIELD: "commit", "op": op_id, "q": seq}
            value.update(entry.payload)
            self._send(target, value)


class ShardBarrierAgent:
    """One member's holdback stage between its shard's ordered stream
    and the application.

    Installed as the invocation layer's ``on_deliver`` hook; the
    application-facing hook moves to :attr:`on_deliver`.  Non-protocol
    messages pass through untouched (and synchronously), so the agent
    is invisible to runs without cross-shard traffic.
    """

    def __init__(
        self,
        sim: Clock,
        member_id: str,
        shard: int,
        coordinator: CrossShardCoordinator,
        is_proxy: bool = False,
    ) -> None:
        self.sim = sim
        self.member_id = member_id
        self.shard = shard
        self.coordinator = coordinator
        self.is_proxy = is_proxy
        self.on_deliver: typing.Callable | None = None
        self.clock = 0
        #: op -> this shard's proposal, for reserved-not-yet-committed ops.
        self.reserved: dict[str, int] = {}
        #: op -> (final_seq, delivered message), held for release.
        self.committed: dict[str, tuple[int, typing.Any]] = {}
        self.released = 0

    # ------------------------------------------------------------------
    def handle(self, message) -> None:
        """The invocation layer's delivery callback."""
        value = message.value
        if is_protocol(value):
            if value[PROTOCOL_FIELD] == "reserve":
                self._on_reserve(value)
            else:
                self._on_commit(value, message)
            return
        if self.on_deliver is not None:
            self.on_deliver(message)

    # ------------------------------------------------------------------
    def _on_reserve(self, value: dict) -> None:
        op_id = value["op"]
        self.clock += 1
        self.reserved[op_id] = self.clock
        if self.is_proxy:
            self.coordinator.on_proposal(self.shard, op_id, self.clock)

    def _on_commit(self, value: dict, message) -> None:
        op_id = value["op"]
        seq = int(value["q"])
        self.clock = max(self.clock, seq)
        self.reserved.pop(op_id, None)
        self.committed[op_id] = (seq, message)
        self._drain()

    def _drain(self) -> None:
        while self.committed:
            op_id, (seq, message) = min(
                self.committed.items(), key=lambda item: (item[1][0], item[0])
            )
            if self.reserved:
                floor = min(
                    (proposal, pending_op)
                    for pending_op, proposal in self.reserved.items()
                )
                # Any reserved op's final sequence is >= its proposal, so
                # (seq, op_id) below the floor cannot be overtaken.
                if floor <= (seq, op_id):
                    return
            del self.committed[op_id]
            self._release(op_id, seq, message)

    def _release(self, op_id: str, seq: int, message) -> None:
        self.released += 1
        self.sim.trace.record(
            self.sim.now,
            "shard",
            f"{self.member_id}.agent",
            "release",
            op=op_id,
            seq=seq,
            shard=self.shard,
        )
        if self.on_deliver is not None:
            self.on_deliver(
                dataclasses.replace(message, delivered_at=self.sim.now)
            )
