"""The instrumentation half of :mod:`repro.obs`: the hub and spans.

An :class:`ObsHub` pre-builds every instrument the protocol stack
observes into -- signing/verification/countersignature stage latencies
(per signature scheme), batch flush sizes and pipeline-cap deferrals,
cross-shard barrier reserve/commit phases, gateway admission outcomes
and submit-to-delivery latency, asyncio timer lag and the calibration
deadline gauges -- so call sites hold bound instrument references and
the hot path never does a dict lookup.

The hub rides on the run's clock: the runner calls
:func:`install_hub` once, and every component finds it with
:func:`hub_of` at construction time.  A clock without a hub resolves to
:data:`DISABLED_HUB`, a singleton whose instruments are all no-ops --
so instrumented code is unconditional and un-instrumented runs pay one
no-op call per observation point (the ``TraceRecorder`` discipline).
"""

from __future__ import annotations

import typing

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histograms,
)

#: Protocol stages with per-scheme latency histograms.
STAGES = ("sign", "verify", "countersign")


class Span:
    """One timed section: observes ``clock.now`` deltas on exit.

    Durations are in the clock's own unit (virtual ms on the simulator,
    wall-derived virtual ms on the asyncio transport), so the histogram
    never reads wall time itself.
    """

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock: typing.Any) -> None:
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = self._clock.now
        return self

    def __exit__(self, *exc: typing.Any) -> bool:
        self._histogram.observe(self._clock.now - self._start)
        return False


class ObsHub:
    """Every instrument the stack observes into, pre-registered."""

    def __init__(self, enabled: bool = True) -> None:
        self.registry = MetricsRegistry(enabled=enabled)
        registry = self.registry
        # -- fail-signal processors ------------------------------------
        self.fail_signals = registry.counter(
            "repro_fso_fail_signals_total",
            "Fail-signals raised by any wrapper (the paper's detection events)",
        )
        # -- batching layer --------------------------------------------
        self.batch_flush_outputs = registry.histogram(
            "repro_batch_flush_outputs",
            "Outputs per batch flush (amortisation actually achieved)",
        )
        self.batch_deferrals = registry.counter(
            "repro_batch_deferrals_total",
            "Size-triggered flushes deferred by the pipeline inflight cap",
        )
        # -- cross-shard barrier ---------------------------------------
        self.barrier_reserves = registry.counter(
            "repro_shard_barrier_reserve_total",
            "Cross-shard operations entering the two-phase barrier",
        )
        self.barrier_commits = registry.counter(
            "repro_shard_barrier_commit_total",
            "Cross-shard operations committed at their final position",
        )
        self.barrier_commit_ms = registry.histogram(
            "repro_shard_barrier_commit_ms",
            "Barrier reserve-to-commit latency",
        )
        # -- service gateway -------------------------------------------
        self.submit_ms = registry.histogram(
            "repro_gateway_submit_ms",
            "Admitted submit to sequenced delivery latency",
        )
        self._admission: dict[str, Counter] = {}
        # -- replicated application ------------------------------------
        self.app_checkpoint_ms = registry.histogram(
            "repro_app_checkpoint_ms",
            "Checkpoint emission to f+1 matching-certificate quorum latency",
        )
        self.app_transfer_bytes = registry.counter(
            "repro_app_transfer_bytes_total",
            "State-transfer bytes shipped to recovering members",
        )
        # -- transport -------------------------------------------------
        self.timer_lag_ms = registry.histogram(
            "repro_timer_lag_ms",
            "How late asyncio timer callbacks fired vs their deadline",
        )
        self.calibrated_delta_ms = registry.gauge(
            "repro_calibrated_delta_ms",
            "The delta bound this run's detection deadlines derive from",
        )
        self.deadline_margin_ms = registry.gauge(
            "repro_deadline_margin_ms",
            "Calibrated delta minus worst observed timer slack",
        )
        self._stages: dict[str, dict[str, Histogram]] = {s: {} for s in STAGES}

    # -- labelled factories --------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def stage_histogram(self, stage: str, scheme: str) -> Histogram:
        """The latency histogram of one crypto stage for one scheme."""
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}, want one of {STAGES}")
        cache = self._stages[stage]
        histogram = cache.get(scheme)
        if histogram is None:
            histogram = self.registry.histogram(
                f"repro_fso_{stage}_ms",
                f"Wrapper {stage} stage latency, by signature scheme",
                scheme=scheme,
            )
            cache[scheme] = histogram
        return histogram

    def sign_histogram(self, scheme: str) -> Histogram:
        return self.stage_histogram("sign", scheme)

    def verify_histogram(self, scheme: str) -> Histogram:
        return self.stage_histogram("verify", scheme)

    def countersign_histogram(self, scheme: str) -> Histogram:
        return self.stage_histogram("countersign", scheme)

    def admission(self, outcome: str) -> Counter:
        """The admission counter for one outcome (accepted / 401 / 429)."""
        counter = self._admission.get(outcome)
        if counter is None:
            counter = self.registry.counter(
                "repro_gateway_admission_total",
                "Gateway admission decisions, by outcome",
                outcome=outcome,
            )
            self._admission[outcome] = counter
        return counter

    def span(self, histogram: Histogram, clock: typing.Any) -> Span:
        return Span(histogram, clock)

    # -- summaries ------------------------------------------------------
    def summary_metrics(self) -> dict[str, float]:
        """Histogram summaries flattened for the runner's metrics dict.

        Only populated instruments appear, so a run that never touched a
        subsystem (no shards, no gateway) emits no dead columns.
        """
        out: dict[str, float] = {}
        for stage in STAGES:
            populated = [h for h in self._stages[stage].values() if h.count]
            if not populated:
                continue
            merged = merge_histograms(populated)
            out[f"obs_{stage}_count"] = float(merged.count)
            out[f"obs_{stage}_p50_ms"] = merged.percentile(0.5)
            out[f"obs_{stage}_p99_ms"] = merged.percentile(0.99)
            out[f"obs_{stage}_p999_ms"] = merged.percentile(0.999)
        if self.submit_ms.count:
            out["obs_submit_p999_ms"] = self.submit_ms.percentile(0.999)
        if self.timer_lag_ms.count:
            out["obs_timer_lag_p99_ms"] = self.timer_lag_ms.percentile(0.99)
        if self.batch_flush_outputs.count:
            out["obs_batch_flush_p99"] = self.batch_flush_outputs.percentile(0.99)
        if self.batch_deferrals.value:
            out["obs_batch_deferrals"] = float(self.batch_deferrals.value)
        if self.barrier_commit_ms.count:
            out["obs_barrier_commit_p99_ms"] = self.barrier_commit_ms.percentile(0.99)
        if self.app_checkpoint_ms.count:
            out["obs_app_checkpoint_p99_ms"] = self.app_checkpoint_ms.percentile(0.99)
        if self.app_transfer_bytes.value:
            out["obs_app_transfer_bytes"] = float(self.app_transfer_bytes.value)
        return out


#: The hub un-instrumented clocks resolve to: every instrument no-ops.
DISABLED_HUB = ObsHub(enabled=False)


def install_hub(clock: typing.Any, hub: ObsHub) -> ObsHub:
    """Attach a hub to a run's clock (before the group is built, so
    every component's :func:`hub_of` lookup finds it)."""
    clock.obs_hub = hub
    return hub


def hub_of(clock: typing.Any) -> ObsHub:
    """The hub riding on a clock, or :data:`DISABLED_HUB`."""
    hub = getattr(clock, "obs_hub", None)
    return hub if hub is not None else DISABLED_HUB


__all__ = [
    "DISABLED_HUB",
    "Gauge",
    "ObsHub",
    "STAGES",
    "Span",
    "hub_of",
    "install_hub",
]
