"""Clock-agnostic metrics primitives: counters, gauges, histograms.

The registry is the storage half of :mod:`repro.obs`: plain in-process
instruments that cost one attribute lookup and one list index on the
hot path, and *nothing* when disabled.  Nothing here reads a clock --
every observation is a value the caller computed from whatever clock
drives the run (``sim.now`` deltas in simulation, wall-derived virtual
milliseconds on the asyncio transport), so sim and live runs produce
readings in the same unit without a single wall-time read in sim mode
(the same discipline :mod:`repro.service.ratelimit` follows).

Latency histograms are log-bucketed: geometric bucket bounds from
1 microsecond to ~10^4 seconds (factor sqrt(2)), so any recorded
percentile is exact within one bucket width -- under 42% relative
error worst-case, far below the run-to-run variance of the quantities
observed -- while ``observe`` stays O(log buckets) and a snapshot is a
~70-int array instead of a sample list that grows with the run.

Disabling follows the :class:`repro.sim.trace.TraceRecorder` idiom:
``registry.enabled = False`` swaps every instrument's hot method
(``inc`` / ``set`` / ``observe``) for a bound module-level no-op on the
instance, so a disabled registry costs one no-op call per observation
point and allocates nothing.
"""

from __future__ import annotations

import bisect
import math
import typing


def _geometric_bounds(lo: float, hi: float, factor: float) -> tuple[float, ...]:
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


#: Shared histogram bucket upper bounds (milliseconds): 1e-3 .. ~1.4e7,
#: geometric with ratio sqrt(2).  One shared tuple keeps histograms
#: mergeable bucket-for-bucket and the exposition stable across runs.
BUCKET_BOUNDS: tuple[float, ...] = _geometric_bounds(1e-3, 1e7, 2**0.5)


def _noop(*_args: typing.Any, **_kwargs: typing.Any) -> None:
    """Bound in place of an instrument's hot method while disabled."""
    return None


LabelPairs = tuple[tuple[str, str], ...]


class Instrument:
    """Common shape of one named, labelled metric."""

    #: Prometheus family type; subclasses override.
    kind = "untyped"
    #: Hot methods swapped for no-ops while disabled.
    _hot: tuple[str, ...] = ()

    def __init__(self, name: str, help_text: str, labels: LabelPairs) -> None:
        self.name = name
        self.help = help_text
        self.labels = labels

    def _set_enabled(self, enabled: bool) -> None:
        for method in self._hot:
            if enabled:
                self.__dict__.pop(method, None)
            else:
                self.__dict__[method] = _noop

    def _base_snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
        }


class Counter(Instrument):
    """A monotonically increasing count."""

    kind = "counter"
    _hot = ("inc",)

    def __init__(self, name: str, help_text: str, labels: LabelPairs) -> None:
        super().__init__(name, help_text, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        data = self._base_snapshot()
        data["value"] = self.value
        return data


class Gauge(Instrument):
    """A point-in-time value (last write wins)."""

    kind = "gauge"
    _hot = ("set",)

    def __init__(self, name: str, help_text: str, labels: LabelPairs) -> None:
        super().__init__(name, help_text, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        data = self._base_snapshot()
        data["value"] = self.value
        return data


class Histogram(Instrument):
    """A log-bucketed latency distribution.

    ``percentile(q)`` is nearest-rank over the bucket counts: it returns
    the upper bound of the bucket holding the rank-th smallest sample,
    clamped to the largest value actually observed -- always within one
    bucket width of the exact nearest-rank percentile (property-tested
    in ``tests/obs``).
    """

    kind = "histogram"
    _hot = ("observe",)

    def __init__(self, name: str, help_text: str, labels: LabelPairs) -> None:
        super().__init__(name, help_text, labels)
        self.bounds = BUCKET_BOUNDS
        # One extra slot past the last bound: the +Inf overflow bucket.
        self._counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def bucket_of(self, value: float) -> int:
        """Index of the bucket a value lands in (len(bounds) = +Inf)."""
        return bisect.bisect_left(self.bounds, value)

    def bucket_width(self, index: int) -> float:
        """Width of one bucket (infinite for the overflow bucket)."""
        if index >= len(self.bounds):
            return math.inf
        lower = self.bounds[index - 1] if index > 0 else 0.0
        return self.bounds[index] - lower

    def percentile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0,1], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                if index >= len(self.bounds):
                    return self.max_value
                return min(self.bounds[index], self.max_value)
        return self.max_value  # pragma: no cover - counts always sum to count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        Trimmed to the buckets actually reachable (up to the one holding
        the maximum observation) plus the terminal +Inf bucket, so an
        empty histogram renders one line, not seventy.
        """
        out: list[tuple[float, int]] = []
        if self.count:
            last = min(self.bucket_of(self.max_value), len(self.bounds) - 1)
            cumulative = 0
            for index in range(last + 1):
                cumulative += self._counts[index]
                out.append((self.bounds[index], cumulative))
        out.append((math.inf, self.count))
        return out

    def snapshot(self) -> dict:
        data = self._base_snapshot()
        data.update(
            {
                "count": self.count,
                "sum": self.total,
                "min": self.min_value if self.count else 0.0,
                "max": self.max_value if self.count else 0.0,
                "p50": self.percentile(0.5),
                "p99": self.percentile(0.99),
                "p999": self.percentile(0.999),
                "buckets": [
                    [bound if math.isfinite(bound) else "+Inf", cumulative]
                    for bound, cumulative in self.cumulative_buckets()
                ],
            }
        )
        return data


def merge_histograms(histograms: typing.Sequence[Histogram]) -> Histogram:
    """A fresh histogram holding every sample of the inputs.

    All histograms share :data:`BUCKET_BOUNDS`, so merging is a
    bucket-wise sum -- used to aggregate per-scheme stage histograms
    into one distribution for the run summary.
    """
    if not histograms:
        raise ValueError("need at least one histogram to merge")
    merged = Histogram(histograms[0].name, histograms[0].help, ())
    for histogram in histograms:
        for index, bucket_count in enumerate(histogram._counts):
            merged._counts[index] += bucket_count
        merged.count += histogram.count
        merged.total += histogram.total
        merged.min_value = min(merged.min_value, histogram.min_value)
        merged.max_value = max(merged.max_value, histogram.max_value)
    return merged


class MetricsRegistry:
    """Factory and directory for a run's instruments.

    Instruments are deduplicated by ``(name, labels)``: asking twice
    returns the same object, so call sites can grab their instruments
    in ``__init__`` and keep bound references for the hot path.
    ``enabled`` toggles every current and future instrument following
    the ``TraceRecorder`` no-op idiom.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._instruments: dict[tuple[str, LabelPairs], Instrument] = {}
        self._enabled = bool(enabled)

    # -- factories -----------------------------------------------------
    def _get(
        self,
        cls: type,
        name: str,
        help_text: str,
        labels: dict[str, str],
    ) -> typing.Any:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, help_text, key[1])
            instrument._set_enabled(self._enabled)
            self._instruments[key] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "", **labels: str) -> Histogram:
        return self._get(Histogram, name, help_text, labels)

    # -- enable / disable ----------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, flag: bool) -> None:
        self._enabled = bool(flag)
        for instrument in self._instruments.values():
            instrument._set_enabled(self._enabled)

    # -- inspection ----------------------------------------------------
    def instruments(self) -> list[Instrument]:
        """Every instrument, in registration order."""
        return list(self._instruments.values())

    def families(self) -> list[tuple[str, str, str, list[Instrument]]]:
        """Instruments grouped by metric name: ``(name, kind, help,
        members)`` in first-registration order (the exposition shape)."""
        grouped: dict[str, list[Instrument]] = {}
        for instrument in self._instruments.values():
            grouped.setdefault(instrument.name, []).append(instrument)
        return [
            (name, members[0].kind, members[0].help, members)
            for name, members in grouped.items()
        ]

    def snapshot(self) -> dict:
        """The full registry as a JSON-able document (``repro obs``)."""
        return {
            "enabled": self._enabled,
            "metrics": [i.snapshot() for i in self._instruments.values()],
        }
