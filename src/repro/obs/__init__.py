"""Runtime observability: metrics, spans, exposition, flight recorder.

The paper's fail-signal contract is an *operational* claim -- failures
are detected and signalled within measured deadlines -- so a production
deployment needs those deadlines, stage latencies and fail-signal paths
visible while the system runs, not just in post-hoc metrics dicts.
This package is that substrate:

* :mod:`repro.obs.metrics` -- counters, gauges and log-bucketed
  histograms in a :class:`MetricsRegistry`; zero-cost when disabled
  (the ``TraceRecorder`` no-op idiom);
* :mod:`repro.obs.spans` -- the :class:`ObsHub` of pre-built
  instruments riding on the run's clock, plus timing :class:`Span`;
* :mod:`repro.obs.prom` -- Prometheus text exposition (``GET
  /metrics``) and its strict parser;
* :mod:`repro.obs.flight` -- the :class:`FlightRecorder`, bounded
  rings of recent trace records dumped as a postmortem bundle when a
  fail-signal or oracle violation fires.

Everything is clock-driven: observations are deltas of whichever clock
runs the scenario, so simulator and asyncio runs produce readings in
the same (virtual-millisecond) unit and sim mode performs zero
wall-time reads.  See docs/OBSERVABILITY.md for the operator guide.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histograms,
)
from repro.obs.prom import CONTENT_TYPE, parse, render
from repro.obs.spans import (
    DISABLED_HUB,
    ObsHub,
    Span,
    hub_of,
    install_hub,
)

__all__ = [
    "BUCKET_BOUNDS",
    "CONTENT_TYPE",
    "Counter",
    "DISABLED_HUB",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsHub",
    "Span",
    "hub_of",
    "install_hub",
    "merge_histograms",
    "parse",
    "render",
]
