"""The violation flight recorder.

During a healthy audited run this is nothing but bounded ring buffers:
every :class:`~repro.sim.trace.TraceRecord` the live trace stream emits
lands in a per-category ``deque(maxlen=...)``, so memory stays flat no
matter how long the run is.  When something goes wrong -- a wrapper
raises a fail-signal, or an invariant oracle's report comes back with
violations -- :meth:`FlightRecorder.dump` writes a postmortem bundle:

* ``events.jsonl`` -- the retained recent events, time-ordered;
* ``metrics.json`` -- the run's metrics-registry snapshot (histograms
  included), if an :class:`~repro.obs.spans.ObsHub` was installed;
* ``calibration.json`` -- the live calibration result, if any;
* ``spec.json`` -- the scenario spec that produced the run;
* ``report.json`` -- the oracle report, if the run was audited;
* ``manifest.json`` -- what tripped, when, and what the bundle holds.

The bundle directory is timestamped (wall clock -- dumping happens
after the run, off the hot path) and uniquified, so repeated violations
never overwrite each other.
"""

from __future__ import annotations

import collections
import json
import pathlib
import time
import typing

if typing.TYPE_CHECKING:
    from repro.sim.trace import TraceRecord, TraceRecorder

#: Files a complete bundle always contains.
BUNDLE_MANIFEST = "manifest.json"
BUNDLE_EVENTS = "events.jsonl"


class FlightRecorder:
    """Bounded per-category rings of recent trace records."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rings: dict[str, collections.deque] = {}
        self.events_seen = 0
        #: Fail-signal style trip events observed on the stream.
        self.trips: list[dict] = []

    @property
    def tripped(self) -> bool:
        return bool(self.trips)

    # -- the trace listener --------------------------------------------
    def observe(self, record: "TraceRecord") -> None:
        ring = self._rings.get(record.category)
        if ring is None:
            ring = self._rings[record.category] = collections.deque(
                maxlen=self.capacity
            )
        ring.append(record)
        self.events_seen += 1
        if record.event == "fail-signal":
            self.trips.append(
                {
                    "time": record.time,
                    "category": record.category,
                    "source": record.source,
                    "reason": record.detail("reason"),
                }
            )

    def attach(self, trace: "TraceRecorder") -> "FlightRecorder":
        trace.add_listener(self.observe)
        return self

    # -- inspection ----------------------------------------------------
    def recent(self, category: str | None = None) -> list["TraceRecord"]:
        """Retained records, time-ordered (one category or all)."""
        if category is not None:
            return list(self._rings.get(category, ()))
        merged = [r for ring in self._rings.values() for r in ring]
        merged.sort(key=lambda r: r.time)
        return merged

    def categories(self) -> dict[str, int]:
        return {category: len(ring) for category, ring in self._rings.items()}

    # -- the postmortem bundle -----------------------------------------
    def dump(
        self,
        directory: str | pathlib.Path,
        *,
        scenario: str = "run",
        spec: dict | None = None,
        registry: typing.Any = None,
        calibration: typing.Any = None,
        report: dict | None = None,
    ) -> pathlib.Path:
        """Write the postmortem bundle; returns its directory."""
        base = pathlib.Path(directory)
        stamp = time.strftime("%Y%m%d-%H%M%S")
        bundle = base / f"{scenario}-{stamp}"
        suffix = 1
        while bundle.exists():
            suffix += 1
            bundle = base / f"{scenario}-{stamp}-{suffix}"
        bundle.mkdir(parents=True)

        events = self.recent()
        with (bundle / BUNDLE_EVENTS).open("w", encoding="utf-8") as handle:
            for record in events:
                handle.write(
                    json.dumps(
                        {
                            "time": record.time,
                            "category": record.category,
                            "source": record.source,
                            "event": record.event,
                            "details": dict(record.details),
                        },
                        default=repr,
                    )
                )
                handle.write("\n")

        def write_json(name: str, document: typing.Any) -> None:
            (bundle / name).write_text(
                json.dumps(document, indent=2, default=repr) + "\n",
                encoding="utf-8",
            )

        contents = [BUNDLE_MANIFEST, BUNDLE_EVENTS]
        if registry is not None:
            write_json("metrics.json", registry.snapshot())
            contents.append("metrics.json")
        if calibration is not None:
            write_json("calibration.json", calibration.to_dict())
            contents.append("calibration.json")
        if spec is not None:
            write_json("spec.json", spec)
            contents.append("spec.json")
        if report is not None:
            write_json("report.json", report)
            contents.append("report.json")
        write_json(
            BUNDLE_MANIFEST,
            {
                "scenario": scenario,
                "created": stamp,
                "capacity": self.capacity,
                "events_seen": self.events_seen,
                "events_retained": len(events),
                "categories": self.categories(),
                "trips": self.trips,
                "contents": sorted(contents),
            },
        )
        return bundle


__all__ = ["BUNDLE_EVENTS", "BUNDLE_MANIFEST", "FlightRecorder"]
