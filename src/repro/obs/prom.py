"""Prometheus text exposition: render a registry, parse it back.

:func:`render` produces version 0.0.4 text format -- ``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}`` cumulative histogram series
plus ``_sum`` / ``_count`` -- the payload ``GET /metrics`` serves.
:func:`parse` is the inverse used by the round-trip tests and the CI
format check; it is strict (a malformed line raises ``ValueError``),
which is exactly what a format check wants.
"""

from __future__ import annotations

import math
import re
import typing

from repro.obs.metrics import Histogram, MetricsRegistry

#: Content type of the exposition (what ``GET /metrics`` answers with).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(?:\{(.*)\})?"  # optional label block
    r"\s+(\S+)$"  # value
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _labels_text(
    labels: typing.Sequence[tuple[str, str]], extra: tuple[str, str] | None = None
) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".10g")


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else format(bound, ".6g")


def render(registry: MetricsRegistry) -> str:
    """The full registry in Prometheus text format (trailing newline)."""
    lines: list[str] = []
    for name, kind, help_text, instruments in registry.families():
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for instrument in instruments:
            labels = instrument.labels
            if isinstance(instrument, Histogram):
                for bound, cumulative in instrument.cumulative_buckets():
                    le = _labels_text(labels, ("le", _format_bound(bound)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_format_value(instrument.total)}"
                )
                lines.append(f"{name}_count{_labels_text(labels)} {instrument.count}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_labels(block: str | None) -> dict[str, str]:
    if not block:
        return {}
    labels: dict[str, str] = {}
    position = 0
    # Consume the block pair by pair from the start -- anything the
    # pattern cannot account for (stray text, bad label names) raises.
    while position < len(block):
        match = _LABEL_RE.match(block, position)
        if match is None:
            raise ValueError(f"malformed label block {block!r}")
        labels[match.group(1)] = _unescape_label(match.group(2))
        position = match.end()
        if position < len(block):
            if block[position] != ",":
                raise ValueError(f"malformed label block {block!r}")
            position += 1  # a trailing comma is legal exposition
    return labels


def parse(text: str) -> dict[str, dict]:
    """Parse an exposition back into families.

    Returns ``{family_name: {"type", "help", "samples"}}`` where each
    sample is ``(series_name, labels_dict, value)``; ``_bucket`` /
    ``_sum`` / ``_count`` series attach to their histogram family.
    Raises ``ValueError`` on any line that is neither a comment nor a
    well-formed sample -- the CI format check relies on that.
    """
    families: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"malformed comment line {line!r}")
            name = parts[2]
            family = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"malformed TYPE line {line!r}")
                family["type"] = parts[3]
            else:
                family["help"] = parts[3] if len(parts) == 4 else ""
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line {line!r}")
        series, label_block, value_text = match.groups()
        labels = _parse_labels(label_block)
        value = _parse_value(value_text)
        family_name = series
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = series[: -len(suffix)] if series.endswith(suffix) else None
            if trimmed and trimmed in families:
                family_name = trimmed
                break
        family = families.setdefault(
            family_name, {"type": "untyped", "help": "", "samples": []}
        )
        family["samples"].append((series, labels, value))
    return families


__all__ = ["CONTENT_TYPE", "parse", "render"]
