"""JSONL persistence for campaign results.

One :class:`RunRecord` per line; append-only, so interrupted campaigns
keep what they measured and repeated campaigns accumulate repeats.  The
format is deliberately plain -- ``jq``, pandas and the ``report`` CLI
subcommand all read it directly.
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.experiments.campaign import RunRecord


class ResultStore:
    """An append-only JSONL file of run records."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    def append(self, record: RunRecord) -> None:
        self.extend([record])

    def extend(self, records: typing.Iterable[RunRecord]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    def load(self) -> list[RunRecord]:
        """Every record in the file (empty list if it does not exist)."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(RunRecord.from_dict(json.loads(line)))
        return records

    def scenarios(self) -> list[str]:
        return sorted({record.scenario for record in self.load()})
