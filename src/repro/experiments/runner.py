"""Execution of declarative scenario specs.

This module is the single place where a :class:`ScenarioSpec` becomes a
live simulation: it builds the system under test, schedules the fault
plan, drives the workload and flattens the measurements into a
JSON-able metrics dict.  The CLI, the campaign runner and the benchmark
harness all call in here, so their configurations cannot drift.

**Invariants this module maintains** (what the :mod:`repro.invariants`
oracles -- and every cross-run comparison -- are sound against):

* a spec is *complete*: everything that shapes a run (system, sizes,
  delay model, fault plan, adversaries, batching, seed) comes from the
  spec, so equal specs produce bit-identical metrics on any machine and
  worker count;
* measurement runs and audit runs execute the *same* simulation -- the
  only difference is whether the trace recorder is live (listener-only,
  nothing stored) for the oracles to consume; metrics are never read
  from trace state, so auditing cannot perturb what is measured;
* the fault plan is announced to the trace *before* it is applied
  (``adversary``/``faultplan`` records), so the oracles always learn
  which pairs are expected to misbehave no later than the misbehaviour
  itself;
* per-run caches are cleared after every run inside the GC pause, so
  one run's memoised state can never leak into the next run's timings.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.adversary.engine import AdversaryEngine
from repro.analysis.metrics import summarize
from repro.baselines.pbft import PbftCluster
from repro.invariants import AuditConfig, AuditReport, InvariantMonitor, topology_of
from repro.perf import clear_caches, gc_paused
from repro.core.config import FsoConfig
from repro.core.fso import FsoRole
from repro.crypto.costmodel import CryptoCostModel
from repro.experiments.spec import ObsSpec, ScenarioSpec
from repro.fsnewtop.system import ByzantineTolerantGroup
from repro.obs import FlightRecorder, ObsHub, install_hub
from repro.net.network import Network
from repro.newtop.system import CrashTolerantGroup
from repro.shard.group import ShardedGroup, build_sharded_group
from repro.sim.scheduler import Simulator
from repro.transport import (
    SERVICE_FLOOR_MS,
    CalibrationResult,
    Clock,
    Transport,
    build_transport,
    calibrate,
)
from repro.workloads.ordering import (
    ExperimentResult,
    OrderingWorkload,
    ShardedOrderingWorkload,
)

AnyGroup = typing.Union[CrashTolerantGroup, ByzantineTolerantGroup, ShardedGroup]


@dataclasses.dataclass(frozen=True, slots=True)
class RunResult:
    """One scenario run, flattened for storage and aggregation.

    ``metrics`` maps metric name to a float; every system produces the
    shared core (``ordered``, ``throughput_msgs_per_s``,
    ``network_messages``, ``network_bytes``, ``view_changes``) plus the
    system-specific extras (``fail_signals``, ``suspicions``,
    ``latency_mean_ms`` ...).
    """

    spec: ScenarioSpec
    metrics: dict[str, float]

    def to_dict(self) -> dict:
        return {"spec": self.spec.to_dict(), "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            metrics=dict(data["metrics"]),
        )


# ----------------------------------------------------------------------
# fault plan application
# ----------------------------------------------------------------------
def _partition_addresses(group: AnyGroup, members: tuple[int, ...]) -> list[str]:
    """Network addresses backing the given member indices."""
    addresses = []
    for index in members:
        member_id = group.member_ids[index]
        addresses.append(member_id)
        if isinstance(group, ByzantineTolerantGroup) and not group.collapsed:
            addresses.append(f"{member_id}-b")
    return addresses


def _apply_fault(group: AnyGroup, event, app_runtime=None) -> None:
    # Announce the fault to the trace first: the invariant monitor's
    # bookkeeping (which pairs/nodes are *expected* to misbehave) is
    # driven by this stream.
    sim = group.sim
    sim.trace.record(
        sim.now,
        "adversary",
        "fault-plan",
        "faultplan",
        kind=event.kind,
        member=event.member,
        flags=list(event.flags),
        groups=[list(g) for g in event.groups],
        rejoin_at=event.rejoin_at,
    )
    if event.kind == "crash":
        if isinstance(group, ByzantineTolerantGroup):
            group.crash_primary(event.member)
        else:
            group.crash(event.member)
    elif event.kind == "crash_recover":
        # Same node kill as ``crash`` -- the ordering pair stays down --
        # plus a scheduled application-level rejoin via state transfer.
        if app_runtime is None:
            raise ValueError("crash_recover faults need an AppSpec on the scenario")
        if isinstance(group, ByzantineTolerantGroup):
            group.crash_primary(event.member)
        else:
            group.crash(event.member)
        member_id = group.member_ids[event.member]
        app_runtime.mark_crashed(member_id)
        sim.schedule(event.rejoin_at - event.at, app_runtime.start_recovery, member_id)
    elif event.kind == "crash_backup":
        if not isinstance(group, ByzantineTolerantGroup):
            raise ValueError("crash_backup faults need the fs-newtop system")
        group.crash_backup(event.member)
    elif event.kind == "partition":
        groups = [_partition_addresses(group, g) for g in event.groups]
        group.network.partition(*groups)
    elif event.kind == "heal":
        group.network.heal()
    elif event.kind == "byzantine":
        if not isinstance(group, ByzantineTolerantGroup):
            raise ValueError("byzantine faults need the fs-newtop system")
        fso = group.byzantine_fso(event.member, FsoRole.LEADER)
        fso.go_byzantine(**{flag: True for flag in event.flags})
    else:  # pragma: no cover - FaultEvent validates kinds
        raise ValueError(f"unknown fault kind {event.kind!r}")


def _schedule_faults(sim, group: AnyGroup, spec: ScenarioSpec, app_runtime=None) -> None:
    for event in spec.faults:
        sim.schedule(event.at, _apply_fault, group, event, app_runtime)


# ----------------------------------------------------------------------
# transports & calibration
# ----------------------------------------------------------------------
def live_overrides(
    spec: ScenarioSpec, calibration: CalibrationResult | None
) -> dict[str, typing.Any]:
    """Group-constructor overrides a calibrated live run applies.

    The measured cost model replaces the simulator's defaults so charged
    service times track real crypto time, and the calibrated delta
    replaces the cost-model deadline base (batch shape is preserved).
    fs-newtop only -- the other systems sign nothing.
    """
    if calibration is None or spec.system != "fs-newtop":
        return {}
    base = FsoConfig()
    if spec.batching is not None:
        base = FsoConfig(
            batch_max=spec.batching.max_batch,
            batch_delay_ms=spec.batching.max_delay_ms,
            batch_inflight=spec.batching.max_inflight,
        )
    return {
        "crypto_costs": calibration.crypto_cost_model(),
        "fso_config": calibration.fso_config(base),
    }


# ----------------------------------------------------------------------
# ordering systems (newtop / fs-newtop)
# ----------------------------------------------------------------------
def build_ordering_group(
    sim: Clock, spec: ScenarioSpec, **overrides: typing.Any
) -> AnyGroup:
    """Construct the group a spec describes (``newtop``/``fs-newtop``).

    ``overrides`` are forwarded to the group constructor verbatim and
    win over spec-derived arguments -- the escape hatch the ablation
    benchmarks use to pass live cost-model objects.
    """
    if spec.system == "newtop":
        kwargs: dict[str, typing.Any] = dict(
            delay=spec.delay.build(),
            suspectors=spec.suspectors,
            suspector_interval=spec.suspector_interval,
            suspector_timeout=spec.suspector_timeout,
            suspector_max_misses=spec.suspector_max_misses,
        )
        kwargs.update(overrides)
        return CrashTolerantGroup(sim, n_members=spec.n_members, **kwargs)
    if spec.system == "fs-newtop":
        kwargs = dict(
            delay=spec.delay.build(),
            collapsed=spec.collapsed,
            byzantine_members=spec.byzantine_members,
        )
        if spec.crypto is not None:
            # The CryptoSpec picks scheme, signing codec and the sim
            # cost table (the provider's own, unless costs="paper"
            # pins the reference table); crypto_scale composes on top,
            # scaling whichever table was selected.
            kwargs["scheme"] = spec.crypto.scheme()
            kwargs["codec"] = spec.crypto.codec
            crypto_costs = spec.crypto.cost_model()
            if spec.crypto_scale != 1.0:
                crypto_costs = crypto_costs.scaled(spec.crypto_scale)
            kwargs["crypto_costs"] = crypto_costs
        elif spec.crypto_scale != 1.0:
            kwargs["crypto_costs"] = CryptoCostModel().scaled(spec.crypto_scale)
        if spec.batching is not None:
            kwargs["fso_config"] = FsoConfig(
                batch_max=spec.batching.max_batch,
                batch_delay_ms=spec.batching.max_delay_ms,
                batch_inflight=spec.batching.max_inflight,
            )
        kwargs.update(overrides)
        return ByzantineTolerantGroup(sim, n_members=spec.n_members, **kwargs)
    raise ValueError(f"not an ordering system: {spec.system!r}")


def _run_ordering(
    spec: ScenarioSpec,
    monitor_config: AuditConfig | None = None,
    scenario: str | None = None,
    **system_kwargs: typing.Any,
) -> tuple[OrderingWorkload, InvariantMonitor | None, Transport]:
    """Build and run an ordering spec.

    With ``monitor_config`` set this becomes an *audit* run: the trace
    recorder stays live (listeners only -- nothing is stored) and an
    :class:`InvariantMonitor` rides along; call ``monitor.finish()``
    after the run for the report.  Measurement runs keep tracing off.

    The spec's :class:`~repro.experiments.spec.TransportSpec` picks the
    clock: the default simulator path is construction-for-construction
    identical to building the :class:`Simulator` directly, while a live
    transport supplies the network(s), wall-clock timers and (when
    enabled) the host-calibrated deadlines.
    """
    transport = build_transport(
        spec.transport,
        seed=spec.seed,
        codec=spec.crypto.codec if spec.crypto is not None else "canonical",
    )
    sim = transport.clock
    live = spec.transport is not None and spec.transport.live
    monitor = None
    if monitor_config is None:
        sim.trace.enabled = False  # measurement runs do not pay for tracing
    else:
        sim.trace.store = False  # oracles listen; nothing is stored
    # Observability: an explicit ObsSpec wins; otherwise audit runs
    # observe by default and measurement runs do not (the perf gate
    # must see the obs-disabled stack).  Installed before the group is
    # built so every layer's hub_of() lookup finds the instruments.
    obs_spec = spec.obs
    if obs_spec is None and monitor_config is not None:
        obs_spec = ObsSpec()
    hub = None
    flight = None
    if obs_spec is not None and obs_spec.enabled:
        hub = install_hub(sim, ObsHub())
        if obs_spec.flight and monitor_config is not None:
            # The recorder is a trace listener, so it rides the same
            # stream the oracles consume -- audit runs only.
            flight = FlightRecorder(capacity=obs_spec.flight_events).attach(sim.trace)
    calibration = None
    if live and spec.transport.calibrate:
        # A served run puts the whole client fleet on the protocol's
        # loop; start the delta derivation from the loaded floor.
        kwargs = {"tcp": spec.transport.tcp}
        if spec.crypto is not None:
            # Calibrate against the scheme that will actually sign, so
            # the measured deadlines shrink with a faster provider.
            kwargs["scheme"] = spec.crypto.scheme()
        if spec.gateway is not None:
            kwargs["base_delta_ms"] = SERVICE_FLOOR_MS
        calibration = calibrate(**kwargs)
    if hub is not None and calibration is not None:
        hub.calibrated_delta_ms.set(calibration.delta_ms)
    overrides = dict(live_overrides(spec, calibration))
    if spec.shard is not None:
        if system_kwargs:
            raise ValueError(
                "system overrides are not supported on sharded specs "
                f"(got {sorted(system_kwargs)})"
            )
        group: AnyGroup = build_sharded_group(
            sim,
            spec,
            transport=transport if live else None,
            overrides=overrides or None,
        )
    else:
        if live:
            overrides["network"] = transport.make_network(
                default_delay=spec.delay.build()
            )
        overrides.update(system_kwargs)
        group = build_ordering_group(sim, spec, **overrides)
    if monitor_config is not None:
        monitor = InvariantMonitor(
            sim, topology_of(group), config=monitor_config, scenario=scenario
        )
    app_runtime = None
    if spec.app is not None:
        from repro.app.runtime import AppRuntime

        app_runtime = AppRuntime(sim, group, spec.app)
    if spec.gateway is not None:
        from repro.service.workload import ServiceWorkload

        workload: OrderingWorkload = ServiceWorkload(
            sim,
            group,
            spec.gateway,
            message_size=spec.message_size,
            keyspace=spec.shard.keyspace if spec.shard is not None else None,
            kv_ops=spec.app is not None,
        )
    elif spec.shard is not None:
        workload = ShardedOrderingWorkload(
            sim,
            group,
            messages_per_member=spec.messages_per_member,
            interval=spec.interval,
            message_size=spec.message_size,
            service=spec.service,
            write_ratio=spec.write_ratio,
            keyspace=spec.shard.keyspace,
            cross_shard_ratio=spec.shard.cross_shard_ratio,
        )
    else:
        workload = OrderingWorkload(
            sim,
            group,
            messages_per_member=spec.messages_per_member,
            interval=spec.interval,
            message_size=spec.message_size,
            service=spec.service,
            write_ratio=spec.write_ratio,
        )
    if hub is not None and live and obs_spec.http_port is not None:
        # A live run hosts GET /metrics for the duration: scrapeable by
        # an operator (or the CI format check) while the scenario runs.
        # The socket dies with the loop, the same way `repro serve`'s
        # server does; gateway-backed runs also expose /v1/status.
        from repro.service.http import ServiceHttpServer

        metrics_server = ServiceHttpServer(
            sim,
            gateway=getattr(workload, "gateway", None),
            port=obs_spec.http_port,
            hub=hub,
        )

        async def _serve_metrics() -> None:
            await metrics_server.start()
            print(f"obs: GET /metrics on {metrics_server.address}", flush=True)

        sim.add_starter(_serve_metrics)
    _schedule_faults(sim, group, spec, app_runtime)
    if spec.adversaries:
        AdversaryEngine(sim, group, spec.adversaries).install()
    transport.calibration = calibration  # type: ignore[attr-defined]
    transport.app_runtime = app_runtime  # type: ignore[attr-defined]
    transport.obs_hub = hub  # type: ignore[attr-defined]
    transport.obs_spec = obs_spec  # type: ignore[attr-defined]
    transport.flight = flight  # type: ignore[attr-defined]
    try:
        with gc_paused():  # host-time only; see repro.perf
            workload.run(settle_ms=spec.settle_ms)
            # Entries keyed to this run's (now dead) messages would only
            # cause eviction churn in the next run and inflate the final
            # collection; dropping them inside the pause frees by refcount.
            clear_caches()
    finally:
        transport.close()
    return workload, monitor, transport


def transport_metrics(transport: Transport) -> dict[str, float]:
    """Wall-clock observations of a live run, flattened for the report.

    Empty for the simulator.  ``deadline_margin_ms`` is how much of the
    (calibrated) delta bound the worst observed timer slack left unused
    -- the headroom between this run and a spurious fail-signal.
    """
    metrics = dict(transport.wall_metrics())
    if not metrics:
        return metrics
    calibration = getattr(transport, "calibration", None)
    delta = calibration.delta_ms if calibration is not None else FsoConfig().delta
    metrics["calibrated_delta_ms"] = delta
    metrics["deadline_margin_ms"] = delta - metrics.get("timer_slack_max_ms", 0.0)
    return metrics


def obs_metrics(transport: Transport) -> dict[str, float]:
    """Histogram summaries of the run's obs hub, flattened.

    Empty when the run carried no hub.  Also the point where the
    deadline-margin gauge is finalised: the worst timer slack is only
    known once the run is over.
    """
    hub = getattr(transport, "obs_hub", None)
    if hub is None:
        return {}
    wall = transport.wall_metrics()
    if wall:
        delta = hub.calibrated_delta_ms.value or FsoConfig().delta
        hub.deadline_margin_ms.set(delta - wall.get("timer_slack_max_ms", 0.0))
    return hub.summary_metrics()


def app_metrics(transport: Transport) -> dict[str, float]:
    """The replicated application's ``app_*`` metrics, flattened.

    Empty when the spec carried no :class:`~repro.app.spec.AppSpec`.
    """
    runtime = getattr(transport, "app_runtime", None)
    if runtime is None:
        return {}
    return runtime.metrics()


def observe_spec(
    spec: ScenarioSpec, scenario: str | None = None
) -> dict[str, typing.Any]:
    """Run a spec once with observability forced on; return the registry
    snapshot (the ``repro obs --scenario`` backend).

    An explicit :class:`~repro.experiments.spec.ObsSpec` on the spec is
    honoured (re-enabled if switched off); otherwise a default one is
    attached with no HTTP port -- a snapshot run has no scraper.
    """
    if spec.obs is None:
        spec = spec.replace(obs=ObsSpec(http_port=None))
    elif not spec.obs.enabled:
        spec = spec.replace(obs=dataclasses.replace(spec.obs, enabled=True))
    _workload, _monitor, transport = _run_ordering(spec, scenario=scenario)
    hub = getattr(transport, "obs_hub", None)
    if hub is None:
        return {}
    snapshot = hub.registry.snapshot()
    snapshot["summary"] = hub.summary_metrics()
    return snapshot


def run_ordering_spec(
    spec: ScenarioSpec, **system_kwargs: typing.Any
) -> ExperimentResult:
    """Run an ordering spec and return the rich per-run result (the
    interface :func:`repro.workloads.run_ordering_experiment` wraps)."""
    workload, _monitor, _transport = _run_ordering(spec, **system_kwargs)
    return workload.result(spec.system)


def _fs_groups(group: AnyGroup) -> tuple[ByzantineTolerantGroup, ...]:
    """The fail-signal groups backing a run (one, or one per shard)."""
    if isinstance(group, ByzantineTolerantGroup):
        return (group,)
    if isinstance(group, ShardedGroup):
        return tuple(group.shard_groups)
    return ()


def _suspicion_count(group: AnyGroup) -> int:
    fs_groups = _fs_groups(group)
    if fs_groups:
        return sum(
            len(g.member(m).suspector.suspicions_raised)
            for g in fs_groups
            for m in g.member_ids
        )
    return sum(len(s.suspicions_raised) for s in group.suspectors.values())


def _batching_metrics(group: AnyGroup) -> dict[str, float]:
    """Crypto-amortisation counters of a run, summed over every wrapper.

    ``signatures`` counts every signing operation actually performed
    (singles/batches, countersignatures, fail-signals), so
    ``signatures_per_ordered`` is the amortised cost figure a batched
    vs unbatched A/B compares.  All zeros for systems without
    fail-signal pairs.
    """
    fs_groups = _fs_groups(group)
    if not fs_groups:
        return {"signatures": 0.0, "batches_signed": 0.0, "batch_outputs": 0.0,
                "batch_mean_size": 0.0}
    signatures = batches = outputs = 0
    for fs_group in fs_groups:
        for member_id in fs_group.member_ids:
            process = fs_group.members[member_id].fs_process
            for fso in (process.leader, process.follower):
                signatures += fso.signatures_made
                batches += fso.batches_signed
                outputs += fso.batch_outputs_signed
    return {
        "signatures": float(signatures),
        "batches_signed": float(batches),
        "batch_outputs": float(outputs),
        "batch_mean_size": outputs / batches if batches else 0.0,
    }


def _ordering_metrics(workload: OrderingWorkload, result: ExperimentResult) -> dict[str, float]:
    group = workload.group
    view_changes = sum(len(group.views(m)) for m in group.member_ids)
    ordered = float(workload.recorder.fully_delivered(workload.n_members))
    metrics = {
        # Messages ordered at *every* member -- comparable with PBFT's
        # fully-executed request count.
        "ordered": ordered,
        "latency_mean_ms": result.latency.mean,
        "latency_p95_ms": result.latency.p95,
        "completion_mean_ms": result.completion_latency.mean,
        "throughput_msgs_per_s": result.throughput_msgs_per_s,
        "network_messages": float(result.network_messages),
        "network_bytes": float(result.network_bytes),
        "fail_signals": float(result.fail_signals),
        "suspicions": float(_suspicion_count(group)),
        "view_changes": float(view_changes),
    }
    metrics.update(_batching_metrics(group))
    metrics["signatures_per_ordered"] = (
        metrics["signatures"] / ordered if ordered else 0.0
    )
    if isinstance(workload, ShardedOrderingWorkload):
        metrics.update(workload.shard_metrics())
    service_metrics = getattr(workload, "service_metrics", None)
    if service_metrics is not None:
        metrics.update(service_metrics())
    return metrics


# ----------------------------------------------------------------------
# the PBFT comparator
# ----------------------------------------------------------------------
def pbft_fault_budget(n_members: int) -> int:
    """The fault budget a PBFT cluster needs to match an ``n_members``
    (= 2f+1 application replicas) FS-NewTOP group."""
    return max(1, (n_members - 1) // 2)


def _run_pbft(spec: ScenarioSpec) -> dict[str, float]:
    sim = Simulator(seed=spec.seed)
    sim.trace.enabled = False
    network = Network(sim, default_delay=spec.delay.build())
    f = pbft_fault_budget(spec.n_members)
    cluster = PbftCluster(sim, f=f, network=network, view_timeout=spec.view_timeout)

    submitted_at: dict[int, float] = {}
    executed_at: dict[int, dict[str, float]] = {}

    def hook(replica_id: str):
        def on_execute(request) -> None:
            executed_at.setdefault(request.op_id, {})[replica_id] = sim.now

        return on_execute

    for replica_id, replica in cluster.replicas.items():
        replica.on_execute = hook(replica_id)

    for event in spec.faults:
        if event.kind == "crash":
            sim.schedule(event.at, cluster.crash, cluster.replica_ids[event.member])
        elif event.kind == "byzantine":
            sim.schedule(
                event.at, cluster.make_byzantine_silent, cluster.replica_ids[event.member]
            )
        elif event.kind == "partition":
            groups = [
                [cluster.replica_ids[i] for i in g] for g in event.groups
            ]
            sim.schedule(event.at, network.partition, *groups)
        elif event.kind == "heal":
            sim.schedule(event.at, network.heal)
        else:
            raise ValueError(f"fault kind {event.kind!r} unsupported for pbft")

    # Offer the ordering workload's aggregate load as client requests.
    total = spec.messages_per_member * spec.n_members
    spacing = spec.interval / spec.n_members

    def submit() -> None:
        request = cluster.submit({"op": len(submitted_at)})
        submitted_at[request.op_id] = sim.now

    for i in range(total):
        sim.schedule(i * spacing, submit)
    with gc_paused():  # host-time only; see repro.perf
        sim.run(until=total * spacing + spec.settle_ms, max_events=200_000_000)

    ordered = min(len(r.executed) for r in cluster.replicas.values())
    view_changes = sum(r.view_changes for r in cluster.replicas.values())
    # Per-execution latencies (one sample per replica per request) are
    # the analog of the ordering systems' per-delivery latencies;
    # completions (time until the *slowest* replica executed) match
    # their completion latencies.
    per_execution = [
        t - submitted_at[op_id]
        for op_id, times in executed_at.items()
        for t in times.values()
    ]
    completions = []
    last_done: float | None = None
    for op_id, times in executed_at.items():
        if len(times) >= cluster.n:
            done = max(times.values())
            completions.append(done - submitted_at[op_id])
            last_done = done if last_done is None else max(last_done, done)
    first = min(submitted_at.values()) if submitted_at else None
    throughput = 0.0
    if completions and last_done is not None and first is not None and last_done > first:
        throughput = len(completions) / ((last_done - first) / 1000.0)
    # Same summary (and percentile convention) as the ordering systems.
    latency = summarize(per_execution) if per_execution else summarize([0.0])
    completion = summarize(completions) if completions else summarize([0.0])
    return {
        "ordered": float(ordered),
        "latency_mean_ms": latency.mean,
        "latency_p95_ms": latency.p95,
        "completion_mean_ms": completion.mean,
        "throughput_msgs_per_s": throughput,
        "network_messages": float(network.stats.messages_sent),
        "network_bytes": float(network.stats.bytes_sent),
        "fail_signals": 0.0,
        "suspicions": 0.0,
        "view_changes": float(view_changes),
        # The comparator signs nothing; keep the amortisation keys so
        # cross-system tables stay rectangular.
        "signatures": 0.0,
        "batches_signed": 0.0,
        "batch_outputs": 0.0,
        "batch_mean_size": 0.0,
        "signatures_per_ordered": 0.0,
    }


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def run_scenario(spec: ScenarioSpec) -> RunResult:
    """Execute one spec and return its flattened metrics."""
    if spec.system == "pbft":
        return RunResult(spec=spec, metrics=_run_pbft(spec))
    workload, _monitor, transport = _run_ordering(spec)
    result = workload.result(spec.system)
    metrics = _ordering_metrics(workload, result)
    metrics.update(transport_metrics(transport))
    metrics.update(obs_metrics(transport))
    metrics.update(app_metrics(transport))
    return RunResult(spec=spec, metrics=metrics)


@dataclasses.dataclass(frozen=True)
class AuditedRun:
    """One audited scenario run: the usual metrics plus the oracle report.

    ``flight_bundle`` is the postmortem bundle directory the flight
    recorder dumped -- set only when the run tripped (a fail-signal on
    the trace, or a report with violations) while obs was live.
    """

    result: RunResult
    report: AuditReport
    flight_bundle: str | None = None

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "report": self.report.to_dict(),
            "flight_bundle": self.flight_bundle,
        }


def audit_scenario(
    spec: ScenarioSpec,
    config: AuditConfig | None = None,
    scenario: str | None = None,
) -> AuditedRun:
    """Execute one spec under the invariant oracles.

    The run is identical to :func:`run_scenario` except that the trace
    recorder stays live (in listener-only mode) so the
    :mod:`repro.invariants` oracles can consume the event stream; the
    report lands next to the ordinary metrics.  Only the ordering
    systems are auditable -- the PBFT comparator exposes neither the
    fail-signal hooks nor the app-level trace stream.
    """
    if spec.system == "pbft":
        raise ValueError("audit runs need an ordering system (newtop / fs-newtop)")
    audit_config = config if config is not None else AuditConfig()
    workload, monitor, transport = _run_ordering(
        spec, monitor_config=audit_config, scenario=scenario
    )
    assert monitor is not None
    result = workload.result(spec.system)
    metrics = _ordering_metrics(workload, result)
    metrics.update(transport_metrics(transport))
    metrics.update(obs_metrics(transport))
    metrics.update(app_metrics(transport))
    report = monitor.finish()
    bundle = None
    flight = getattr(transport, "flight", None)
    if flight is not None and (flight.tripped or not report.ok):
        obs_spec = getattr(transport, "obs_spec", None) or ObsSpec()
        hub = getattr(transport, "obs_hub", None)
        bundle = str(
            flight.dump(
                obs_spec.flight_dir,
                scenario=scenario or spec.system,
                spec=spec.to_dict(),
                registry=hub.registry if hub is not None else None,
                calibration=getattr(transport, "calibration", None),
                report=report.to_dict(),
            )
        )
    return AuditedRun(
        result=RunResult(spec=spec, metrics=metrics),
        report=report,
        flight_bundle=bundle,
    )
