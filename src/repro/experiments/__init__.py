"""Declarative scenarios and the parallel campaign runner.

This package turns the repository's hand-rolled experiment scripts into
a declarative engine:

* :mod:`repro.experiments.spec` -- :class:`ScenarioSpec`, a value-only
  description of one run (system, group size, workload, delay model,
  fault plan, crypto scale, seed);
* :mod:`repro.experiments.registry` -- the catalogue of named
  :class:`Scenario` definitions (the paper's Figures 6-8 plus
  beyond-the-paper stress scenarios), each a base spec with a sweep
  grid;
* :mod:`repro.experiments.runner` -- :func:`run_scenario`, the single
  place where a spec becomes a live simulation;
* :mod:`repro.experiments.campaign` -- :class:`Campaign`, which expands
  (system x sweep x repeat) grids and executes them in parallel with
  per-run deterministic seeds;
* :mod:`repro.experiments.store` -- an append-only JSONL
  :class:`ResultStore` feeding :mod:`repro.analysis` aggregation.

Quick tour::

    from repro.experiments import Campaign, ResultStore, get_scenario

    campaign = Campaign(get_scenario("fig7_throughput"), repeats=4)
    records = campaign.execute(jobs=4, store=ResultStore("results.jsonl"))
"""

from repro.experiments.campaign import (
    Campaign,
    RunRecord,
    RunTask,
    clamp_jobs,
    derive_seed,
)
from repro.experiments.registry import (
    Scenario,
    SweepPoint,
    UnknownScenarioError,
    get_scenario,
    register,
    scenario_names,
    scenarios,
)
from repro.experiments.runner import (
    AuditedRun,
    RunResult,
    audit_scenario,
    build_ordering_group,
    observe_spec,
    pbft_fault_budget,
    run_ordering_spec,
    run_scenario,
)
from repro.experiments.spec import (
    CALM_LAN,
    SPIKY_NET,
    BatchingSpec,
    DelaySpec,
    FaultEvent,
    ObsSpec,
    ScenarioSpec,
    ShardSpec,
    TransportSpec,
)
from repro.experiments.store import ResultStore

__all__ = [
    "AuditedRun",
    "BatchingSpec",
    "CALM_LAN",
    "Campaign",
    "DelaySpec",
    "FaultEvent",
    "ObsSpec",
    "ResultStore",
    "RunRecord",
    "RunResult",
    "RunTask",
    "SPIKY_NET",
    "Scenario",
    "ScenarioSpec",
    "ShardSpec",
    "SweepPoint",
    "TransportSpec",
    "UnknownScenarioError",
    "audit_scenario",
    "build_ordering_group",
    "clamp_jobs",
    "derive_seed",
    "get_scenario",
    "observe_spec",
    "pbft_fault_budget",
    "register",
    "run_ordering_spec",
    "run_scenario",
    "scenario_names",
    "scenarios",
]
