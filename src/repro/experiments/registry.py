"""The scenario catalogue.

Every experiment this repository knows how to run -- the paper's
Figures 6-8, the PBFT comparator, and the beyond-the-paper stress
scenarios -- is registered here as a :class:`Scenario`: a base
:class:`ScenarioSpec`, the systems to compare, and a sweep grid of
parameter overrides.  The CLI (``python -m repro run/campaign``), the
campaign runner and the benchmark harness all expand their
configurations from this registry, so there is exactly one definition
of what, say, "fig7_throughput" means.

See ``docs/SCENARIOS.md`` for the prose catalogue.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.experiments.spec import (
    SPIKY_NET,
    DelaySpec,
    FaultEvent,
    ScenarioSpec,
)


class UnknownScenarioError(ValueError):
    """Raised when a scenario name is not in the registry."""


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point: an x-axis label plus the spec fields it overrides."""

    label: typing.Any
    overrides: dict[str, typing.Any]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, sweepable experiment definition.

    ``sweep`` holds at least one :class:`SweepPoint`; expanding the
    scenario crosses every point with every system in ``systems``.
    ``figure`` names the paper figure the scenario reproduces (``None``
    for beyond-the-paper scenarios) and ``expected`` states the
    qualitative result a healthy run shows.
    """

    name: str
    title: str
    description: str
    base: ScenarioSpec
    systems: tuple[str, ...]
    sweep_axis: str
    sweep: tuple[SweepPoint, ...]
    figure: str | None = None
    expected: str = ""
    #: Per-system spec adjustments applied before the sweep point's
    #: overrides (which win on conflict) -- e.g. a comparator system
    #: offered a different load.
    system_overrides: dict[str, dict] = dataclasses.field(default_factory=dict)

    def labels(self) -> list:
        return [point.label for point in self.sweep]

    def spec_for(self, system: str, point: SweepPoint) -> ScenarioSpec:
        if system not in self.systems:
            raise ValueError(f"scenario {self.name!r} does not run system {system!r}")
        overrides = dict(self.system_overrides.get(system, {}))
        overrides.update(point.overrides)
        return self.base.replace(system=system, **overrides)

    def expand(
        self, systems: typing.Sequence[str] | None = None
    ) -> list[tuple[str, typing.Any, ScenarioSpec]]:
        """Every (system, x-label, spec) combination of the grid."""
        chosen = tuple(systems) if systems is not None else self.systems
        return [
            (system, point.label, self.spec_for(system, point))
            for system in chosen
            for point in self.sweep
        ]


# ----------------------------------------------------------------------
# registry machinery
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario; duplicate names are a programming error."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario or raise :class:`UnknownScenarioError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def scenarios() -> list[Scenario]:
    return [_REGISTRY[name] for name in scenario_names()]


def _points(axis_field: str, values: typing.Iterable) -> tuple[SweepPoint, ...]:
    return tuple(SweepPoint(label=v, overrides={axis_field: v}) for v in values)


# ----------------------------------------------------------------------
# the paper's evaluation (section 4)
# ----------------------------------------------------------------------
register(
    Scenario(
        name="fig6_latency",
        title="Figure 6: symmetric total-order latency vs group size",
        description=(
            "Groups of 2..10 members, each multicasting small (3-byte) "
            "messages at a paced 500ms interval; ordering latency of "
            "NewTOP vs FS-NewTOP."
        ),
        figure="Fig. 6",
        expected=(
            "FS-NewTOP latency above NewTOP at every size; both grow with "
            "group size; the absolute deficit widens as the group grows."
        ),
        base=ScenarioSpec(
            n_members=2,
            messages_per_member=8,
            interval=500.0,
            message_size=3,
        ),
        systems=("newtop", "fs-newtop"),
        sweep_axis="members",
        sweep=_points("n_members", range(2, 11)),
    )
)

register(
    Scenario(
        name="fig7_throughput",
        title="Figure 7: throughput vs group size (small messages)",
        description=(
            "Groups of 2..15 streaming 3-byte messages every 70ms per "
            "member; ordered messages per second for NewTOP, FS-NewTOP "
            "and the matched-fault-budget 3f+1 PBFT-style comparator "
            "(offered half the per-member load: once its view timeout "
            "starts churning under backlog, each view change re-ships "
            "every pending request, and full-load runs at large f are "
            "prohibitively slow to simulate -- the collapse is "
            "qualitative either way)."
        ),
        figure="Fig. 7",
        expected=(
            "Throughput rises from n=2 before contention wins; NewTOP "
            "peaks near the 10-thread request pool and stays on top; "
            "FS-NewTOP tracks below it; PBFT keeps pace with the "
            "offered load mid-range but collapses past the tail once "
            "its view timeout churns under backlog -- at the largest "
            "group the ordering is NewTOP >= FS-NewTOP >= PBFT."
        ),
        base=ScenarioSpec(
            n_members=2,
            messages_per_member=8,
            interval=70.0,
            message_size=3,
        ),
        systems=("newtop", "fs-newtop", "pbft"),
        sweep_axis="members",
        sweep=_points("n_members", range(2, 16)),
        system_overrides={"pbft": {"messages_per_member": 4}},
    )
)

register(
    Scenario(
        name="fig8_message_size",
        title="Figure 8: throughput vs message size (10 members)",
        description=(
            "A fixed 10-member group; message payloads swept 0..10 KB; "
            "throughput of both systems."
        ),
        figure="Fig. 8",
        expected=(
            "Throughput falls with message size for both systems; the "
            "FS-NewTOP deficit stays roughly constant (signing cost is "
            "size-insensitive apart from digesting)."
        ),
        base=ScenarioSpec(
            n_members=10,
            messages_per_member=6,
            interval=70.0,
        ),
        systems=("newtop", "fs-newtop"),
        sweep_axis="size_kb",
        sweep=tuple(
            SweepPoint(label=kb, overrides={"message_size": kb * 1024})
            for kb in range(0, 11)
        ),
    )
)

register(
    Scenario(
        name="pbft_head_to_head",
        title="E6: FS-NewTOP (4f+2 nodes) vs PBFT-style baseline (3f+1 nodes)",
        description=(
            "Six requests against f=1 deployments of both Byzantine-"
            "tolerant designs, on a calm LAN and on a spiky net whose "
            "delays exceed PBFT's view timeout."
        ),
        figure="Section 1 / E6",
        expected=(
            "Both order everything on the calm net; on the spiky net "
            "PBFT churns through view changes (its liveness timeout "
            "bites) while FS-NewTOP keeps ordering with zero signals."
        ),
        base=ScenarioSpec(
            n_members=3,
            messages_per_member=2,
            interval=450.0,
            seed=2,
            settle_ms=60_000.0,
        ),
        systems=("pbft", "fs-newtop"),
        sweep_axis="network",
        sweep=(
            SweepPoint(
                label="calm",
                overrides={
                    "delay": DelaySpec(kind="uniform", low=0.3, high=1.2),
                    "view_timeout": 500.0,
                },
            ),
            SweepPoint(
                label="spiky",
                overrides={"delay": SPIKY_NET, "view_timeout": 100.0},
            ),
        ),
    )
)

# ----------------------------------------------------------------------
# beyond the paper: stress and diversity scenarios
# ----------------------------------------------------------------------
register(
    Scenario(
        name="byzantine_flood",
        title="Byzantine flood: a faulty member attacks mid-run",
        description=(
            "A 4-member FS-NewTOP group streams messages every 60ms; at "
            "t=300ms member 0's leader wrapper turns Byzantine (the sweep "
            "selects the manifestation). The FS pair must convert the "
            "attack into an authenticated fail-signal and the survivors "
            "must keep ordering."
        ),
        expected=(
            "fail_signals > 0, survivors install a 3-member view, and "
            "ordering continues -- no Byzantine manifestation escapes "
            "the pair."
        ),
        base=ScenarioSpec(
            system="fs-newtop",
            n_members=4,
            messages_per_member=12,
            interval=60.0,
            collapsed=False,
            settle_ms=30_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="fault",
        sweep=tuple(
            SweepPoint(
                label=flag,
                overrides={
                    "faults": (
                        FaultEvent(at=300.0, kind="byzantine", member=0, flags=(flag,)),
                    )
                },
            )
            for flag in ("corrupt_outputs", "mute_lan", "forge_signature")
        ),
    )
)

register(
    Scenario(
        name="partition_heal",
        title="Partition and heal: a 6-member group splits in two",
        description=(
            "A NewTOP group with ping suspectors is partitioned 3|3 at "
            "t=500ms and healed at t=2500ms while every member keeps "
            "multicasting. Timeout-based suspicion converts the partition "
            "into disjoint views."
        ),
        expected=(
            "suspicions and view changes fire during the partition; each "
            "half keeps ordering internally; fewer messages reach full "
            "(all-6) completion than were sent."
        ),
        base=ScenarioSpec(
            system="newtop",
            n_members=6,
            messages_per_member=20,
            interval=150.0,
            suspectors=True,
            faults=(
                FaultEvent(at=500.0, kind="partition", groups=((0, 1, 2), (3, 4, 5))),
                FaultEvent(at=2500.0, kind="heal"),
            ),
            settle_ms=20_000.0,
        ),
        systems=("newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="3|3", overrides={}),),
    )
)

register(
    Scenario(
        name="churn",
        title="Member churn: staggered departures under load",
        description=(
            "An 8-member NewTOP group with suspectors loses members 7, 6 "
            "and 5 to crashes at 400/900/1400ms while the survivors keep "
            "streaming messages every 150ms."
        ),
        expected=(
            "each departure is detected and converted into a view change; "
            "the surviving 5 members keep ordering throughout."
        ),
        base=ScenarioSpec(
            system="newtop",
            n_members=8,
            messages_per_member=12,
            interval=150.0,
            suspectors=True,
            faults=(
                FaultEvent(at=400.0, kind="crash", member=7),
                FaultEvent(at=900.0, kind="crash", member=6),
                FaultEvent(at=1400.0, kind="crash", member=5),
            ),
            settle_ms=20_000.0,
        ),
        systems=("newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="3-crashes", overrides={}),),
    )
)

register(
    Scenario(
        name="mixed_rw",
        title="Mixed read/write load: cheap reads dilute ordered writes",
        description=(
            "A 6-member group where only a fraction of sends need total "
            "order (writes); the rest go through the reliable-FIFO service "
            "(reads). The sweep lowers the write ratio from 1.0 to 0.25."
        ),
        expected=(
            "mean latency falls and throughput rises as the write ratio "
            "drops, for both systems -- ordered multicast is the "
            "expensive part."
        ),
        base=ScenarioSpec(
            n_members=6,
            messages_per_member=10,
            interval=80.0,
        ),
        systems=("newtop", "fs-newtop"),
        sweep_axis="write_ratio",
        sweep=_points("write_ratio", (1.0, 0.5, 0.25)),
    )
)
