"""The scenario catalogue.

Every experiment this repository knows how to run -- the paper's
Figures 6-8, the PBFT comparator, and the beyond-the-paper stress
scenarios -- is registered here as a :class:`Scenario`: a base
:class:`ScenarioSpec`, the systems to compare, and a sweep grid of
parameter overrides.  The CLI (``python -m repro run/campaign``), the
campaign runner and the benchmark harness all expand their
configurations from this registry, so there is exactly one definition
of what, say, "fig7_throughput" means.

See ``docs/SCENARIOS.md`` for the prose catalogue.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.adversary.spec import AdversarySpec, both, intermittent, seq
from repro.app.spec import AppSpec
from repro.crypto.provider import CryptoSpec
from repro.experiments.spec import (
    SPIKY_NET,
    BatchingSpec,
    DelaySpec,
    FaultEvent,
    ScenarioSpec,
    ShardSpec,
)
from repro.service.spec import ServiceSpec


class UnknownScenarioError(ValueError):
    """Raised when a scenario name is not in the registry."""


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point: an x-axis label plus the spec fields it overrides."""

    label: typing.Any
    overrides: dict[str, typing.Any]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, sweepable experiment definition.

    ``sweep`` holds at least one :class:`SweepPoint`; expanding the
    scenario crosses every point with every system in ``systems``.
    ``figure`` names the paper figure the scenario reproduces (``None``
    for beyond-the-paper scenarios) and ``expected`` states the
    qualitative result a healthy run shows.
    """

    name: str
    title: str
    description: str
    base: ScenarioSpec
    systems: tuple[str, ...]
    sweep_axis: str
    sweep: tuple[SweepPoint, ...]
    figure: str | None = None
    expected: str = ""
    #: Per-system spec adjustments applied before the sweep point's
    #: overrides (which win on conflict) -- e.g. a comparator system
    #: offered a different load.
    system_overrides: dict[str, dict] = dataclasses.field(default_factory=dict)

    def labels(self) -> list:
        return [point.label for point in self.sweep]

    def spec_for(self, system: str, point: SweepPoint) -> ScenarioSpec:
        if system not in self.systems:
            raise ValueError(f"scenario {self.name!r} does not run system {system!r}")
        overrides = dict(self.system_overrides.get(system, {}))
        overrides.update(point.overrides)
        return self.base.replace(system=system, **overrides)

    def expand(
        self, systems: typing.Sequence[str] | None = None
    ) -> list[tuple[str, typing.Any, ScenarioSpec]]:
        """Every (system, x-label, spec) combination of the grid."""
        chosen = tuple(systems) if systems is not None else self.systems
        return [
            (system, point.label, self.spec_for(system, point))
            for system in chosen
            for point in self.sweep
        ]


# ----------------------------------------------------------------------
# registry machinery
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario; duplicate names are a programming error."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario or raise :class:`UnknownScenarioError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def scenarios() -> list[Scenario]:
    return [_REGISTRY[name] for name in scenario_names()]


def _points(axis_field: str, values: typing.Iterable) -> tuple[SweepPoint, ...]:
    return tuple(SweepPoint(label=v, overrides={axis_field: v}) for v in values)


# ----------------------------------------------------------------------
# the paper's evaluation (section 4)
# ----------------------------------------------------------------------
register(
    Scenario(
        name="fig6_latency",
        title="Figure 6: symmetric total-order latency vs group size",
        description=(
            "Groups of 2..10 members, each multicasting small (3-byte) "
            "messages at a paced 500ms interval; ordering latency of "
            "NewTOP vs FS-NewTOP."
        ),
        figure="Fig. 6",
        expected=(
            "FS-NewTOP latency above NewTOP at every size; both grow with "
            "group size; the absolute deficit widens as the group grows."
        ),
        base=ScenarioSpec(
            n_members=2,
            messages_per_member=8,
            interval=500.0,
            message_size=3,
        ),
        systems=("newtop", "fs-newtop"),
        sweep_axis="members",
        sweep=_points("n_members", range(2, 11)),
    )
)

register(
    Scenario(
        name="fig7_throughput",
        title="Figure 7: throughput vs group size (small messages)",
        description=(
            "Groups of 2..15 streaming 3-byte messages every 70ms per "
            "member; ordered messages per second for NewTOP, FS-NewTOP "
            "and the matched-fault-budget 3f+1 PBFT-style comparator "
            "(offered half the per-member load: once its view timeout "
            "starts churning under backlog, each view change re-ships "
            "every pending request, and full-load runs at large f are "
            "prohibitively slow to simulate -- the collapse is "
            "qualitative either way)."
        ),
        figure="Fig. 7",
        expected=(
            "Throughput rises from n=2 before contention wins; NewTOP "
            "peaks near the 10-thread request pool and stays on top; "
            "FS-NewTOP tracks below it; PBFT keeps pace with the "
            "offered load mid-range but collapses past the tail once "
            "its view timeout churns under backlog -- at the largest "
            "group the ordering is NewTOP >= FS-NewTOP >= PBFT."
        ),
        base=ScenarioSpec(
            n_members=2,
            messages_per_member=8,
            interval=70.0,
            message_size=3,
        ),
        systems=("newtop", "fs-newtop", "pbft"),
        sweep_axis="members",
        sweep=_points("n_members", range(2, 16)),
        system_overrides={"pbft": {"messages_per_member": 4}},
    )
)

register(
    Scenario(
        name="fig8_message_size",
        title="Figure 8: throughput vs message size (10 members)",
        description=(
            "A fixed 10-member group; message payloads swept 0..10 KB; "
            "throughput of both systems."
        ),
        figure="Fig. 8",
        expected=(
            "Throughput falls with message size for both systems; the "
            "FS-NewTOP deficit stays roughly constant (signing cost is "
            "size-insensitive apart from digesting)."
        ),
        base=ScenarioSpec(
            n_members=10,
            messages_per_member=6,
            interval=70.0,
        ),
        systems=("newtop", "fs-newtop"),
        sweep_axis="size_kb",
        sweep=tuple(
            SweepPoint(label=kb, overrides={"message_size": kb * 1024})
            for kb in range(0, 11)
        ),
    )
)

register(
    Scenario(
        name="pbft_head_to_head",
        title="E6: FS-NewTOP (4f+2 nodes) vs PBFT-style baseline (3f+1 nodes)",
        description=(
            "Six requests against f=1 deployments of both Byzantine-"
            "tolerant designs, on a calm LAN and on a spiky net whose "
            "delays exceed PBFT's view timeout."
        ),
        figure="Section 1 / E6",
        expected=(
            "Both order everything on the calm net; on the spiky net "
            "PBFT churns through view changes (its liveness timeout "
            "bites) while FS-NewTOP keeps ordering with zero signals."
        ),
        base=ScenarioSpec(
            n_members=3,
            messages_per_member=2,
            interval=450.0,
            seed=2,
            settle_ms=60_000.0,
        ),
        systems=("pbft", "fs-newtop"),
        sweep_axis="network",
        sweep=(
            SweepPoint(
                label="calm",
                overrides={
                    "delay": DelaySpec(kind="uniform", low=0.3, high=1.2),
                    "view_timeout": 500.0,
                },
            ),
            SweepPoint(
                label="spiky",
                overrides={"delay": SPIKY_NET, "view_timeout": 100.0},
            ),
        ),
    )
)

# ----------------------------------------------------------------------
# beyond the paper: stress and diversity scenarios
# ----------------------------------------------------------------------
register(
    Scenario(
        name="byzantine_flood",
        title="Byzantine flood: a faulty member attacks mid-run",
        description=(
            "A 4-member FS-NewTOP group streams messages every 60ms; at "
            "t=300ms member 0's leader wrapper turns Byzantine (the sweep "
            "selects the manifestation). The FS pair must convert the "
            "attack into an authenticated fail-signal and the survivors "
            "must keep ordering."
        ),
        expected=(
            "fail_signals > 0, survivors install a 3-member view, and "
            "ordering continues -- no Byzantine manifestation escapes "
            "the pair."
        ),
        base=ScenarioSpec(
            system="fs-newtop",
            n_members=4,
            messages_per_member=12,
            interval=60.0,
            collapsed=False,
            settle_ms=30_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="fault",
        sweep=tuple(
            SweepPoint(
                label=flag,
                overrides={
                    "faults": (
                        FaultEvent(at=300.0, kind="byzantine", member=0, flags=(flag,)),
                    )
                },
            )
            for flag in ("corrupt_outputs", "mute_lan", "forge_signature")
        ),
    )
)

register(
    Scenario(
        name="partition_heal",
        title="Partition and heal: a 6-member group splits in two",
        description=(
            "A NewTOP group with ping suspectors is partitioned 3|3 at "
            "t=500ms and healed at t=2500ms while every member keeps "
            "multicasting. Timeout-based suspicion converts the partition "
            "into disjoint views."
        ),
        expected=(
            "suspicions and view changes fire during the partition; each "
            "half keeps ordering internally; fewer messages reach full "
            "(all-6) completion than were sent."
        ),
        base=ScenarioSpec(
            system="newtop",
            n_members=6,
            messages_per_member=20,
            interval=150.0,
            suspectors=True,
            faults=(
                FaultEvent(at=500.0, kind="partition", groups=((0, 1, 2), (3, 4, 5))),
                FaultEvent(at=2500.0, kind="heal"),
            ),
            settle_ms=20_000.0,
        ),
        systems=("newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="3|3", overrides={}),),
    )
)

register(
    Scenario(
        name="churn",
        title="Member churn: staggered departures under load",
        description=(
            "An 8-member NewTOP group with suspectors loses members 7, 6 "
            "and 5 to crashes at 400/900/1400ms while the survivors keep "
            "streaming messages every 150ms."
        ),
        expected=(
            "each departure is detected and converted into a view change; "
            "the surviving 5 members keep ordering throughout."
        ),
        base=ScenarioSpec(
            system="newtop",
            n_members=8,
            messages_per_member=12,
            interval=150.0,
            suspectors=True,
            faults=(
                FaultEvent(at=400.0, kind="crash", member=7),
                FaultEvent(at=900.0, kind="crash", member=6),
                FaultEvent(at=1400.0, kind="crash", member=5),
            ),
            settle_ms=20_000.0,
        ),
        systems=("newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="3-crashes", overrides={}),),
    )
)

# ----------------------------------------------------------------------
# adversarial scenarios: the composable adversary engine under the
# invariant oracles (`repro audit --scenario adv_*`)
# ----------------------------------------------------------------------
#: Common base for the single-pair adversarial audits: a small
#: figure-4-layout group streaming fast enough that every misbehaviour
#: manifests repeatedly inside its window.
_ADV_BASE = ScenarioSpec(
    system="fs-newtop",
    n_members=4,
    messages_per_member=10,
    interval=60.0,
    collapsed=False,
    settle_ms=15_000.0,
)


def _register_adversarial(
    name: str,
    title: str,
    description: str,
    expected: str,
    adversaries: tuple[AdversarySpec, ...],
    base: ScenarioSpec = _ADV_BASE,
) -> None:
    register(
        Scenario(
            name=name,
            title=title,
            description=description,
            expected=expected,
            base=base.replace(adversaries=adversaries),
            systems=("fs-newtop",),
            sweep_axis="variant",
            sweep=(SweepPoint(label="audited", overrides={}),),
        )
    )


_register_adversarial(
    "adv_equivocation",
    "Adversary: equivocation / double-send",
    "Member 0's leader Compare double-sends conflicting signed "
    "candidates for every slot from t=300ms.",
    "the peer holds double-sign evidence (or an output mismatch) and "
    "fail-signals; no conflicting value reaches the environment.",
    (AdversarySpec(kind="equivocate", at=300.0, member=0),),
)

_register_adversarial(
    "adv_replay",
    "Adversary: stale-message replay",
    "Member 0's leader Compare re-sends its first signed candidate in "
    "place of every later one from t=300ms.",
    "the live comparison starves, the section 2.2 timeout fires and the "
    "pair fail-signals; stale copies pair with nothing.",
    (AdversarySpec(kind="replay", at=300.0, member=0),),
)

_register_adversarial(
    "adv_selective_mute",
    "Adversary: selective per-peer mute",
    "Member 0's leader keeps ordering but stops forwarding its "
    "single-signed candidates to its peer from t=300ms.",
    "the peer's compare timeout fires; ordering traffic alone cannot "
    "mask a silent Compare.",
    (AdversarySpec(kind="selective_mute", at=300.0, member=0),),
)

_register_adversarial(
    "adv_tamper_signature",
    "Adversary: signature tampering",
    "Member 0's leader forges its peer's signature on candidates from "
    "t=300ms (A5 says it cannot get away with it).",
    "every forged single is rejected by verification and the pair is "
    "converted into a fail-signal.",
    (AdversarySpec(kind="tamper_signature", at=300.0, member=0),),
)

_register_adversarial(
    "adv_scramble_burst",
    "Adversary: input-order scramble burst",
    "Member 0's leader processes inputs pairwise swapped during "
    "t=300..600ms while advertising the honest order.",
    "out-of-order processing surfaces as an output mismatch (or a "
    "t2 expiry) and the pair fail-signals.",
    (AdversarySpec(kind="scramble_burst", at=300.0, until=600.0, member=0),),
)

_register_adversarial(
    "adv_delay_skew",
    "Adversary: pair-LAN delay skew",
    "Everything member 0's leader sends over the pair LAN takes an "
    "extra 50ms from t=300ms -- an explicit A2 violation.",
    "the synchrony-derived compare timeouts fire and the pair "
    "fail-signals; survivors keep ordering.",
    (AdversarySpec(kind="delay_skew", at=300.0, member=0, extra_ms=50.0),),
)

_register_adversarial(
    "adv_intermittent_mute",
    "Adversary: intermittent full mute",
    "Member 0's leader LAN goes mute for half of every 200ms period "
    "between t=300ms and t=900ms.",
    "the first muted window that swallows protocol traffic is enough: "
    "the pair fail-signals despite the duty cycle.",
    (
        intermittent(
            AdversarySpec(kind="mute", member=0),
            at=300.0,
            until=900.0,
            period=200.0,
            duty=0.5,
        ),
    ),
)

_register_adversarial(
    "adv_churn_storm",
    "Adversary: churn storm under load",
    "A 5-member group loses members 4 and 3 to primary-node crashes "
    "200ms apart from t=400ms while everyone keeps streaming.",
    "crash-induced signals are accurate (only the downed pairs are "
    "named) and the 3 survivors keep delivering in agreement.",
    (AdversarySpec(kind="churn_storm", at=400.0, members=(4, 3), spacing=200.0),),
    base=_ADV_BASE.replace(n_members=5),
)

_register_adversarial(
    "adv_seq_scramble_then_corrupt",
    "Adversary: sequential multi-member attack",
    "In sequence: member 0's leader scrambles input order for 250ms "
    "from t=300ms, then member 1's replica corrupts outputs for 300ms.",
    "each attack in the sequence is converted into its own pair's "
    "fail-signal; the remaining members keep agreeing.",
    (
        seq(
            AdversarySpec(kind="scramble_burst", at=0.0, until=250.0, member=0),
            AdversarySpec(kind="corrupt", at=50.0, until=350.0, member=1),
            at=300.0,
        ),
    ),
    base=_ADV_BASE.replace(n_members=6),
)

_register_adversarial(
    "adv_both_equivocate_tamper",
    "Adversary: concurrent multi-member attack",
    "Concurrently from t=300ms: member 0's leader equivocates while "
    "member 3's leader forges signatures.",
    "both pairs are independently converted into fail-signals; A1 "
    "(at most one faulty node per pair) still holds pair-wise.",
    (
        both(
            AdversarySpec(kind="equivocate", at=0.0, member=0),
            AdversarySpec(kind="tamper_signature", at=50.0, member=3),
            at=300.0,
        ),
    ),
    base=_ADV_BASE.replace(n_members=6),
)

_register_adversarial(
    "adv_spurious_fs2",
    "Adversary: spontaneous fail-signal (fs2)",
    "A perfectly healthy wrapper of member 1 emits its fail-signal at "
    "t=500ms -- failure mode fs2, legal by definition.",
    "receivers treat the signaller as faulty and exclude it; the "
    "oracles accept the signal as accurate (it was injected).",
    (AdversarySpec(kind="spurious_signal", at=500.0, member=1),),
)

_register_adversarial(
    "adv_clean_baseline",
    "Adversary control: no adversary at all",
    "The adversarial base scenario with no attack installed -- the "
    "control run the accuracy oracle is calibrated against.",
    "zero fail-signals, full agreement: any signal here is a false "
    "signal and fails the audit.",
    (),
)

# ----------------------------------------------------------------------
# scale_*: large-N / high-load scenarios exercising the batched,
# pipelined ordering path (see docs/PERFORMANCE.md and docs/SCENARIOS.md)
# ----------------------------------------------------------------------
#: The batching configuration the scale scenarios run by default.
SCALE_BATCHING = BatchingSpec(max_batch=8, max_delay_ms=4.0, max_inflight=4)

register(
    Scenario(
        name="scale_batch_ab",
        title="Scale A/B: batched vs unbatched compare path under high load",
        description=(
            "An 8-member FS-NewTOP group streaming 3-byte messages every "
            "10ms per member -- deep into crypto saturation.  The sweep "
            "is the batching knob itself: off, then max_batch 4/8/16 "
            "with a 4ms flush window.  Identical workload and seed per "
            "cell, so the sweep isolates the amortisation win."
        ),
        expected=(
            "throughput rises and signatures_per_ordered falls from "
            "'off' to b16; zero fail-signals everywhere (batching must "
            "not break detection soundness); latency falls once the "
            "signing queue, not the flush window, dominates."
        ),
        base=ScenarioSpec(
            system="fs-newtop",
            n_members=8,
            messages_per_member=12,
            interval=10.0,
            message_size=3,
            seed=1,
            settle_ms=30_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="batching",
        sweep=(
            SweepPoint(label="off", overrides={"batching": None}),
            SweepPoint(label="b4", overrides={"batching": BatchingSpec(max_batch=4)}),
            SweepPoint(label="b8", overrides={"batching": BatchingSpec(max_batch=8)}),
            SweepPoint(label="b16", overrides={"batching": BatchingSpec(max_batch=16)}),
        ),
    )
)

register(
    Scenario(
        name="scale_crypto_ab",
        title="Scale A/B: crypto provider and signing codec under high load",
        description=(
            "The scale_batch_ab workload (8 members, 3-byte messages "
            "every 10ms per member, batched wrappers) with the sweep on "
            "the crypto engine instead: the paper's RSA cost table, the "
            "hmac reference provider, the ed25519 provider with its "
            "measured cost table, and ed25519 plus the compact binwire "
            "signing/framing codec.  Identical workload and seed per "
            "cell, so the sweep isolates the provider/codec win."
        ),
        expected=(
            "simulated throughput rises from the rsa/hmac cells to the "
            "ed25519 cells (cheaper sign/verify costs plus amortised "
            "pair verification shrink the signing queue); the binwire "
            "cell matches ed25519's ordering exactly while cutting host "
            "time; zero fail-signals everywhere."
        ),
        base=ScenarioSpec(
            system="fs-newtop",
            n_members=8,
            messages_per_member=12,
            interval=10.0,
            message_size=3,
            seed=1,
            batching=SCALE_BATCHING,
            settle_ms=30_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="crypto",
        sweep=(
            SweepPoint(label="rsa", overrides={"crypto": CryptoSpec(provider="rsa")}),
            SweepPoint(label="hmac", overrides={"crypto": CryptoSpec(provider="hmac")}),
            SweepPoint(
                label="ed25519",
                overrides={"crypto": CryptoSpec(provider="ed25519")},
            ),
            SweepPoint(
                label="ed25519+binwire",
                overrides={
                    "crypto": CryptoSpec(provider="ed25519", codec="binwire")
                },
            ),
        ),
    )
)

register(
    Scenario(
        name="scale_groups",
        title="Scale: large groups (n=8/16/32) with batched wrappers",
        description=(
            "Group sizes far beyond the paper's evaluation (8, 16 and 32 "
            "members), streaming small messages at a per-member 40ms "
            "interval; NewTOP vs batched FS-NewTOP.  The quadratic "
            "multicast fan-out plus per-output crypto is exactly where "
            "amortisation has to carry the wrappers."
        ),
        expected=(
            "both systems' throughput decays as n grows; batched "
            "FS-NewTOP tracks NewTOP at a roughly constant relative "
            "deficit instead of collapsing, with zero fail-signals."
        ),
        base=ScenarioSpec(
            n_members=8,
            messages_per_member=6,
            interval=40.0,
            message_size=3,
            seed=1,
            batching=SCALE_BATCHING,
            settle_ms=40_000.0,
        ),
        systems=("newtop", "fs-newtop"),
        sweep_axis="members",
        sweep=_points("n_members", (8, 16, 32)),
    )
)

register(
    Scenario(
        name="scale_high_rate",
        title="Scale: offered-rate sweep at n=8, batched wrappers",
        description=(
            "A fixed 8-member group with the per-member send interval "
            "swept 80/40/20/10ms (12.5..100 msg/s offered per member); "
            "NewTOP vs batched FS-NewTOP.  Rising rate widens batches "
            "(more outputs per 4ms flush window), so the amortisation "
            "improves exactly when it is needed."
        ),
        expected=(
            "batch_mean_size grows as the interval shrinks; FS-NewTOP "
            "throughput keeps scaling with offered load instead of "
            "flat-lining at the per-output signing ceiling."
        ),
        base=ScenarioSpec(
            n_members=8,
            messages_per_member=10,
            interval=80.0,
            message_size=3,
            seed=1,
            batching=SCALE_BATCHING,
            settle_ms=30_000.0,
        ),
        systems=("newtop", "fs-newtop"),
        sweep_axis="interval_ms",
        sweep=_points("interval", (80.0, 40.0, 20.0, 10.0)),
    )
)

# ----------------------------------------------------------------------
# scale_shard_*: keyspace-sharded multi-group deployments (repro.shard)
# ----------------------------------------------------------------------
#: Base of the sharded scale scenarios: the scale_batch_ab saturation
#: load (8 members streaming every 10ms), but keyed, so the shard
#: router can spread it over S groups of 8/S members.  Total offered
#: load is identical at every S -- the sweep isolates what sharding
#: buys (smaller groups, less multicast fan-out and crypto contention
#: per shard).
_SHARD_BASE = ScenarioSpec(
    system="fs-newtop",
    n_members=8,
    messages_per_member=12,
    interval=10.0,
    message_size=3,
    seed=1,
    batching=SCALE_BATCHING,
    settle_ms=30_000.0,
)

register(
    Scenario(
        name="scale_shard_ab",
        title="Scale A/B: S=1/2/4/8 shards over a fixed 8-member deployment",
        description=(
            "Eight members streaming keyed 3-byte messages every 10ms, "
            "deployed as S independent FS-NewTOP groups of 8/S members "
            "(S swept 1/2/4/8); shard-local traffic only.  S=1 is the "
            "differential control -- byte-identical to the unsharded "
            "keyed run."
        ),
        expected=(
            "aggregate throughput multiplies with shard count (>=2.5x "
            "at S=4 vs S=1 on the benchmark box): smaller groups spend "
            "less on quadratic multicast fan-out and per-group crypto; "
            "zero fail-signals and a clean 8-oracle audit everywhere."
        ),
        base=_SHARD_BASE,
        systems=("fs-newtop",),
        sweep_axis="shards",
        sweep=tuple(
            SweepPoint(label=f"S{s}", overrides={"shard": ShardSpec(shards=s)})
            for s in (1, 2, 4, 8)
        ),
    )
)

register(
    Scenario(
        name="scale_shard_xratio",
        title="Scale: cross-shard ratio sweep at S=4 (two-phase barrier)",
        description=(
            "The S=4 deployment of scale_shard_ab with 0%, 5% and 20% "
            "of writes turned into two-key operations spanning a "
            "rotating pair of shards, sequenced by the cross-shard "
            "barrier (reserve at every involved shard, commit at the "
            "max)."
        ),
        expected=(
            "throughput degrades gracefully as the ratio grows (each "
            "cross-shard op costs two ordered multicasts per involved "
            "shard plus the holdback); cross_shard_latency stays a "
            "small multiple of shard-local latency; the cross-shard "
            "oracle proves the global order on every cell."
        ),
        base=_SHARD_BASE.replace(shard=ShardSpec(shards=4)),
        systems=("fs-newtop",),
        sweep_axis="cross_shard_pct",
        sweep=tuple(
            SweepPoint(
                label=f"{int(ratio * 100)}%",
                overrides={
                    "shard": ShardSpec(shards=4, cross_shard_ratio=ratio)
                },
            )
            for ratio in (0.0, 0.05, 0.20)
        ),
    )
)

register(
    Scenario(
        name="scale_shard_smoke",
        title="Scale: two-shard smoke deployment (CI-sized)",
        description=(
            "A small two-shard deployment (4 members as 2x2) with a "
            "quarter of writes crossing shards -- the CI audit cell and "
            "the `repro run --shards` demo scenario."
        ),
        expected=(
            "everything ordered, zero fail-signals, all eight oracles "
            "green -- in seconds, not minutes."
        ),
        base=ScenarioSpec(
            system="fs-newtop",
            n_members=4,
            messages_per_member=6,
            interval=50.0,
            message_size=3,
            seed=1,
            shard=ShardSpec(shards=2, cross_shard_ratio=0.25, keyspace=32),
            settle_ms=15_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="2x2", overrides={}),),
    )
)

# ----------------------------------------------------------------------
# svc_*: the client-facing ordering service (repro.service) -- a
# gateway with admission control fronting the group, driven by a
# closed-loop session fleet (see docs/SERVICE.md)
# ----------------------------------------------------------------------
register(
    Scenario(
        name="svc_fleet_smoke",
        title="Service: gateway smoke fleet over two shards (CI-sized)",
        description=(
            "A 2x2 sharded deployment behind the ordering gateway; 64 "
            "closed-loop sessions submit 2 zipf-keyed operations each "
            "through admission control, while 3 streaming subscribers "
            "verify the sequence-numbered delivery feed and reconnect "
            "every 25 events.  Seconds, not minutes -- the CI smoke cell."
        ),
        expected=(
            "every session completes, zero feed gaps or cross-subscriber "
            "mismatches, zero fail-signals, all eight oracles green."
        ),
        base=ScenarioSpec(
            system="fs-newtop",
            n_members=4,
            messages_per_member=2,
            interval=50.0,
            seed=1,
            shard=ShardSpec(shards=2, keyspace=32),
            gateway=ServiceSpec(
                clients=4,
                rate_limit_per_s=500.0,
                burst=50,
                max_inflight=128,
                sessions=64,
                ops_per_session=2,
                think_ms=30.0,
                subscribers=3,
                reconnect_every=25,
            ),
            settle_ms=15_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="2x2", overrides={}),),
    )
)

register(
    Scenario(
        name="svc_fleet_1k",
        title="Service: 1000-session fleet through the gateway (e2e audit)",
        description=(
            "The end-to-end acceptance run: 1000 closed-loop sessions "
            "(2 zipf-keyed operations each) submitted through the "
            "gateway's admission control into a batched 2x4 sharded "
            "deployment, with 4 reconnecting feed subscribers.  Sized "
            "so a generous per-client budget admits everything -- "
            "shedding is svc_overload's job."
        ),
        expected=(
            "all 2000 operations admitted and sequenced, every session "
            "completes, zero feed gaps/mismatches, zero fail-signals, "
            "all eight oracles green -- on the simulator and on the "
            "asyncio transport."
        ),
        base=ScenarioSpec(
            system="fs-newtop",
            n_members=8,
            messages_per_member=2,
            interval=40.0,
            seed=1,
            batching=SCALE_BATCHING,
            shard=ShardSpec(shards=2, keyspace=64),
            gateway=ServiceSpec(
                clients=8,
                rate_limit_per_s=2000.0,
                burst=200,
                max_inflight=512,
                sessions=1000,
                ops_per_session=2,
                think_ms=40.0,
                subscribers=4,
                reconnect_every=100,
                # Ramp the fleet over five seconds (~200 arrivals/s,
                # matching the batched pipeline's drain rate) and give
                # sessions caught by the inflight cap a retry budget
                # that outlasts the drain.
                ramp_ms=5_000.0,
                retry_after_ms=250.0,
                max_retries=64,
            ),
            settle_ms=30_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="1k-sessions", overrides={}),),
    )
)

register(
    Scenario(
        name="svc_overload",
        title="Service: deliberate overload -- shed via 429, stay correct",
        description=(
            "200 aggressive sessions (5ms think time) against a tiny "
            "admission budget: 20 ops/s/client with burst 5, inflight "
            "capped at 16.  The gateway must shed the excess with 429s "
            "and retry hints while everything it *does* admit is "
            "ordered and streamed without a single violation."
        ),
        expected=(
            "substantial rate-limit and overload rejections; zero feed "
            "gaps or mismatches among admitted operations; zero "
            "fail-signals; all eight oracles green -- overload degrades "
            "admission, never correctness."
        ),
        base=ScenarioSpec(
            system="fs-newtop",
            n_members=4,
            messages_per_member=2,
            interval=50.0,
            seed=1,
            gateway=ServiceSpec(
                clients=4,
                rate_limit_per_s=20.0,
                burst=5,
                max_inflight=16,
                sessions=200,
                ops_per_session=2,
                think_ms=5.0,
                subscribers=2,
                max_retries=4,
            ),
            settle_ms=15_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="shed", overrides={}),),
    )
)

# ----------------------------------------------------------------------
# app_*: the replicated KV application riding the ordering layer
# (repro.app) -- signed checkpoints, crash-recover-rejoin and the
# state-consistency oracle (see docs/APPLICATION.md)
# ----------------------------------------------------------------------
#: Base of the application scenarios: the adversarial-audit group shape
#: with the KV application attached and a short checkpoint stride, so
#: even CI-sized runs cross several checkpoint boundaries.
_APP_BASE = ScenarioSpec(
    system="fs-newtop",
    n_members=4,
    messages_per_member=10,
    interval=60.0,
    collapsed=False,
    app=AppSpec(checkpoint_every=4),
    settle_ms=15_000.0,
)

register(
    Scenario(
        name="app_kv_smoke",
        title="Application: replicated KV smoke run (CI-sized)",
        description=(
            "A 4-member FS-NewTOP group where every totally-ordered "
            "delivery is applied to a deterministic KV store; members "
            "sign a checkpoint every 4 applied operations and gossip "
            "the certificates until each seq reaches an f+1 quorum."
        ),
        expected=(
            "identical state digests at every member and every "
            "checkpoint seq, zero fail-signals, all eight oracles "
            "green -- in seconds."
        ),
        base=_APP_BASE,
        systems=("fs-newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="kv", overrides={}),),
    )
)

register(
    Scenario(
        name="app_kv_recover",
        title="Application: crash, recover and rejoin via state transfer",
        description=(
            "The smoke group loses member 3's primary node at t=400ms; "
            "at t=1000ms the member rejoins by fetching the latest "
            "f+1-matching checkpoint plus the operation suffix from the "
            "most advanced peer, verifying every signature against its "
            "own keystore and replaying to catch up."
        ),
        expected=(
            "exactly one recovery completes inside the detection "
            "deadline; the rebuilt digest matches the survivors' "
            "certificates at the same seq; the crash-induced "
            "fail-signal is accurate; all eight oracles green."
        ),
        base=_APP_BASE.replace(
            faults=(
                FaultEvent(at=400.0, kind="crash_recover", member=3, rejoin_at=1000.0),
            ),
        ),
        systems=("fs-newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="rejoin", overrides={}),),
    )
)

register(
    Scenario(
        name="app_kv_recover_adv",
        title="Application: recovery under a concurrent churn storm",
        description=(
            "A 6-member group loses member 5 to a crash at t=400ms; its "
            "rejoin starts at t=1200ms, and the churn-storm adversary "
            "crashes member 4's primary node at t=1210ms -- inside the "
            "50ms state-transfer window.  The recoverer must still land "
            "on a verified f+1-matching checkpoint (a crashed donor's "
            "application state is intact) with zero spurious signals."
        ),
        expected=(
            "the recovery completes despite the concurrent crash; every "
            "fail-signal names a genuinely downed pair; the rebuilt "
            "digest is vouched for by surviving certificates; all eight "
            "oracles green."
        ),
        base=_APP_BASE.replace(
            n_members=6,
            faults=(
                FaultEvent(at=400.0, kind="crash_recover", member=5, rejoin_at=1200.0),
            ),
            adversaries=(
                AdversarySpec(kind="churn_storm", at=1210.0, members=(4,), spacing=200.0),
            ),
        ),
        systems=("fs-newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="storm", overrides={}),),
    )
)

register(
    Scenario(
        name="app_kv_soak",
        title="Application: checkpoint-retirement soak (bounded memory)",
        description=(
            "A 4-member group streaming 60 messages per member every "
            "20ms with a checkpoint every 4 applied operations -- 60 "
            "checkpoint boundaries per store.  The run exists to prove "
            "the low-water mark retires oplog/dedup/certificate state: "
            "memory must stay flat over tens of checkpoint intervals."
        ),
        expected=(
            "app_oplog_peak, app_dedup_peak and app_checkpoint_log_peak "
            "stay bounded by the retention window (not the run length); "
            "all eight oracles green."
        ),
        base=_APP_BASE.replace(
            messages_per_member=60,
            interval=20.0,
            settle_ms=30_000.0,
        ),
        systems=("fs-newtop",),
        sweep_axis="variant",
        sweep=(SweepPoint(label="soak", overrides={}),),
    )
)

register(
    Scenario(
        name="mixed_rw",
        title="Mixed read/write load: cheap reads dilute ordered writes",
        description=(
            "A 6-member group where only a fraction of sends need total "
            "order (writes); the rest go through the reliable-FIFO service "
            "(reads). The sweep lowers the write ratio from 1.0 to 0.25."
        ),
        expected=(
            "mean latency falls and throughput rises as the write ratio "
            "drops, for both systems -- ordered multicast is the "
            "expensive part."
        ),
        base=ScenarioSpec(
            n_members=6,
            messages_per_member=10,
            interval=80.0,
        ),
        systems=("newtop", "fs-newtop"),
        sweep_axis="write_ratio",
        sweep=_points("write_ratio", (1.0, 0.5, 0.25)),
    )
)
