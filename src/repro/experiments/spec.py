"""Declarative experiment specifications.

A :class:`ScenarioSpec` is a complete, *value-only* description of one
simulation run: which system to build, how large the group is, what the
workload looks like, how the network misbehaves, and which faults strike
when.  Because a spec contains no live objects -- delay models are
:class:`DelaySpec` values, faults are :class:`FaultEvent` values -- it
can be pickled across process boundaries (the campaign runner executes
specs in a :mod:`multiprocessing` pool) and serialised to JSON for the
result store.

The split mirrors the declarative style of ESSENCE'-like problem
specification: *what* to run lives here, *how* to run it lives in
:mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.adversary.spec import AdversarySpec
from repro.app.spec import AppSpec
from repro.crypto.provider import CryptoSpec
from repro.service.spec import ServiceSpec
from repro.net.delay import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    SpikeDelay,
    UniformDelay,
)

#: Systems the runner knows how to build.
SYSTEMS = ("newtop", "fs-newtop", "pbft")

#: Fault kinds the runner knows how to apply.
FAULT_KINDS = (
    "crash",
    "crash_backup",
    "crash_recover",
    "partition",
    "heal",
    "byzantine",
)


@dataclasses.dataclass(frozen=True, slots=True)
class DelaySpec:
    """Declarative description of a :class:`repro.net.DelayModel`.

    ``kind`` selects the model; only the parameters that kind uses are
    read.  ``spike`` wraps a uniform base (``low``/``high``) with spikes
    of ``spike_ms`` at probability ``spike_probability``.
    """

    kind: str = "uniform"
    value: float = 1.0  # constant
    low: float = 0.3  # uniform / spike base
    high: float = 1.2
    floor: float = 0.2  # exponential
    mean: float = 1.0
    cap: float | None = None
    spike_probability: float = 0.0  # spike
    spike_ms: float = 0.0

    def build(self) -> DelayModel:
        """Instantiate the live delay model this spec describes."""
        if self.kind == "constant":
            return ConstantDelay(self.value)
        if self.kind == "uniform":
            return UniformDelay(self.low, self.high)
        if self.kind == "exponential":
            return ExponentialDelay(self.floor, self.mean, cap=self.cap)
        if self.kind == "spike":
            return SpikeDelay(
                UniformDelay(self.low, self.high),
                spike_probability=self.spike_probability,
                spike_ms=self.spike_ms,
            )
        raise ValueError(f"unknown delay kind {self.kind!r}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DelaySpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True, slots=True)
class BatchingSpec:
    """Declarative description of the fail-signal batching layer.

    Present on a spec => the ``fs-newtop`` wrappers run the batched
    compare path (one signature/verification/countersignature per
    *batch* of outputs instead of per output; see
    :mod:`repro.core.batching` and docs/PERFORMANCE.md).  Ignored by
    ``newtop`` and ``pbft``, which have no fail-signal pairs.

    * ``max_batch`` -- outputs per batch before a size-triggered flush;
    * ``max_delay_ms`` -- hard bound on how long an open batch may
      accumulate (the latency the batched path may add per output);
    * ``max_inflight`` -- batches the pipelined sequencer keeps in
      flight per wrapper before size-flushes defer.
    """

    max_batch: int = 8
    max_delay_ms: float = 4.0
    max_inflight: int = 4

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms <= 0:
            raise ValueError(f"max_delay_ms must be > 0, got {self.max_delay_ms}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BatchingSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True, slots=True)
class ShardSpec:
    """Declarative description of the keyspace-sharded deployment.

    Present on a spec => the runner builds ``shards`` independent
    FS-NewTOP groups of ``n_members / shards`` members each, plus the
    :mod:`repro.shard` router and cross-shard barrier, and the ordering
    workload becomes *keyed*: every send carries a key drawn from a
    ``keyspace``-sized key set, routed to the shard that owns it.
    A ``cross_shard_ratio`` fraction of writes become multi-key
    operations spanning two shards, sequenced by the two-phase barrier.

    ``shards=1`` is the differential control: one group, every key
    local, construction byte-identical to the unsharded path.
    Sharding is fs-newtop only (the shards *are* fail-signal groups).
    """

    shards: int = 1
    cross_shard_ratio: float = 0.0
    keyspace: int = 64

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not 0.0 <= self.cross_shard_ratio <= 1.0:
            raise ValueError(
                f"cross_shard_ratio must be in [0,1], got {self.cross_shard_ratio}"
            )
        if self.keyspace < self.shards:
            raise ValueError(
                f"keyspace ({self.keyspace}) must cover every shard "
                f"({self.shards}) with at least one key"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True, slots=True)
class TransportSpec:
    """Declarative description of the run's transport backend.

    ``kind`` selects it (:data:`repro.transport.TRANSPORT_KINDS`):
    ``sim`` is the discrete-event simulator (the default when a spec
    carries no transport at all), ``asyncio`` runs the same protocol
    stack on wall-clock timers with per-member asyncio queues.

    * ``tcp`` -- asyncio only: route member-to-member traffic over
      localhost TCP using the canonical wire codec instead of
      in-process queues alone;
    * ``time_scale`` -- asyncio only: wall seconds per virtual second
      (``0.5`` runs the scenario's timeline at twice wall speed; host
      timer jitter is *not* scaled, so compression narrows margins);
    * ``calibrate`` -- asyncio only: measure host signing/verify/timer
      latency at startup and derive the live detection deadlines
      (:mod:`repro.transport.calibration`) instead of trusting the
      simulator's cost-model defaults.
    """

    kind: str = "sim"
    tcp: bool = False
    time_scale: float = 1.0
    calibrate: bool = True

    def __post_init__(self) -> None:
        from repro.transport.base import TRANSPORT_KINDS

        if self.kind not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport kind {self.kind!r}, want one of {TRANSPORT_KINDS}"
            )
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {self.time_scale}")
        if self.kind == "sim" and self.tcp:
            raise ValueError("tcp transport needs kind='asyncio'")

    @property
    def live(self) -> bool:
        """True for wall-clock backends (anything but the simulator)."""
        return self.kind != "sim"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TransportSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True, slots=True)
class ObsSpec:
    """Declarative description of the run's observability layer.

    Present on a spec (and ``enabled``) => the runner installs an
    :class:`~repro.obs.spans.ObsHub` on the run's clock before the
    group is built, so every layer's instruments are live.  Absent, the
    runner's default applies: audit runs observe, measurement runs do
    not (observability must never perturb a benchmark).

    * ``http_port`` -- live transports only: bind ``GET /metrics`` on
      this port (``0`` = kernel-assigned, the default; ``None`` = no
      endpoint).  Simulator runs never bind sockets;
    * ``flight`` / ``flight_events`` -- keep a
      :class:`~repro.obs.flight.FlightRecorder` of the most recent
      ``flight_events`` trace records per category on audited runs;
    * ``flight_dir`` -- where violation bundles land.
    """

    enabled: bool = True
    http_port: int | None = 0
    flight: bool = True
    flight_events: int = 256
    flight_dir: str = "results/flight"

    def __post_init__(self) -> None:
        if self.http_port is not None and not 0 <= self.http_port <= 65535:
            raise ValueError(f"http_port must be in [0,65535], got {self.http_port}")
        if self.flight_events < 1:
            raise ValueError(
                f"flight_events must be >= 1, got {self.flight_events}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ObsSpec":
        return cls(**data)


#: The paper's benchmark LAN: lightly loaded, sub-millisecond-ish.
CALM_LAN = DelaySpec(kind="uniform", low=0.3, high=1.2)

#: A congested network: same base with frequent large delay spikes --
#: the adversary of every timeout-based suspector.
SPIKY_NET = DelaySpec(
    kind="spike", low=0.5, high=2.0, spike_probability=0.5, spike_ms=800.0
)


@dataclasses.dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault in a scenario's fault plan.

    ``kind`` is one of :data:`FAULT_KINDS`:

    * ``crash`` -- crash ``member``'s (primary) node at ``at`` ms;
    * ``crash_backup`` -- crash the node hosting ``member``'s follower
      wrapper (FS-NewTOP only);
    * ``crash_recover`` -- crash like ``crash``, then at ``rejoin_at``
      ms rebuild the member's *application* state via verified state
      transfer (needs an :class:`~repro.app.spec.AppSpec` on the
      scenario; the ordering pair itself stays excluded);
    * ``partition`` -- split the network into ``groups`` (tuples of
      member indices) at ``at`` ms;
    * ``heal`` -- remove every partition at ``at`` ms;
    * ``byzantine`` -- switch on the named fault ``flags`` (see
      :class:`repro.core.faults.FaultPlan`) in ``member``'s leader
      wrapper (FS-NewTOP) or silence the replica (PBFT).
    """

    at: float
    kind: str
    member: int | None = None
    groups: tuple[tuple[int, ...], ...] = ()
    flags: tuple[str, ...] = ()
    rejoin_at: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}, want one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind == "crash_recover":
            if self.member is None:
                raise ValueError("crash_recover faults need a member")
            if self.rejoin_at is None or self.rejoin_at <= self.at:
                raise ValueError(
                    f"crash_recover needs rejoin_at after the crash at "
                    f"{self.at}, got {self.rejoin_at}"
                )
        elif self.rejoin_at is not None:
            raise ValueError(f"rejoin_at only applies to crash_recover, not {self.kind!r}")

    def to_dict(self) -> dict:
        return {
            "at": self.at,
            "kind": self.kind,
            "member": self.member,
            "groups": [list(g) for g in self.groups],
            "flags": list(self.flags),
            "rejoin_at": self.rejoin_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(
            at=data["at"],
            kind=data["kind"],
            member=data.get("member"),
            groups=tuple(tuple(g) for g in data.get("groups", ())),
            flags=tuple(data.get("flags", ())),
            rejoin_at=data.get("rejoin_at"),
        )


@dataclasses.dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """Everything needed to reproduce one run, as plain values.

    Workload semantics (``newtop`` / ``fs-newtop``): every member
    multicasts ``messages_per_member`` messages of ``message_size``
    bytes, one per round, rounds spaced ``interval`` ms apart --
    the paper's section 4 load.  ``write_ratio`` < 1 diverts the
    remaining fraction of sends to the cheaper ``reliable`` service
    (mixed read/write traffic).

    For ``pbft`` the same aggregate load is offered as client requests:
    ``messages_per_member * n_members`` requests spaced
    ``interval / n_members`` ms apart against a cluster sized
    ``3f + 1`` with ``f = max(1, (n_members - 1) // 2)`` (the same
    fault budget a ``2f + 1``-replica FS-NewTOP group of
    ``n_members`` covers).
    """

    system: str = "fs-newtop"
    n_members: int = 4
    messages_per_member: int = 10
    interval: float = 150.0
    message_size: int = 3
    service: str = "symmetric_total"
    write_ratio: float = 1.0
    seed: int = 0
    delay: DelaySpec = CALM_LAN
    faults: tuple[FaultEvent, ...] = ()
    adversaries: tuple[AdversarySpec, ...] = ()
    batching: BatchingSpec | None = None
    shard: ShardSpec | None = None
    crypto: CryptoSpec | None = None
    crypto_scale: float = 1.0
    collapsed: bool = True
    suspectors: bool = False
    suspector_interval: float = 200.0
    suspector_timeout: float = 100.0
    suspector_max_misses: int = 2
    view_timeout: float = 500.0  # pbft only
    settle_ms: float = 120_000.0
    transport: TransportSpec | None = None
    gateway: ServiceSpec | None = None
    obs: ObsSpec | None = None
    app: AppSpec | None = None

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}, want one of {SYSTEMS}")
        if self.n_members < 1:
            raise ValueError(f"need at least one member, got {self.n_members}")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError(f"write_ratio must be in [0,1], got {self.write_ratio}")
        if self.messages_per_member < 1:
            raise ValueError(f"need at least one message, got {self.messages_per_member}")
        if self.shard is not None:
            if self.system != "fs-newtop":
                raise ValueError(
                    f"sharding needs the fs-newtop system, got {self.system!r}"
                )
            if self.faults:
                raise ValueError(
                    "fault plans are not supported on sharded specs yet; "
                    "use adversaries instead"
                )
        if self.crypto is not None and self.system != "fs-newtop":
            raise ValueError(
                "crypto provider/codec selection applies to the "
                f"fs-newtop system only, got {self.system!r}"
            )
        if self.transport is not None and self.transport.live:
            if self.system == "pbft":
                raise ValueError(
                    "the pbft comparator runs on the simulator only; "
                    "live transports need an ordering system"
                )
        if self.gateway is not None and self.system == "pbft":
            raise ValueError(
                "the service gateway fronts the ordering systems only; "
                "pbft has no multicast surface to serve"
            )
        if self.app is not None and self.system != "fs-newtop":
            raise ValueError(
                "the KV application needs the fs-newtop system (its "
                f"checkpoints sign via the pair keystore), got {self.system!r}"
            )
        if self.app is None and any(e.kind == "crash_recover" for e in self.faults):
            raise ValueError(
                "crash_recover faults need an AppSpec: the rejoin is "
                "application-level state transfer"
            )

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def byzantine_members(self) -> tuple[int, ...]:
        """Members needing a :class:`ByzantineFso` wrapper pre-built:
        those named by ``byzantine`` fault events plus the targets of
        every FaultPlan-backed adversary strategy."""
        members = {
            e.member for e in self.faults if e.kind == "byzantine" and e.member is not None
        }
        for adversary in self.adversaries:
            members.update(adversary.flag_members())
        return tuple(sorted(members))

    def replace(self, **overrides: typing.Any) -> "ScenarioSpec":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["delay"] = self.delay.to_dict()
        data["faults"] = [e.to_dict() for e in self.faults]
        data["adversaries"] = [a.to_dict() for a in self.adversaries]
        data["batching"] = self.batching.to_dict() if self.batching else None
        data["shard"] = self.shard.to_dict() if self.shard else None
        data["crypto"] = self.crypto.to_dict() if self.crypto else None
        data["transport"] = self.transport.to_dict() if self.transport else None
        data["gateway"] = self.gateway.to_dict() if self.gateway else None
        data["obs"] = self.obs.to_dict() if self.obs else None
        data["app"] = self.app.to_dict() if self.app else None
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        fields = dict(data)
        fields["delay"] = DelaySpec.from_dict(fields["delay"])
        fields["faults"] = tuple(FaultEvent.from_dict(e) for e in fields.get("faults", ()))
        fields["adversaries"] = tuple(
            AdversarySpec.from_dict(a) for a in fields.get("adversaries", ())
        )
        batching = fields.get("batching")
        fields["batching"] = (
            BatchingSpec.from_dict(batching) if batching is not None else None
        )
        shard = fields.get("shard")
        fields["shard"] = ShardSpec.from_dict(shard) if shard is not None else None
        crypto = fields.get("crypto")
        fields["crypto"] = (
            CryptoSpec.from_dict(crypto) if crypto is not None else None
        )
        transport = fields.get("transport")
        fields["transport"] = (
            TransportSpec.from_dict(transport) if transport is not None else None
        )
        gateway = fields.get("gateway")
        fields["gateway"] = (
            ServiceSpec.from_dict(gateway) if gateway is not None else None
        )
        obs = fields.get("obs")
        fields["obs"] = ObsSpec.from_dict(obs) if obs is not None else None
        app = fields.get("app")
        fields["app"] = AppSpec.from_dict(app) if app is not None else None
        return cls(**fields)
