"""Parameter-sweep campaigns with a parallel experiment runner.

A :class:`Campaign` expands a registered :class:`Scenario` into the
full (system x sweep-point x repeat) grid, derives a deterministic seed
for every cell, and executes the runs -- serially or fanned out over a
:mod:`multiprocessing` pool.  Results come back as flat
:class:`RunRecord` values ready for the JSONL store and the
:mod:`repro.analysis` aggregation.

Determinism: with the default ``base_seed=0``, repeat 0 runs the
scenario's *curated* spec seed -- the exact configuration the registry
(and therefore the benchmark harness) defines; a nonzero base seed
shifts it. Every further repeat gets a seed derived only from
(base_seed, scenario, system, sweep label, repeat index), never from
scheduling order. A campaign's records are therefore bit-identical
whether executed with ``jobs=1`` or ``jobs=32``, and a default
single-repeat campaign measures exactly what the benchmarks measure.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import multiprocessing
import typing

from repro.experiments.registry import Scenario
from repro.experiments.runner import audit_scenario, run_scenario
from repro.experiments.spec import ScenarioSpec

logger = logging.getLogger("repro.experiments.campaign")


def clamp_jobs(jobs: int | None, tasks: int) -> int:
    """The effective worker count for a campaign.

    ``None`` asks for the machine default; explicit requests are
    honoured up to ``max(1, cpu_count - 1)`` -- oversubscribing a small
    CI box (the 1-core case especially) only adds scheduler thrash to
    every simulated timing.  The clamp never affects determinism, only
    wall-clock."""
    ceiling = max(1, multiprocessing.cpu_count() - 1)
    requested = ceiling if jobs is None else jobs
    effective = max(1, min(requested, ceiling, max(tasks, 1)))
    if jobs is not None and effective != jobs:
        logger.info(
            "campaign: clamped jobs=%d to %d (cpu_count=%d)",
            jobs,
            effective,
            multiprocessing.cpu_count(),
        )
    else:
        logger.info("campaign: running with %d worker(s)", effective)
    return effective


def derive_seed(
    base_seed: int, scenario: str, system: str, x_label: typing.Any, repeat: int
) -> int:
    """A stable per-run seed: same inputs, same seed, on every machine."""
    key = f"{base_seed}/{scenario}/{system}/{x_label!r}/{repeat}"
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)


@dataclasses.dataclass(frozen=True)
class RunTask:
    """One cell of the campaign grid, ready to execute."""

    scenario: str
    system: str
    x_label: typing.Any
    repeat: int
    spec: ScenarioSpec
    audit: bool = False


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One executed cell: grid coordinates plus flattened metrics."""

    scenario: str
    system: str
    x_label: typing.Any
    repeat: int
    seed: int
    metrics: dict[str, float]
    spec: dict | None = None  # full provenance, as stored

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "system": self.system,
            "x": self.x_label,
            "repeat": self.repeat,
            "seed": self.seed,
            "metrics": dict(self.metrics),
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(
            scenario=data["scenario"],
            system=data["system"],
            x_label=data["x"],
            repeat=data["repeat"],
            seed=data["seed"],
            metrics=dict(data["metrics"]),
            spec=data.get("spec"),
        )


def execute_task(task: RunTask) -> RunRecord:
    """Run one grid cell (top-level so worker processes can import it).

    Audit cells run under the invariant oracles and fold the verdict
    into the metrics (``audit_ok``, ``audit_violations``) so the JSONL
    store and :func:`repro.analysis.aggregate.audit_summary` can
    aggregate them campaign-wide."""
    if task.audit and task.spec.system != "pbft":
        audited = audit_scenario(task.spec, scenario=task.scenario)
        metrics = dict(audited.result.metrics)
        metrics["audit_ok"] = 1.0 if audited.report.ok else 0.0
        metrics["audit_violations"] = float(len(audited.report.violations))
    else:
        metrics = run_scenario(task.spec).metrics
    return RunRecord(
        scenario=task.scenario,
        system=task.system,
        x_label=task.x_label,
        repeat=task.repeat,
        seed=task.spec.seed,
        metrics=metrics,
        spec=task.spec.to_dict(),
    )


class Campaign:
    """Expand a scenario's grid and run every cell, optionally in parallel."""

    def __init__(
        self,
        scenario: Scenario,
        repeats: int = 1,
        base_seed: int = 0,
        systems: typing.Sequence[str] | None = None,
        audit: bool = False,
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.scenario = scenario
        self.repeats = repeats
        self.base_seed = base_seed
        self.systems = tuple(systems) if systems is not None else scenario.systems
        self.audit = audit
        if not self.systems:
            raise ValueError("systems must name at least one system")

    def plan(self) -> list[RunTask]:
        """The full grid, with per-cell deterministic seeds baked in.

        Repeat 0 runs ``spec.seed + base_seed`` -- with the default
        ``base_seed=0`` that is the spec's curated seed, i.e. the
        registry's exact configuration, while a nonzero base seed
        shifts every cell deterministically. Repeats >= 1 get
        hash-derived seeds.
        """
        tasks = []
        for system, x_label, spec in self.scenario.expand(self.systems):
            for repeat in range(self.repeats):
                if repeat == 0:
                    seed = spec.seed + self.base_seed
                else:
                    seed = derive_seed(
                        self.base_seed, self.scenario.name, system, x_label, repeat
                    )
                tasks.append(
                    RunTask(
                        scenario=self.scenario.name,
                        system=system,
                        x_label=x_label,
                        repeat=repeat,
                        spec=spec.replace(seed=seed),
                        audit=self.audit and system != "pbft",
                    )
                )
        return tasks

    def execute(self, jobs: int | None = 1, store=None) -> list[RunRecord]:
        """Run the grid; more than one job fans out over a process pool.

        ``jobs=None`` picks the machine default; any request is clamped
        to ``max(1, cpu_count - 1)`` (see :func:`clamp_jobs`) and the
        effective value is logged.  ``store`` (a
        :class:`repro.experiments.store.ResultStore`) receives each
        record *as it completes* -- an interrupted campaign keeps
        everything already measured.
        """
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        tasks = self.plan()
        jobs = clamp_jobs(jobs, len(tasks))
        records = []
        if jobs == 1 or len(tasks) <= 1:
            for task in tasks:
                record = execute_task(task)
                if store is not None:
                    store.append(record)
                records.append(record)
        else:
            # imap_unordered so a slow cell cannot buffer finished
            # results: each record is persisted the moment its run ends.
            with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
                for record in pool.imap_unordered(execute_task, tasks):
                    if store is not None:
                        store.append(record)
                    records.append(record)
            order = {
                (t.system, t.x_label, t.repeat): i for i, t in enumerate(tasks)
            }
            records.sort(key=lambda r: order[(r.system, r.x_label, r.repeat)])
        return records
