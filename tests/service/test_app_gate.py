"""The FastAPI adapter is an optional extra, gated at import time."""

import importlib.util

import pytest

from repro.service.app import create_app

_HAVE_FASTAPI = importlib.util.find_spec("fastapi") is not None


@pytest.mark.skipif(_HAVE_FASTAPI, reason="fastapi installed; the gate is open")
def test_missing_fastapi_names_the_extra_and_the_fallback():
    with pytest.raises(ImportError) as excinfo:
        create_app(gateway=None)
    message = str(excinfo.value)
    assert "repro[service]" in message
    assert "repro serve" in message  # points at the stdlib alternative


@pytest.mark.skipif(not _HAVE_FASTAPI, reason="fastapi not installed")
def test_create_app_builds_with_fastapi_present():
    from repro.experiments.runner import build_ordering_group
    from repro.experiments.spec import ScenarioSpec
    from repro.service import OrderingGateway
    from repro.sim.scheduler import Simulator

    sim = Simulator(seed=1)
    group = build_ordering_group(sim, ScenarioSpec(system="fs-newtop", seed=1))
    app = create_app(OrderingGateway(sim, group))
    paths = {route.path for route in app.routes}
    assert {"/healthz", "/v1/status", "/v1/submit", "/v1/stream"} <= paths
