"""API-key derivation and registry edges."""

import pytest

from repro.service.auth import ApiKeyRegistry, derive_key


def test_derived_keys_are_deterministic_and_seed_scoped():
    assert derive_key("client-0", seed=7) == derive_key("client-0", seed=7)
    assert derive_key("client-0", seed=7) != derive_key("client-0", seed=8)
    assert derive_key("client-0", seed=7) != derive_key("client-1", seed=7)
    assert derive_key("client-0").startswith("sk-")


def test_generate_issues_one_key_per_client():
    registry = ApiKeyRegistry.generate(3, seed=5)
    assert len(registry) == 3
    assert registry.client_ids == ["client-0", "client-1", "client-2"]
    for client_id in registry.client_ids:
        assert registry.authenticate(registry.key_of(client_id)) == client_id


def test_authenticate_rejects_unknown_empty_and_none():
    registry = ApiKeyRegistry.generate(2)
    assert registry.authenticate("sk-not-a-key") is None
    assert registry.authenticate("") is None
    assert registry.authenticate(None) is None


def test_rotation_revokes_the_previous_key():
    registry = ApiKeyRegistry()
    old = registry.issue("alice", "sk-old")
    registry.issue("alice", "sk-new")
    assert registry.authenticate(old) is None
    assert registry.authenticate("sk-new") == "alice"
    assert len(registry) == 1


def test_cross_client_key_reuse_is_rejected():
    registry = ApiKeyRegistry()
    registry.issue("alice", "sk-shared")
    with pytest.raises(ValueError, match="already issued"):
        registry.issue("bob", "sk-shared")
