"""The closed-loop fleet on the simulator: completion, shedding, feeds."""

import pytest

from repro.experiments.runner import build_ordering_group, build_sharded_group
from repro.experiments.spec import ScenarioSpec, ShardSpec
from repro.service import ServiceSpec, ServiceWorkload
from repro.service.workload import zipf_cdf
from repro.sim.scheduler import Simulator


def run_fleet(service_spec, n_members=4, shards=None, seed=3):
    sim = Simulator(seed=seed)
    if shards:
        scenario = ScenarioSpec(
            system="fs-newtop",
            n_members=n_members,
            seed=seed,
            shard=ShardSpec(shards=shards, keyspace=32),
        )
        group = build_sharded_group(sim, scenario)
        workload = ServiceWorkload(sim, group, service_spec, keyspace=32)
    else:
        scenario = ScenarioSpec(system="fs-newtop", n_members=n_members, seed=seed)
        group = build_ordering_group(sim, scenario)
        workload = ServiceWorkload(sim, group, service_spec)
    workload.run(settle_ms=10_000.0)
    return workload


def test_zipf_cdf_is_monotone_and_skewed():
    cdf = zipf_cdf(8, 1.1)
    assert len(cdf) == 8
    assert cdf == sorted(cdf)
    # Rank 1 carries the largest single mass.
    assert cdf[0] > cdf[-1] - cdf[-2]
    # s=0 degenerates to uniform.
    flat = zipf_cdf(4, 0.0)
    assert flat == pytest.approx([1.0, 2.0, 3.0, 4.0])


def test_fleet_completes_with_a_clean_feed():
    workload = run_fleet(
        ServiceSpec(sessions=12, ops_per_session=3, think_ms=20.0, subscribers=2)
    )
    metrics = workload.service_metrics()
    assert metrics["service_sessions_done"] == 12
    assert metrics["service_gave_up"] == 0
    assert metrics["service_admitted"] == 36
    assert metrics["service_sequenced"] == 36
    assert metrics["service_stream_gaps"] == 0
    assert metrics["service_stream_mismatches"] == 0
    # Every admitted op reached every member (the recorder's view).
    assert workload.recorder.fully_delivered(workload.n_members) == 36


def test_sharded_fleet_keeps_both_feeds_gap_free():
    workload = run_fleet(
        ServiceSpec(
            sessions=20,
            ops_per_session=2,
            think_ms=15.0,
            subscribers=3,
            reconnect_every=7,
            keyspace=32,
        ),
        shards=2,
    )
    metrics = workload.service_metrics()
    assert metrics["service_sessions_done"] == 20
    assert metrics["service_stream_gaps"] == 0
    assert metrics["service_stream_mismatches"] == 0
    assert metrics["service_reconnects"] > 0  # resumption was exercised
    # Both shards sequenced something under zipf-keyed traffic.
    assert all(seq > 0 for seq in workload.gateway._next_seq)


def test_overload_sheds_via_429_without_feed_violations():
    workload = run_fleet(
        ServiceSpec(
            sessions=40,
            ops_per_session=2,
            think_ms=5.0,
            rate_limit_per_s=20.0,
            burst=2,
            max_inflight=4,
            max_retries=2,
            subscribers=2,
        )
    )
    metrics = workload.service_metrics()
    assert metrics["service_rejected"] > 0
    assert metrics["service_gave_up"] > 0  # the budget is deliberately tiny
    assert metrics["service_inflight_peak"] <= 4
    # Correctness among admitted ops is untouched by the shedding.
    assert metrics["service_stream_gaps"] == 0
    assert metrics["service_stream_mismatches"] == 0
    assert metrics["service_sequenced"] == metrics["service_admitted"]


def test_retries_eventually_succeed_with_headroom():
    # Rate-limited but with enough retries: everyone gets through.  One
    # shared client means the eight staggered sessions contend on a
    # single one-token bucket, so shedding is guaranteed.
    workload = run_fleet(
        ServiceSpec(
            clients=1,
            sessions=8,
            ops_per_session=2,
            think_ms=10.0,
            rate_limit_per_s=100.0,
            burst=1,
            max_retries=20,
        )
    )
    metrics = workload.service_metrics()
    assert metrics["service_sessions_done"] == 8
    assert metrics["service_gave_up"] == 0
    assert metrics["service_rejected_rate"] > 0  # shedding did happen


def test_fleet_runs_identically_shaped_on_both_spec_paths():
    # The runner path (spec.gateway) must produce the same fleet the
    # direct construction does -- the metrics integration contract.
    from repro.experiments.runner import run_scenario

    spec = ScenarioSpec(
        system="fs-newtop",
        n_members=4,
        seed=3,
        gateway=ServiceSpec(sessions=12, ops_per_session=3, think_ms=20.0),
        settle_ms=10_000.0,
    )
    metrics = run_scenario(spec).metrics
    direct = run_fleet(
        ServiceSpec(sessions=12, ops_per_session=3, think_ms=20.0)
    ).service_metrics()
    assert metrics["service_admitted"] == direct["service_admitted"]
    assert metrics["service_sequenced"] == direct["service_sequenced"]
    assert metrics["ordered"] == direct["service_sequenced"]
