"""The registered service scenarios through the full invariant audit.

These are the end-to-end gates: a client fleet drives the gateway,
the gateway drives the (possibly sharded) group, and all eight
invariant oracles watch the trace.  ``svc_fleet_smoke`` and
``svc_overload`` run on every tier-1 pass; the 1000-session fleet is
behind ``--runslow``.
"""

import pytest

from repro.experiments.registry import get_scenario
from repro.experiments.runner import audit_scenario


def _audited(name):
    scenario = get_scenario(name)
    run = audit_scenario(scenario.base)
    assert run.report.ok, run.report.render()
    return run.result.metrics


def test_svc_fleet_smoke_passes_every_oracle():
    metrics = _audited("svc_fleet_smoke")
    assert metrics["service_sessions_done"] == metrics["service_sessions"]
    assert metrics["service_stream_gaps"] == 0
    assert metrics["service_stream_mismatches"] == 0
    assert metrics["service_reconnects"] > 0
    assert metrics["fail_signals"] == 0  # no spurious fail-signals


def test_svc_overload_sheds_without_violations():
    metrics = _audited("svc_overload")
    # The point of the scenario: real shedding, zero correctness cost.
    assert metrics["service_rejected"] > 0
    assert metrics["service_stream_gaps"] == 0
    assert metrics["service_stream_mismatches"] == 0
    assert metrics["service_sequenced"] == metrics["service_admitted"]
    assert metrics["fail_signals"] == 0


@pytest.mark.slow
def test_svc_fleet_1k_sessions_pass_every_oracle():
    metrics = _audited("svc_fleet_1k")
    assert metrics["service_sessions"] == 1000
    assert metrics["service_sessions_done"] == 1000
    assert metrics["service_stream_gaps"] == 0
    assert metrics["service_stream_mismatches"] == 0
    assert metrics["fail_signals"] == 0
