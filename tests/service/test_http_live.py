"""The stdlib HTTP/SSE front end on a real socket.

Each test builds the full ``repro serve`` stack -- asyncio transport,
ordering group, gateway, :class:`ServiceHttpServer` on an ephemeral
port -- and drives it with a raw asyncio client.  A permanent idle
check keeps the run alive (a server idles by design); the client
coroutine ends the run by failing the clock with a sentinel.
"""

import asyncio
import json

import pytest

from repro.experiments.spec import ScenarioSpec, TransportSpec
from repro.service import ServiceSpec
from repro.service.serve import build_server

pytestmark = pytest.mark.realtime


class _Done(Exception):
    """Sentinel the client raises through the clock to end the run."""


def run_live(service_spec, client, n_members=4, seed=3):
    """Serve a fresh stack and run ``client(handle)`` against it."""
    spec = ScenarioSpec(
        system="fs-newtop",
        n_members=n_members,
        seed=seed,
        transport=TransportSpec(kind="asyncio"),
        gateway=service_spec,
    )
    handle = build_server(spec, port=0)
    clock = handle.clock
    clock.add_idle_check(lambda: False)  # never quiesce; the client decides
    box = {}

    async def driver():
        try:
            while not handle.server.port:  # wait for the listener to bind
                await asyncio.sleep(0.005)
            box["value"] = await asyncio.wait_for(client(handle), timeout=20.0)
        except BaseException as exc:
            box["error"] = exc
        finally:
            clock.fail(_Done())

    clock.add_starter(driver)
    with pytest.raises(_Done):
        handle.run(until_ms=60_000.0)
    if "error" in box:
        raise box["error"]
    return box.get("value")


def good_key(handle, index=0):
    registry = handle.gateway.registry
    return registry.key_of(registry.client_ids[index])


# ----------------------------------------------------------------------
# a minimal raw HTTP client
# ----------------------------------------------------------------------
async def request(port, method, path, key=None, body=None):
    """One request over a fresh connection; returns (status, headers, json)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        lines = [f"{method} {path} HTTP/1.1", "Host: localhost"]
        if key is not None:
            lines.append(f"Authorization: Bearer {key}")
        lines.append(f"Content-Length: {len(payload)}")
        lines.append("Connection: close")
        lines.append("\r\n")
        writer.write("\r\n".join(lines).encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, body_bytes = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    headers = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_bytes) if body_bytes else None


async def open_stream(port, key, cursors=None):
    """Open /v1/stream and consume the response headers."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    path = "/v1/stream" if cursors is None else f"/v1/stream?from={cursors}"
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\nHost: localhost\r\n"
            f"Authorization: Bearer {key}\r\n\r\n"
        ).encode()
    )
    await writer.drain()
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout=5.0)
        if line in (b"\r\n", b"\n"):
            break
    return reader, writer


async def read_event(reader):
    """The next SSE event carrying data (skips the retry preamble)."""
    while True:
        fields = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            text = line.decode().rstrip("\n")
            if not text:
                break
            name, _, value = text.partition(":")
            fields[name.strip()] = value.strip()
        if "data" in fields:
            return fields["id"], json.loads(fields["data"])


# ----------------------------------------------------------------------
# tests
# ----------------------------------------------------------------------
def test_healthz_status_and_auth_edges():
    async def client(handle):
        port = handle.server.port
        status, _, body = await request(port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, _, _ = await request(port, "GET", "/v1/status")
        assert status == 401  # status needs a key
        status, _, _ = await request(port, "GET", "/v1/status", key="sk-wrong")
        assert status == 401
        status, _, body = await request(
            port, "GET", "/v1/status", key=good_key(handle)
        )
        assert status == 200
        assert body["members"] == 4 and body["shards"] == 1
        status, _, _ = await request(port, "GET", "/nope", key=good_key(handle))
        assert status == 404

    run_live(ServiceSpec(), client)


def test_bad_key_submit_is_401_and_counted():
    async def client(handle):
        status, _, body = await request(
            handle.server.port, "POST", "/v1/submit", key="sk-wrong", body={"payload": 1}
        )
        assert status == 401 and body["reason"] == "unauthorized"
        assert handle.gateway.rejected_auth == 1

    run_live(ServiceSpec(), client)


def test_submitted_ops_flow_to_the_stream_in_order():
    async def client(handle):
        port = handle.server.port
        key = good_key(handle)
        reader, writer = await open_stream(port, key)
        for i in range(3):
            status, _, body = await request(
                port, "POST", "/v1/submit", key=key, body={"payload": i}
            )
            assert status == 202 and body["op_id"].startswith("op-")
        seen = [await read_event(reader) for _ in range(3)]
        writer.close()
        assert [event["seq"] for _, event in seen] == [1, 2, 3]
        assert [event_id for event_id, _ in seen] == ["0:1", "0:2", "0:3"]

    run_live(ServiceSpec(), client)


def test_rate_limit_429_carries_the_retry_after_header():
    async def client(handle):
        port = handle.server.port
        key = good_key(handle)
        outcomes = []
        for i in range(4):
            status, headers, body = await request(
                port, "POST", "/v1/submit", key=key, body={"payload": i}
            )
            outcomes.append((status, headers, body))
        shed = [o for o in outcomes if o[0] == 429]
        assert len(shed) >= 1  # burst of 2, negligible refill at 2/s
        status, headers, body = shed[0]
        assert body["reason"] == "rate_limited"
        assert body["retry_after_ms"] > 0
        assert int(headers["retry-after"]) >= 1  # whole seconds, rounded up

    run_live(ServiceSpec(burst=2, rate_limit_per_s=2.0), client)


def test_stream_resumes_from_a_cursor_after_reconnect():
    async def client(handle):
        port = handle.server.port
        key = good_key(handle)
        reader, writer = await open_stream(port, key)
        for i in range(2):
            await request(port, "POST", "/v1/submit", key=key, body={"payload": i})
        first = [await read_event(reader) for _ in range(2)]
        assert [e["seq"] for _, e in first] == [1, 2]
        last_id = first[-1][0]
        writer.close()
        # An op sequenced while disconnected is replayed on resume.
        await request(port, "POST", "/v1/submit", key=key, body={"payload": 99})
        reader, writer = await open_stream(port, key, cursors=last_id)
        event_id, event = await read_event(reader)
        writer.close()
        assert (event_id, event["seq"]) == ("0:3", 3)

    run_live(ServiceSpec(), client)


def test_metrics_endpoint_serves_prometheus_text():
    async def client(handle):
        port = handle.server.port
        status, _, _ = await request(
            port, "POST", "/v1/submit", key=good_key(handle), body={"payload": 1}
        )
        assert status == 202
        from repro.obs.prom import parse

        async def scrape():
            # /metrics is not JSON, so drive it raw (no auth required).
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body = raw.partition(b"\r\n\r\n")
            head_text = head.decode("latin-1")
            assert " 200 " in head_text.splitlines()[0]
            assert "text/plain; version=0.0.4" in head_text
            return parse(body.decode())

        def signs(document):
            return sum(
                value
                for name, _, value in document["repro_fso_sign_ms"]["samples"]
                if name.endswith("_count")
            )

        # Ordering runs asynchronously behind the 202: re-scrape until
        # the admitted submit has flowed through the signing stage.
        families = await scrape()
        while signs(families) == 0:
            await asyncio.sleep(0.05)
            families = await scrape()
        admissions = {
            labels.get("outcome"): value
            for _, labels, value in families["repro_gateway_admission_total"][
                "samples"
            ]
        }
        assert admissions.get("accepted", 0.0) >= 1.0
        assert families["repro_fso_sign_ms"]["type"] == "histogram"
        status, _, _ = await request(port, "POST", "/metrics")
        assert status == 405

    run_live(ServiceSpec(), client)
