"""Token-bucket arithmetic: admission, refill, and the retry hint.

Buckets are lazily refilled from caller timestamps, so every edge is
checked with plain numbers -- no clocks, no sleeping.
"""

import pytest

from repro.service.ratelimit import RateLimiter, TokenBucket


def test_burst_is_admitted_then_exhaustion_sheds():
    bucket = TokenBucket(capacity=3, rate_per_s=1000.0)
    assert [bucket.try_take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
    assert bucket.try_take(0.0) > 0.0


def test_retry_hint_is_the_exact_time_to_one_token():
    bucket = TokenBucket(capacity=1, rate_per_s=100.0)  # 0.1 tokens/ms
    assert bucket.try_take(0.0) == 0.0
    hint = bucket.try_take(0.0)
    assert hint == pytest.approx(10.0)  # 1 token / 0.1 per ms
    # Waiting exactly the hint admits again.
    assert bucket.try_take(hint) == 0.0


def test_refill_is_proportional_and_capped():
    bucket = TokenBucket(capacity=5, rate_per_s=1000.0)  # 1 token/ms
    for _ in range(5):
        bucket.try_take(0.0)
    assert bucket.available(2.0) == pytest.approx(2.0)
    # A long idle period refills to capacity, never beyond.
    assert bucket.available(10_000.0) == pytest.approx(5.0)


def test_mid_bucket_partial_refill_halves_the_hint():
    bucket = TokenBucket(capacity=1, rate_per_s=100.0)
    bucket.try_take(0.0)
    hint = bucket.try_take(5.0)  # 0.5 tokens refilled by then
    assert hint == pytest.approx(5.0)


def test_limiter_isolates_clients():
    limiter = RateLimiter(capacity=1, rate_per_s=10.0)
    assert limiter.try_take("a", 0.0) == 0.0
    assert limiter.try_take("a", 0.0) > 0.0  # a is exhausted
    assert limiter.try_take("b", 0.0) == 0.0  # b is untouched
    assert limiter.bucket_of("a") is not limiter.bucket_of("b")


def test_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(capacity=0, rate_per_s=1.0)
    with pytest.raises(ValueError):
        TokenBucket(capacity=1, rate_per_s=0.0)
