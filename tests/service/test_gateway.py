"""Gateway admission control and the sequenced delivery feed.

Everything runs on the discrete-event simulator: admission decisions
are clock-driven, so the edges (401, bucket exhaustion, inflight cap,
resume-from-cursor) are exact and deterministic.
"""

import pytest

from repro.experiments.runner import build_ordering_group, build_sharded_group
from repro.experiments.spec import ScenarioSpec, ShardSpec
from repro.service import (
    OVERLOADED,
    RATE_LIMITED,
    UNAUTHORIZED,
    OrderingGateway,
    ServiceSpec,
    derive_key,
)
from repro.sim.scheduler import Simulator


def make_gateway(spec=None, n_members=4, shards=None, seed=3):
    sim = Simulator(seed=seed)
    if shards:
        scenario = ScenarioSpec(
            system="fs-newtop",
            n_members=n_members,
            seed=seed,
            shard=ShardSpec(shards=shards, keyspace=32),
        )
        group = build_sharded_group(sim, scenario)
    else:
        scenario = ScenarioSpec(system="fs-newtop", n_members=n_members, seed=seed)
        group = build_ordering_group(sim, scenario)
    gateway = OrderingGateway(sim, group, spec)
    return sim, gateway


def good_key(gateway, index=0):
    return gateway.registry.key_of(gateway.registry.client_ids[index])


def test_bad_key_is_401_and_does_not_charge_the_bucket():
    sim, gateway = make_gateway(ServiceSpec(burst=1, rate_limit_per_s=1.0))
    for _ in range(5):
        outcome = gateway.submit("sk-wrong", payload=1)
        assert (outcome.status, outcome.reason) == (401, UNAUTHORIZED)
    assert gateway.rejected_auth == 5
    # The flood charged nothing: the real client's single token is intact.
    assert gateway.submit(good_key(gateway), payload=1).admitted


def test_bucket_exhaustion_is_429_with_the_exact_retry_hint():
    sim, gateway = make_gateway(ServiceSpec(burst=2, rate_limit_per_s=100.0))
    key = good_key(gateway)
    assert gateway.submit(key, payload=0).admitted
    assert gateway.submit(key, payload=1).admitted
    shed = gateway.submit(key, payload=2)
    assert (shed.status, shed.reason) == (429, RATE_LIMITED)
    assert shed.retry_after_ms == pytest.approx(10.0)  # 1 token at 0.1/ms
    assert gateway.rejected_rate == 1


def test_inflight_cap_is_429_overloaded_with_the_spec_hint():
    spec = ServiceSpec(max_inflight=2, burst=50, retry_after_ms=77.0)
    sim, gateway = make_gateway(spec)
    key = good_key(gateway)
    assert gateway.submit(key, payload=0).admitted
    assert gateway.submit(key, payload=1).admitted
    shed = gateway.submit(key, payload=2)
    assert (shed.status, shed.reason) == (429, OVERLOADED)
    assert shed.retry_after_ms == 77.0
    # Once deliveries drain the pipeline, admission resumes.
    sim.run(until=10_000.0)
    assert gateway.inflight == 0
    assert gateway.submit(key, payload=3).admitted


def test_sequencing_is_gap_free_and_latency_recorded():
    sim, gateway = make_gateway()
    key = good_key(gateway)
    seen = []
    gateway.subscribe(lambda e: seen.append(e))
    for i in range(6):
        assert gateway.submit(key, payload=i).admitted
    sim.run(until=10_000.0)
    assert [e.seq for e in seen] == [1, 2, 3, 4, 5, 6]
    assert gateway.sequenced == 6
    assert all(e.delivered_at >= e.submitted_at for e in seen)
    metrics = gateway.service_metrics()
    assert metrics["service_submit_p99_ms"] >= metrics["service_submit_p50_ms"] > 0


def test_sharded_feed_routes_keys_and_sequences_per_shard():
    sim, gateway = make_gateway(n_members=4, shards=2)
    key = good_key(gateway)
    events = []
    gateway.subscribe(events.append)
    routed = set()
    for i in range(8):
        outcome = gateway.submit(key, payload=i, key=f"k-{i}")
        assert outcome.admitted
        routed.add(outcome.shard)
    sim.run(until=20_000.0)
    assert routed == {0, 1}  # zipf-free round: both shards used
    per_shard = {0: [], 1: []}
    for event in events:
        per_shard[event.shard].append(event.seq)
    for shard, seqs in per_shard.items():
        assert seqs == list(range(1, len(seqs) + 1)), f"shard {shard} has gaps"
    assert sum(len(s) for s in per_shard.values()) == 8
    # The same key always lands on the same shard.
    again = gateway.submit(key, payload=99, key="k-0")
    assert again.shard == next(e.shard for e in events if e.key == "k-0")


def test_subscriber_resumes_from_cursor_without_loss_or_replay():
    sim, gateway = make_gateway()
    key = good_key(gateway)
    first = []
    subscription = gateway.subscribe(first.append)
    for i in range(4):
        gateway.submit(key, payload=i)
    sim.run(until=10_000.0)
    assert [e.seq for e in first] == [1, 2, 3, 4]
    cursors = dict(subscription.cursors)
    subscription.close()
    # Events sequenced while disconnected...
    for i in range(3):
        gateway.submit(key, payload=10 + i)
    sim.run(until=20_000.0)
    # ...are replayed on resume, and live events follow.
    resumed = []
    gateway.subscribe(resumed.append, from_seq=cursors)
    assert [e.seq for e in resumed] == [5, 6, 7]
    gateway.submit(key, payload=99)
    sim.run(until=30_000.0)
    assert [e.seq for e in resumed] == [5, 6, 7, 8]


def test_resume_ahead_of_the_feed_is_rejected():
    sim, gateway = make_gateway()
    with pytest.raises(ValueError, match="cannot resume"):
        gateway.subscribe(lambda e: None, from_seq={0: 5})


def test_status_document_shape():
    sim, gateway = make_gateway(ServiceSpec(clients=2))
    gateway.submit("sk-wrong", payload=0)
    gateway.submit(good_key(gateway), payload=1)
    status = gateway.status()
    assert status["members"] == 4
    assert status["shards"] == 1
    assert status["admitted"] == 1
    assert status["inflight"] == 1
    assert status["rejected"] == {"auth": 1, "rate_limited": 0, "overloaded": 0}
    assert status["clients"] == 2
    assert status["next_seq"] == {"0": 0}


def test_gateway_works_on_the_crash_tolerant_group_too():
    sim = Simulator(seed=2)
    group = build_ordering_group(
        sim, ScenarioSpec(system="newtop", n_members=3, seed=2)
    )
    gateway = OrderingGateway(sim, group, ServiceSpec(clients=1))
    events = []
    gateway.subscribe(events.append)
    assert gateway.submit(derive_key("client-0", seed=7), payload="x").admitted
    sim.run(until=10_000.0)
    assert [e.seq for e in events] == [1]


def test_status_reports_latency_quantiles():
    sim, gateway = make_gateway()
    key = good_key(gateway)
    assert gateway.status()["latency_ms"] == {"p50": 0.0, "p99": 0.0, "p999": 0.0}
    for i in range(6):
        assert gateway.submit(key, payload=i).admitted
    sim.run(until=10_000.0)
    latency = gateway.status()["latency_ms"]
    assert latency["p999"] >= latency["p99"] >= latency["p50"] > 0
    metrics = gateway.service_metrics()
    assert metrics["service_submit_p999_ms"] >= metrics["service_submit_p99_ms"]


def test_obs_hub_counts_admission_outcomes():
    from repro.obs import ObsHub, install_hub

    sim = Simulator(seed=3)
    hub = install_hub(sim, ObsHub())
    scenario = ScenarioSpec(system="fs-newtop", n_members=4, seed=3)
    group = build_ordering_group(sim, scenario)
    gateway = OrderingGateway(sim, group, ServiceSpec())
    gateway.submit("sk-wrong", payload=0)
    gateway.submit(good_key(gateway), payload=1)
    sim.run(until=10_000.0)
    outcomes = {
        dict(i.labels)["outcome"]: i.value
        for i in hub.registry.instruments()
        if i.name == "repro_gateway_admission_total"
    }
    assert outcomes["unauthorized"] == 1.0
    assert outcomes["accepted"] == 1.0
    assert hub.submit_ms.count == 1
