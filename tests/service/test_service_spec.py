"""ServiceSpec validation and its ScenarioSpec integration."""

import pytest

from repro.experiments.spec import ScenarioSpec
from repro.service import ServiceSpec


def test_roundtrips_through_json_values():
    spec = ServiceSpec(
        clients=2,
        rate_limit_per_s=50.0,
        burst=5,
        max_inflight=32,
        sessions=100,
        ops_per_session=3,
        reconnect_every=10,
    )
    assert ServiceSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize(
    "overrides",
    [
        {"clients": 0},
        {"rate_limit_per_s": 0.0},
        {"burst": 0},
        {"max_inflight": 0},
        {"retry_after_ms": 0.0},
        {"sessions": 0},
        {"ops_per_session": 0},
        {"think_ms": 0.0},
        {"zipf_s": -0.1},
        {"keyspace": 0},
        {"subscribers": -1},
        {"reconnect_every": -1},
        {"max_retries": -1},
        {"ramp_ms": -1.0},
    ],
)
def test_validation_rejects_degenerate_values(overrides):
    with pytest.raises(ValueError):
        ServiceSpec(**overrides)


def test_scenario_spec_carries_and_roundtrips_the_gateway():
    spec = ScenarioSpec(gateway=ServiceSpec(sessions=7))
    data = spec.to_dict()
    assert data["gateway"]["sessions"] == 7
    assert ScenarioSpec.from_dict(data) == spec
    # Absent stays absent.
    bare = ScenarioSpec()
    assert bare.to_dict()["gateway"] is None
    assert ScenarioSpec.from_dict(bare.to_dict()).gateway is None


def test_gateway_on_pbft_is_rejected():
    with pytest.raises(ValueError, match="ordering systems"):
        ScenarioSpec(system="pbft", gateway=ServiceSpec())
