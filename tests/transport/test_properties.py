"""Property-based transport tests.

Two serialisation round-trips (``TransportSpec`` rides scenario specs
into worker processes; ``CalibrationResult`` rides run reports) and the
core scheduling property: under arbitrary schedule/cancel
interleavings, timers fire in exactly ``(deadline, priority, seq)``
order on *both* clocks -- the discrete-event simulator and the
wall-clock :class:`~repro.transport.aio.AsyncioClock` (driven here on
the fake loop, so no real sleeping).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.spec import TransportSpec
from repro.sim.scheduler import Simulator
from repro.transport.aio import AsyncioClock
from repro.transport.calibration import CalibrationResult

from fake_loop import FakeTimeLoop


# ----------------------------------------------------------------------
# serialisation round-trips
# ----------------------------------------------------------------------
@st.composite
def transport_specs(draw):
    kind = draw(st.sampled_from(("sim", "asyncio")))
    tcp = draw(st.booleans()) if kind == "asyncio" else False
    return TransportSpec(
        kind=kind,
        tcp=tcp,
        time_scale=draw(st.floats(0.01, 100.0, allow_nan=False)),
        calibrate=draw(st.booleans()),
    )


@given(spec=transport_specs())
def test_transport_spec_round_trips(spec):
    restored = TransportSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec


_MS = st.floats(0.0, 1e4, allow_nan=False)


@given(
    result=st.builds(
        CalibrationResult,
        samples=st.integers(0, 10_000),
        payload_bytes=st.integers(0, 1 << 20),
        sign_mean_ms=_MS,
        sign_p95_ms=_MS,
        verify_mean_ms=_MS,
        verify_p95_ms=_MS,
        countersign_mean_ms=_MS,
        countersign_p95_ms=_MS,
        timer_lag_mean_ms=_MS,
        timer_lag_p95_ms=_MS,
        timer_lag_max_ms=_MS,
        base_delta_ms=_MS,
        safety=st.floats(0.001, 100.0, allow_nan=False),
        delta_ms=st.floats(0.001, 1e6, allow_nan=False),
    )
)
def test_calibration_result_round_trips(result):
    restored = CalibrationResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result


# ----------------------------------------------------------------------
# timer-ordering property on both clocks
# ----------------------------------------------------------------------
@st.composite
def timer_programs(draw):
    """A batch of (delay_ms, priority) timers plus a cancellation set."""
    timers = draw(
        st.lists(
            st.tuples(st.floats(0.0, 50.0, allow_nan=False), st.integers(-2, 2)),
            min_size=1,
            max_size=12,
        )
    )
    cancelled = draw(
        st.sets(st.integers(0, len(timers) - 1), max_size=len(timers))
    )
    return timers, cancelled


def _expected_order(timers, cancelled):
    entries = [
        (delay, priority, seq)
        for seq, (delay, priority) in enumerate(timers)
        if seq not in cancelled
    ]
    return [seq for __, __, seq in sorted(entries)]


def _fire_on_simulator(timers, cancelled):
    sim = Simulator(seed=0)
    fired: list[int] = []
    handles = [
        sim.schedule(delay, fired.append, seq, priority=priority)
        for seq, (delay, priority) in enumerate(timers)
    ]
    for seq in cancelled:
        handles[seq].cancel()
    sim.run()
    return fired


def _fire_on_asyncio_clock(timers, cancelled):
    loop = FakeTimeLoop()
    try:
        clock = AsyncioClock(seed=0, loop=loop)
        clock.bind()
        fired: list[int] = []
        handles = [
            clock.schedule(delay, fired.append, seq, priority=priority)
            for seq, (delay, priority) in enumerate(timers)
        ]
        for seq in cancelled:
            handles[seq].cancel()
        loop.advance(0.1)  # past every 50ms-max deadline
        return fired
    finally:
        loop.close()


@settings(max_examples=60, deadline=None)
@given(program=timer_programs())
def test_timers_fire_in_deadline_order_on_both_clocks(program):
    timers, cancelled = program
    expected = _expected_order(timers, cancelled)
    assert _fire_on_simulator(timers, cancelled) == expected
    assert _fire_on_asyncio_clock(timers, cancelled) == expected
