"""Fixtures for deterministic transport tests.

The timer unit tests must not sleep, so they run the
:class:`~repro.transport.aio.AsyncioClock` on a
:class:`fake_loop.FakeTimeLoop` -- a selector event loop whose
``time()`` only moves when a test calls ``advance``.  ``call_at``
wakeups scheduled by the clock become due exactly when the test says
so, making timer ordering, clamping and cancellation fully
deterministic.  Only the small ``realtime``-marked subset runs a real
loop.
"""

import pytest

from fake_loop import FakeTimeLoop

from repro.transport.aio import AsyncioClock


@pytest.fixture
def fake_loop():
    loop = FakeTimeLoop()
    yield loop
    loop.close()


@pytest.fixture
def fake_clock(fake_loop):
    """An :class:`AsyncioClock` bound to the fake loop, epoch fixed."""
    clock = AsyncioClock(seed=0, loop=fake_loop)
    clock.bind()
    return clock
