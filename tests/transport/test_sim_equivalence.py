"""Regression pins: the sim backend is byte-identical to pre-transport.

The transport refactor's hard promise is that the default simulator
path did not move: same construction, same rng streams, same event
order, same trace bytes.  The hashes below were captured on the
pre-refactor tree (fig6-style, batched, S=1 sharded and plain newtop
runs); any drift in these fingerprints means the refactor changed
simulated behaviour and must be treated as a bug, not re-pinned
casually.

The second half proves :class:`~repro.transport.sim.SimTransport` is
pure delegation: routing the same runs through the transport facade
produces the same bytes.
"""

import pytest

from repro.experiments.runner import build_ordering_group
from repro.experiments.spec import BatchingSpec, ScenarioSpec, ShardSpec
from repro.perf import clear_caches
from repro.shard.group import build_sharded_group
from repro.sim.scheduler import Simulator
from repro.transport import SimTransport
from repro.workloads.ordering import OrderingWorkload, ShardedOrderingWorkload

SPECS = {
    "fig6_style": ScenarioSpec(
        system="fs-newtop", n_members=3, messages_per_member=4,
        interval=40.0, message_size=3, seed=7, settle_ms=500.0,
    ),
    "batched": ScenarioSpec(
        system="fs-newtop", n_members=3, messages_per_member=4,
        interval=40.0, message_size=3, seed=11, settle_ms=500.0,
        batching=BatchingSpec(max_batch=4, max_delay_ms=6.0, max_inflight=2),
    ),
    "sharded_s1": ScenarioSpec(
        system="fs-newtop", n_members=4, messages_per_member=3,
        interval=50.0, message_size=3, seed=5, settle_ms=500.0,
        shard=ShardSpec(shards=1),
    ),
    "newtop": ScenarioSpec(
        system="newtop", n_members=3, messages_per_member=4,
        interval=40.0, message_size=3, seed=3, settle_ms=500.0,
    ),
}

#: Captured on the pre-refactor tree (commit 3c91bcd lineage), before
#: repro.transport existed.
PINNED = {
    "fig6_style": "4efb5369e033f6badc6040c8bb29abd0496ceb46d5c62b2be764aba9b7c93ec5",
    "batched": "8d215782c2c3ff637ba6c6c091024397911add54c202cb8bea847f5e3de3224d",
    "sharded_s1": "0080436c8420d2241fe52b3ac1342c05f4d64b55602eab25e8912c5b63697cd5",
    "newtop": "d1cef1736c5099d4a3f2197e9cf91ef5ed1bedad07c30119543a42ab83ff9a7c",
}


def _trace_fingerprint(spec: ScenarioSpec, sim) -> str:
    """Mirror the runner's sim-path construction, trace stored."""
    if spec.shard is not None:
        group = build_sharded_group(sim, spec)
        workload = ShardedOrderingWorkload(
            sim,
            group,
            messages_per_member=spec.messages_per_member,
            interval=spec.interval,
            message_size=spec.message_size,
            service=spec.service,
            write_ratio=spec.write_ratio,
            keyspace=spec.shard.keyspace,
            cross_shard_ratio=spec.shard.cross_shard_ratio,
        )
    else:
        group = build_ordering_group(sim, spec)
        workload = OrderingWorkload(
            sim,
            group,
            messages_per_member=spec.messages_per_member,
            interval=spec.interval,
            message_size=spec.message_size,
            service=spec.service,
            write_ratio=spec.write_ratio,
        )
    workload.run(settle_ms=spec.settle_ms)
    clear_caches()
    return sim.trace.fingerprint()


@pytest.mark.parametrize("name", sorted(SPECS))
def test_sim_traces_match_pre_refactor_pins(name):
    spec = SPECS[name]
    assert _trace_fingerprint(spec, Simulator(seed=spec.seed)) == PINNED[name]


@pytest.mark.parametrize("name", sorted(SPECS))
def test_sim_transport_is_pure_delegation(name):
    spec = SPECS[name]
    with SimTransport(seed=spec.seed) as transport:
        assert transport.kind == "sim"
        assert _trace_fingerprint(spec, transport.clock) == PINNED[name]


def test_sim_transport_exposes_the_simulator():
    transport = SimTransport(seed=3)
    assert isinstance(transport.simulator, Simulator)
    assert transport.clock is transport.simulator
    assert transport.wall_metrics() == {}
