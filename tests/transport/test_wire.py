"""Wire codec tests: the canonical encoding must invert exactly.

The TCP hop reuses the signing encoder as its wire format, so the
decoder here is the only inverse in the codebase -- every protocol
object that can ride an :class:`~repro.net.message.Envelope` must
round-trip bit-exactly, and malformed or unregistered input must fail
loudly instead of instantiating arbitrary types.
"""

import asyncio
import dataclasses

import pytest

from repro.core.messages import FsInput
from repro.crypto.signing import Signature
from repro.net.message import Envelope
from repro.transport.wire import (
    MAX_FRAME_BYTES,
    WireDecodeError,
    frame,
    read_frame,
    register_wire_type,
    wire_decode,
    wire_encode,
)


# ----------------------------------------------------------------------
# round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -17,
        2**70,
        3.25,
        "",
        "héllo",
        b"",
        b"\x00\xff",
        [1, "two", None],
        (1, (2, (3,))),
        {"k": [True, 2.0], "nested": {"a": b"b"}},
    ],
)
def test_primitive_round_trip(value):
    assert wire_decode(wire_encode(value)) == value


def test_tuple_and_list_stay_distinct():
    assert wire_decode(wire_encode((1, 2))) == (1, 2)
    assert isinstance(wire_decode(wire_encode((1, 2))), tuple)
    assert isinstance(wire_decode(wire_encode([1, 2])), list)


def test_envelope_with_protocol_payload_round_trips():
    payload = FsInput(method="m", args=(1, "x"), input_id=("a", 1))
    envelope = Envelope(
        src="a", dst="b", payload=payload, size=10, sent_at=1.5, msg_id=3
    )
    decoded = wire_decode(wire_encode(envelope))
    assert decoded == envelope
    assert isinstance(decoded.payload, FsInput)


def test_signature_round_trips():
    sig = Signature(signer="member-0", value=b"\x01\x02")
    assert wire_decode(wire_encode(sig)) == sig


# ----------------------------------------------------------------------
# registry discipline
# ----------------------------------------------------------------------
def test_unregistered_dataclass_is_rejected_on_decode():
    @dataclasses.dataclass(frozen=True)
    class Sneaky:
        x: int = 1

    with pytest.raises(WireDecodeError, match="unregistered wire type"):
        wire_decode(wire_encode(Sneaky()))


def test_register_requires_a_dataclass():
    with pytest.raises(TypeError):
        register_wire_type(int)


def test_register_is_idempotent_but_rejects_collisions():
    @dataclasses.dataclass(frozen=True)
    class Original:
        x: int = 0

    @dataclasses.dataclass(frozen=True)
    class Impostor:
        x: int = 0

    register_wire_type(Original)
    register_wire_type(Original)  # re-registration is fine
    Impostor.__qualname__ = Original.__qualname__
    with pytest.raises(ValueError, match="collision"):
        register_wire_type(Impostor)


# ----------------------------------------------------------------------
# malformed input
# ----------------------------------------------------------------------
def test_trailing_bytes_rejected():
    with pytest.raises(WireDecodeError, match="trailing"):
        wire_decode(wire_encode(1) + b"x")


def test_truncated_value_rejected():
    encoded = wire_encode("hello world")
    with pytest.raises(WireDecodeError):
        wire_decode(encoded[: len(encoded) - 3])


def test_unknown_tag_rejected():
    with pytest.raises(WireDecodeError, match="unexpected tag"):
        wire_decode(b"Z")


def test_empty_input_rejected():
    with pytest.raises(WireDecodeError):
        wire_decode(b"")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def test_frame_prefixes_length():
    assert frame(b"abc") == b"\x00\x00\x00\x03abc"


def test_oversized_frame_rejected_on_encode():
    with pytest.raises(WireDecodeError, match="exceeds limit"):
        frame(b"\x00" * (MAX_FRAME_BYTES + 1))


def _drain(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


def test_read_frame_round_trip_and_clean_eof():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(frame(b"one") + frame(b"two"))
        reader.feed_eof()
        first = await read_frame(reader)
        second = await read_frame(reader)
        third = await read_frame(reader)
        return first, second, third

    assert _drain(scenario()) == (b"one", b"two", None)


def test_read_frame_rejects_eof_mid_header():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"\x00\x00")  # half a length prefix
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(WireDecodeError, match="mid-header"):
        _drain(scenario())


def test_read_frame_rejects_eof_mid_frame():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(frame(b"full payload")[:-4])
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(WireDecodeError, match="mid-frame"):
        _drain(scenario())


def test_read_frame_rejects_oversized_declared_length():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"\xff\xff\xff\xff")
        reader.feed_eof()
        return await read_frame(reader)

    with pytest.raises(WireDecodeError, match="exceeds limit"):
        _drain(scenario())
