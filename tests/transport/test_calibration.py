"""Calibration tests: measured host latencies -> live deadlines.

A live run's accuracy hinges on the derived delta dominating host
jitter, so the floor behaviour (``delta >= base_delta_ms``) and the
derivation chain into :class:`~repro.crypto.costmodel.CryptoCostModel`
and :class:`~repro.core.config.FsoConfig` are pinned here.  The actual
measurement runs with tiny sample counts to stay fast.
"""

import json

import pytest

from repro.core.config import FsoConfig
from repro.transport.calibration import (
    CalibrationResult,
    calibrate,
    percentile,
    probe_tcp_lag,
    probe_timer_lag,
)


# ----------------------------------------------------------------------
# percentile helper
# ----------------------------------------------------------------------
def test_percentile_nearest_rank():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.5) == 3.0
    assert percentile(values, 1.0) == 5.0


def test_percentile_empty_is_zero():
    assert percentile([], 0.95) == 0.0


def test_percentile_rejects_bad_quantile():
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


# ----------------------------------------------------------------------
# CalibrationResult validation and derivation
# ----------------------------------------------------------------------
def test_result_validation():
    with pytest.raises(ValueError):
        CalibrationResult(samples=-1)
    with pytest.raises(ValueError):
        CalibrationResult(safety=0.0)
    with pytest.raises(ValueError):
        CalibrationResult(delta_ms=0.0)


def test_cost_model_uses_measured_means():
    result = CalibrationResult(sign_mean_ms=0.25, verify_mean_ms=0.125)
    model = result.crypto_cost_model()
    assert model.sign_base_ms == 0.25
    assert model.verify_base_ms == 0.125


def test_cost_model_floors_zero_measurements():
    model = CalibrationResult().crypto_cost_model()
    assert model.sign_base_ms > 0.0
    assert model.verify_base_ms > 0.0


def test_fso_config_swaps_delta_and_keeps_batch_shape():
    base = FsoConfig(batch_max=8, batch_delay_ms=4.0, batch_inflight=2)
    result = CalibrationResult(delta_ms=17.5)
    derived = result.fso_config(base)
    assert derived.delta == 17.5
    assert derived.batch_max == 8
    assert derived.batch_delay_ms == 4.0
    assert derived.batch_inflight == 2


def test_fso_config_defaults_without_base():
    derived = CalibrationResult(delta_ms=9.0).fso_config()
    assert derived.delta == 9.0
    assert derived.batch_max == FsoConfig().batch_max


def test_result_json_round_trip():
    result = CalibrationResult(
        samples=4, sign_mean_ms=0.1, delta_ms=12.5, timer_lag_p95_ms=0.3
    )
    restored = CalibrationResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result


# ----------------------------------------------------------------------
# live measurement (tiny samples; still real crypto + a real loop)
# ----------------------------------------------------------------------
def test_probe_timer_lag_is_nonnegative():
    lags = probe_timer_lag(samples=3, delay_ms=1.0)
    assert len(lags) == 3
    assert all(lag >= 0.0 for lag in lags)


def test_calibrate_respects_the_delta_floor():
    result = calibrate(samples=4, timer_samples=2)
    assert result.scheme == "HmacScheme"
    assert result.samples == 4
    assert result.sign_mean_ms > 0.0
    assert result.verify_mean_ms > 0.0
    assert result.countersign_mean_ms > 0.0
    # HMAC on any sane host is microseconds; the floor must dominate.
    assert result.delta_ms >= result.base_delta_ms


def test_probe_tcp_lag_is_nonnegative():
    lags = probe_tcp_lag(samples=3, delay_ms=1.0, payload_bytes=64)
    assert len(lags) == 3
    assert all(lag >= 0.0 for lag in lags)


def test_calibrate_for_tcp_raises_the_floor_and_probes_loaded_lag():
    idle = calibrate(samples=2, timer_samples=2)
    loaded = calibrate(samples=2, timer_samples=2, tcp=True)
    # The TCP floor dominates the in-process one: socket servicing
    # steals the loop from timers far longer than idle jitter does.
    assert loaded.base_delta_ms >= 40.0 > idle.base_delta_ms
    assert loaded.delta_ms >= loaded.base_delta_ms
    assert loaded.tcp_lag_max_ms >= loaded.tcp_lag_p95_ms >= 0.0
    assert idle.tcp_lag_p95_ms == idle.tcp_lag_max_ms == 0.0


def test_calibrate_round_trips_through_json():
    result = calibrate(samples=2, timer_samples=2)
    restored = CalibrationResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result
