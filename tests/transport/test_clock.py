"""AsyncioClock unit tests on the fake (non-sleeping) loop.

Everything here must hold for the wall-clock backend to be a faithful
:class:`~repro.transport.base.Clock`: the simulator's ``(deadline,
priority, seq)`` firing discipline, the same seeded rng-stream
derivation, cancellation, and the clamp-don't-raise stance on
slightly-past absolute deadlines that real time forces.
"""

import pytest

from repro.sim.errors import SchedulingInPastError, SimulationLimitExceeded
from repro.sim.scheduler import Simulator
from repro.transport.aio import AsyncioClock, backoff_delays


def _recorder(into):
    def record(label):
        into.append(label)

    return record


# ----------------------------------------------------------------------
# firing discipline
# ----------------------------------------------------------------------
def test_timers_fire_in_deadline_order(fake_clock, fake_loop):
    fired = []
    record = _recorder(fired)
    fake_clock.schedule(30.0, record, "c")
    fake_clock.schedule(10.0, record, "a")
    fake_clock.schedule(20.0, record, "b")
    fake_loop.advance(0.05)
    assert fired == ["a", "b", "c"]


def test_same_deadline_breaks_ties_by_priority_then_seq(fake_clock, fake_loop):
    fired = []
    record = _recorder(fired)
    fake_clock.schedule(5.0, record, "late", priority=1)
    fake_clock.schedule(5.0, record, "first", priority=-1)
    fake_clock.schedule(5.0, record, "second", priority=0)
    fake_clock.schedule(5.0, record, "third", priority=0)
    fake_loop.advance(0.01)
    assert fired == ["first", "second", "third", "late"]


def test_partial_advance_fires_only_due_timers(fake_clock, fake_loop):
    fired = []
    record = _recorder(fired)
    fake_clock.schedule(10.0, record, "early")
    fake_clock.schedule(40.0, record, "late")
    fake_loop.advance(0.02)
    assert fired == ["early"]
    fake_loop.advance(0.03)
    assert fired == ["early", "late"]


def test_callback_may_schedule_more_work(fake_clock, fake_loop):
    fired = []

    def chain(label, next_delay):
        fired.append(label)
        if next_delay is not None:
            fake_clock.schedule(next_delay, chain, f"{label}+", None)

    fake_clock.schedule(5.0, chain, "a", 5.0)
    fake_loop.advance(0.02)
    # "a" fired at the advanced time, so "a+" sits 5ms past *that*.
    assert fired == ["a"]
    fake_loop.advance(0.02)
    assert fired == ["a", "a+"]


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
def test_cancelled_timer_never_fires(fake_clock, fake_loop):
    fired = []
    record = _recorder(fired)
    keep = fake_clock.schedule(10.0, record, "keep")
    drop = fake_clock.schedule(5.0, record, "drop")
    drop.cancel()
    fake_loop.advance(0.02)
    assert fired == ["keep"]
    assert drop.cancelled and not keep.cancelled


def test_cancelling_the_head_still_arms_later_timers(fake_clock, fake_loop):
    fired = []
    record = _recorder(fired)
    head = fake_clock.schedule(1.0, record, "head")
    fake_clock.schedule(30.0, record, "tail")
    head.cancel()
    fake_loop.advance(0.05)
    assert fired == ["tail"]


# ----------------------------------------------------------------------
# scheduling edge cases
# ----------------------------------------------------------------------
def test_negative_relative_delay_raises(fake_clock):
    with pytest.raises(SchedulingInPastError):
        fake_clock.schedule(-0.001, lambda: None)


def test_schedule_at_clamps_past_deadlines(fake_clock, fake_loop):
    # Wall time advances under callers between computing a deadline and
    # scheduling it, so a slightly-past absolute time clamps to "now"
    # (the simulator, whose time cannot move underneath anyone, raises).
    fired = []
    fake_clock.schedule_at(-500.0, _recorder(fired), "clamped")
    fake_loop.advance(0.001)
    assert fired == ["clamped"]


def test_now_is_zero_before_bind(fake_loop):
    clock = AsyncioClock(seed=0, loop=fake_loop)
    assert clock.now == 0.0
    clock.bind()
    fake_loop.advance(0.25)
    assert clock.now == pytest.approx(250.0)


def test_time_scale_stretches_virtual_time(fake_loop):
    clock = AsyncioClock(seed=0, loop=fake_loop, time_scale=0.5)
    clock.bind()
    fake_loop.advance(1.0)
    # 0.5 wall seconds per virtual second: 1s wall = 2000 virtual ms.
    assert clock.now == pytest.approx(2000.0)


def test_bad_time_scale_rejected():
    with pytest.raises(ValueError):
        AsyncioClock(time_scale=0.0)


# ----------------------------------------------------------------------
# rng streams
# ----------------------------------------------------------------------
def test_rng_streams_match_the_simulator():
    sim, clock = Simulator(seed=42), AsyncioClock(seed=42)
    for stream in ("net/net", "keys/fs-0", "workload"):
        assert sim.rng(stream).random() == clock.rng(stream).random()


def test_rng_stream_is_cached_not_reseeded():
    clock = AsyncioClock(seed=7)
    first = clock.rng("s").random()
    assert clock.rng("s").random() != first  # same generator, advanced


# ----------------------------------------------------------------------
# run(): budget, quiescence, failure surfacing (tiny real loops)
# ----------------------------------------------------------------------
def test_event_budget_aborts_runaway_loops():
    clock = AsyncioClock(seed=0)
    clock.idle_grace_s = 0.01

    def reschedule():
        clock.schedule(0.0, reschedule)

    clock.schedule(0.0, reschedule)
    try:
        with pytest.raises(SimulationLimitExceeded):
            clock.run(max_events=50)
        assert clock.events_processed <= 51
    finally:
        clock.close()


def test_quiescent_run_returns_without_sleeping_to_until():
    clock = AsyncioClock(seed=0)
    clock.idle_grace_s = 0.01
    fired = []
    clock.schedule(1.0, _recorder(fired), "x")
    try:
        clock.run(until=60_000.0)  # a generous settle window
        assert fired == ["x"]
        assert clock.wall_elapsed_s < 5.0  # exited at quiescence instead
    finally:
        clock.close()


def test_callback_exception_fails_the_run():
    clock = AsyncioClock(seed=0)
    clock.idle_grace_s = 0.01

    def boom():
        raise RuntimeError("callback exploded")

    clock.schedule(0.0, boom)
    try:
        with pytest.raises(RuntimeError, match="callback exploded"):
            clock.run()
    finally:
        clock.close()


def test_timer_lag_statistics_accumulate():
    clock = AsyncioClock(seed=0)
    clock.idle_grace_s = 0.01
    clock.schedule(0.5, lambda: None)
    try:
        clock.run()
    finally:
        clock.close()
    assert clock.timer_lag_count == 1
    assert clock.timer_lag_max >= 0.0
    assert clock.timer_lag_mean == pytest.approx(clock.timer_lag_sum)


# ----------------------------------------------------------------------
# reconnect backoff schedule (pure)
# ----------------------------------------------------------------------
def test_backoff_schedule_shape():
    assert backoff_delays() == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
    assert backoff_delays(base_ms=10.0, cap_ms=25.0) == [
        10.0, 20.0, 25.0, 25.0, 25.0, 25.0,
    ]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base_ms": 0.0},
        {"factor": 0.5},
        {"retries": -1},
        {"cap_ms": 0.5},
    ],
)
def test_backoff_rejects_bad_shapes(kwargs):
    with pytest.raises(ValueError):
        backoff_delays(**kwargs)
