"""Oracle-equivalence differential tests: sim vs wall clock.

Two wall-clock runs are never byte-identical -- the host schedules
them differently -- so equivalence with the simulated run is checked
at the semantic layer instead: the same eight invariant oracles that
audit simulated runs must pass on the live asyncio backend, every
submitted message must be ordered (nothing lost to real concurrency),
zero fail-signals may appear at the calibrated timeouts (the accuracy
half of the fail-signal contract), and each backend's members must
agree on one total order whose *content* matches the other backend's.

Everything here sleeps real wall time, hence the ``realtime`` marker;
the specs are sized to keep the whole module under a few seconds.
"""

import pytest

from repro.experiments.runner import _run_ordering, audit_scenario
from repro.experiments.spec import BatchingSpec, ScenarioSpec, TransportSpec
from repro.invariants import AuditConfig

pytestmark = pytest.mark.realtime

ASYNCIO = TransportSpec(kind="asyncio")

FIG6_STYLE = ScenarioSpec(
    system="fs-newtop",
    n_members=3,
    messages_per_member=4,
    interval=25.0,
    message_size=3,
    seed=7,
    settle_ms=10_000.0,
)
BATCHED = FIG6_STYLE.replace(
    seed=11, batching=BatchingSpec(max_batch=4, max_delay_ms=6.0, max_inflight=2)
)


def _audit(spec):
    return audit_scenario(spec, config=AuditConfig())


def _delivered_orders(spec):
    """Per-member delivered (sender, round) sequences of one run."""
    workload, __, __ = _run_ordering(spec)
    group = workload.group
    return {
        member: [
            (message.value["s"], message.value["r"])
            for message in group.deliveries(member)
        ]
        for member in group.member_ids
    }


@pytest.mark.parametrize(
    "spec", [FIG6_STYLE, BATCHED], ids=["fig6_style", "batched"]
)
def test_live_run_passes_the_same_oracles(spec):
    simulated = _audit(spec)
    live = _audit(spec.replace(transport=ASYNCIO))

    assert simulated.report.ok, simulated.report.render()
    assert live.report.ok, live.report.render()

    expected = float(spec.n_members * spec.messages_per_member)
    assert simulated.result.metrics["ordered"] == expected
    assert live.result.metrics["ordered"] == expected
    # Calibrated deadlines: a fault-free run must not manufacture
    # fail-signals out of host jitter.
    assert live.result.metrics["fail_signals"] == 0.0


def test_backends_agree_on_ordered_content():
    simulated = _delivered_orders(FIG6_STYLE)
    live = _delivered_orders(FIG6_STYLE.replace(transport=ASYNCIO))

    assert set(simulated) == set(live)  # same member ids
    # Within each backend every member delivered the same total order.
    for orders in (simulated, live):
        sequences = list(orders.values())
        assert all(sequence == sequences[0] for sequence in sequences)
    # Across backends the *relative* order may legally differ (wall
    # clock interleaves arrivals differently) but the ordered content
    # -- every (sender, round) exactly once -- must match.
    for member, sequence in live.items():
        assert sorted(sequence) == sorted(simulated[member])
        assert len(set(sequence)) == len(sequence)


def test_live_run_with_the_kv_application_passes_the_same_oracles():
    """The application layer (stores, checkpoint gossip, the 8th
    oracle) rides the live backend exactly like the simulated one:
    every member applies the full feed and converges on one digest."""
    from repro.app.spec import AppSpec

    spec = FIG6_STYLE.replace(seed=13, app=AppSpec(checkpoint_every=3))
    simulated = _audit(spec)
    live = _audit(spec.replace(transport=ASYNCIO))

    assert simulated.report.ok, simulated.report.render()
    assert live.report.ok, live.report.render()
    expected = float(spec.n_members * spec.messages_per_member)
    for run in (simulated, live):
        metrics = run.result.metrics
        assert metrics["app_ops_applied"] == expected * spec.n_members
        assert metrics["app_distinct_digests"] == 1.0
        assert metrics["app_checkpoints"] > 0


def test_live_wall_metrics_are_reported():
    live = _audit(FIG6_STYLE.replace(transport=ASYNCIO))
    metrics = live.result.metrics
    assert metrics["wall_elapsed_s"] > 0.0
    assert metrics["timer_slack_max_ms"] >= metrics["timer_slack_mean_ms"] >= 0.0
    assert metrics["calibrated_delta_ms"] > 0.0
    # The whole point of calibration: the detection deadline dominates
    # the worst observed host jitter.
    assert metrics["deadline_margin_ms"] > 0.0


def test_tcp_hop_preserves_the_protocol():
    spec = FIG6_STYLE.replace(
        seed=3, transport=TransportSpec(kind="asyncio", tcp=True)
    )
    live = _audit(spec)
    assert live.report.ok, live.report.render()
    assert live.result.metrics["ordered"] == float(
        spec.n_members * spec.messages_per_member
    )
    assert live.result.metrics["fail_signals"] == 0.0


def test_uncalibrated_live_run_keeps_cost_model_deadlines():
    spec = FIG6_STYLE.replace(
        transport=TransportSpec(kind="asyncio", calibrate=False)
    )
    workload, __, transport = _run_ordering(spec)
    assert transport.calibration is None
    result = workload.result("fs-newtop")
    # No progress assertion here: the uncalibrated 2ms cost-model delta
    # is *meant* for virtual time and may legally trip on host jitter,
    # and a tripped pair goes silent -- possibly before ordering
    # anything. The contract under test is only that calibrate=False
    # leaves the deadlines alone while the run still executes.
    assert result.network_messages > 0
    assert transport.wall_metrics()["wall_elapsed_s"] > 0.0
