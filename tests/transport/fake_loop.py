"""A test-controlled event loop: time only moves when told to.

``advance`` moves the fake clock and then pumps the loop without
blocking: each pump runs ``asyncio.sleep(0)`` to completion, which
executes every ready callback plus every ``call_at`` timer whose
deadline is now in the past.  Several rounds let callback chains
settle.  This is what makes the AsyncioClock timer tests deterministic
and sleep-free.
"""

import asyncio


class FakeTimeLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose ``time()`` is test-controlled."""

    #: Arbitrary nonzero epoch so tests cannot confuse loop time 0 with
    #: virtual time 0.
    EPOCH = 1000.0

    def __init__(self) -> None:
        super().__init__()
        self._fake_now = self.EPOCH

    def time(self) -> float:
        return self._fake_now

    def advance(self, seconds: float, rounds: int = 10) -> None:
        if seconds < 0:
            raise ValueError(f"cannot rewind the clock by {seconds}")
        self._fake_now += seconds
        self.pump(rounds)

    def pump(self, rounds: int = 10) -> None:
        for __ in range(rounds):
            self.run_until_complete(asyncio.sleep(0))
