"""Prometheus text exposition: render -> parse round-trips.

The parser doubles as the CI format check, so it must be strict:
anything that is not a comment or a well-formed sample line raises.
"""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import CONTENT_TYPE, parse, render
from repro.obs.spans import ObsHub


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_total", "a counter").inc(5.0)
    registry.gauge("repro_level", "a gauge").set(2.25)
    hist = registry.histogram("repro_lat_ms", "latency", scheme="hmac")
    for value in (0.5, 1.0, 2.0, 250.0):
        hist.observe(value)
    registry.counter("repro_adm", "", outcome="accepted").inc(3.0)
    registry.counter("repro_adm", "", outcome="rejected")
    return registry


def test_content_type_is_prometheus_text():
    assert CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in CONTENT_TYPE


def test_render_parse_round_trip():
    families = parse(render(build_registry()))
    assert families["repro_total"]["type"] == "counter"
    assert families["repro_total"]["help"] == "a counter"
    assert families["repro_total"]["samples"] == [("repro_total", {}, 5.0)]
    assert families["repro_level"]["samples"] == [("repro_level", {}, 2.25)]
    # Histogram series attach to their family.
    samples = families["repro_lat_ms"]["samples"]
    series = {name for name, _, _ in samples}
    assert series == {"repro_lat_ms_bucket", "repro_lat_ms_sum", "repro_lat_ms_count"}
    count = next(v for n, l, v in samples if n == "repro_lat_ms_count")
    total = next(v for n, l, v in samples if n == "repro_lat_ms_sum")
    assert count == 4.0
    assert total == pytest.approx(253.5)
    inf_bucket = next(
        v for n, l, v in samples if n == "repro_lat_ms_bucket" and l["le"] == "+Inf"
    )
    assert inf_bucket == 4.0
    # Labelled counter family keeps both series.
    adm = {l["outcome"]: v for _, l, v in families["repro_adm"]["samples"]}
    assert adm == {"accepted": 3.0, "rejected": 0.0}


def test_bucket_counts_are_cumulative_and_ordered():
    registry = MetricsRegistry()
    hist = registry.histogram("h", "")
    for value in (0.5, 1.0, 2.0, 250.0):
        hist.observe(value)
    buckets = [
        (l["le"], v)
        for n, l, v in parse(render(registry))["h"]["samples"]
        if n == "h_bucket"
    ]
    counts = [v for _, v in buckets]
    assert counts == sorted(counts)
    assert buckets[-1] == ("+Inf", 4.0)


def test_label_escaping_round_trips():
    registry = MetricsRegistry()
    awkward = 'back\\slash "quoted"\nnewline'
    registry.counter("c", "", detail=awkward).inc()
    samples = parse(render(registry))["c"]["samples"]
    assert samples == [("c", {"detail": awkward}, 1.0)]


def test_empty_histogram_renders_single_bucket():
    registry = MetricsRegistry()
    registry.histogram("h", "never observed")
    text = render(registry)
    assert text.count("h_bucket") == 1
    samples = parse(text)["h"]["samples"]
    assert ("h_bucket", {"le": "+Inf"}, 0.0) in samples


def test_special_values_round_trip():
    registry = MetricsRegistry()
    registry.gauge("g").set(math.inf)
    samples = parse(render(registry))["g"]["samples"]
    assert samples[0][2] == math.inf


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse("this is not a metric line at all {\n")
    with pytest.raises(ValueError):
        parse('ok_metric{bad-label="x"} 1\n')
    with pytest.raises(ValueError):
        parse("metric_without_value\n")
    with pytest.raises(ValueError):
        parse("# TYPE incomplete\n")


def test_parse_tolerates_free_comments_and_blank_lines():
    families = parse("# scraped by test\n\nvalue_ok 1\n")
    assert families["value_ok"]["samples"] == [("value_ok", {}, 1.0)]


def test_hub_registry_renders_clean():
    """The real hub's pre-registered instruments expose without error
    and survive the strict parser -- the shape the CI job scrapes."""
    hub = ObsHub()
    hub.sign_histogram("HmacScheme").observe(0.8)
    hub.admission("accepted").inc()
    hub.fail_signals.inc()
    families = parse(render(hub.registry))
    assert families["repro_fso_fail_signals_total"]["type"] == "counter"
    assert families["repro_fso_sign_ms"]["type"] == "histogram"
    sign = families["repro_fso_sign_ms"]["samples"]
    assert any(l.get("scheme") == "HmacScheme" for _, l, _ in sign)
