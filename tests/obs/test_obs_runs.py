"""End-to-end observability: specs, hubs on real runs, flight bundles.

All on the simulator -- fast and deterministic.  The live-transport
surface (``GET /metrics`` on the asyncio clock) is covered by
``tests/service/test_http_live.py`` and the CI scrape job.
"""

import json
import pathlib

import pytest

from repro.experiments import audit_scenario, observe_spec, run_scenario
from repro.experiments.spec import FaultEvent, ObsSpec, ScenarioSpec
from repro.obs import DISABLED_HUB, ObsHub, Span, hub_of, install_hub
from repro.obs.flight import BUNDLE_EVENTS, BUNDLE_MANIFEST


def small_spec(**overrides) -> ScenarioSpec:
    base = dict(
        system="fs-newtop", n_members=2, messages_per_member=4, settle_ms=5000
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# ----------------------------------------------------------------------
# ObsSpec on the scenario spec
# ----------------------------------------------------------------------
def test_obsspec_round_trips_through_json():
    spec = small_spec(
        obs=ObsSpec(enabled=True, http_port=9464, flight_events=32, flight_dir="x")
    )
    rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec
    assert rebuilt.obs.flight_events == 32


def test_obsspec_default_absent():
    spec = small_spec()
    assert spec.obs is None
    rebuilt = ScenarioSpec.from_dict(spec.to_dict())
    assert rebuilt.obs is None


def test_obsspec_validation():
    with pytest.raises(ValueError):
        ObsSpec(http_port=70000)
    with pytest.raises(ValueError):
        ObsSpec(flight_events=0)


# ----------------------------------------------------------------------
# hub plumbing
# ----------------------------------------------------------------------
def test_hub_of_falls_back_to_disabled_singleton():
    class Clock:
        pass

    clock = Clock()
    assert hub_of(clock) is DISABLED_HUB
    assert not DISABLED_HUB.enabled
    hub = install_hub(clock, ObsHub())
    assert hub_of(clock) is hub
    assert hub.enabled


def test_disabled_hub_instruments_do_nothing():
    DISABLED_HUB.fail_signals.inc()
    DISABLED_HUB.sign_histogram("AnyScheme").observe(1.0)
    assert DISABLED_HUB.fail_signals.value == 0.0
    assert DISABLED_HUB.sign_histogram("AnyScheme").count == 0


def test_span_observes_clock_delta():
    class Clock:
        now = 10.0

    clock = Clock()
    hub = ObsHub()
    histogram = hub.sign_histogram("S")
    with Span(histogram, clock):
        clock.now = 12.5
    assert histogram.count == 1
    assert histogram.total == 2.5


def test_summary_metrics_skips_untouched_subsystems():
    hub = ObsHub()
    assert hub.summary_metrics() == {}
    hub.verify_histogram("S").observe(1.0)
    summary = hub.summary_metrics()
    assert summary["obs_verify_count"] == 1.0
    assert "obs_sign_count" not in summary
    assert "obs_submit_p999_ms" not in summary


# ----------------------------------------------------------------------
# real runs
# ----------------------------------------------------------------------
def test_audit_run_collects_stage_histograms():
    run = audit_scenario(small_spec(), scenario="obs_smoke")
    assert run.report.ok
    assert run.result.metrics["obs_sign_count"] > 0
    assert run.result.metrics["obs_verify_count"] > 0
    assert run.result.metrics["obs_sign_p99_ms"] >= run.result.metrics["obs_sign_p50_ms"]


def test_measurement_run_unobserved_by_default():
    metrics = run_scenario(small_spec()).metrics
    assert not any(key.startswith("obs_") for key in metrics)


def test_explicit_obsspec_instruments_measurement_run():
    metrics = run_scenario(small_spec(obs=ObsSpec(http_port=None))).metrics
    assert metrics["obs_sign_count"] > 0


def test_obsspec_disabled_wins_over_audit_default():
    run = audit_scenario(small_spec(obs=ObsSpec(enabled=False)))
    assert not any(key.startswith("obs_") for key in run.result.metrics)
    assert run.flight_bundle is None


def test_fail_signal_dumps_flight_bundle(tmp_path):
    spec = small_spec(
        faults=(
            FaultEvent(
                at=200.0, kind="byzantine", member=0, flags=("corrupt_outputs",)
            ),
        ),
        obs=ObsSpec(http_port=None, flight_dir=str(tmp_path)),
    )
    run = audit_scenario(spec, scenario="obs_viol")
    assert run.result.metrics["fail_signals"] > 0
    assert run.flight_bundle is not None
    bundle = pathlib.Path(run.flight_bundle)
    assert bundle.parent == tmp_path
    manifest = json.loads((bundle / BUNDLE_MANIFEST).read_text())
    assert manifest["trips"]
    assert manifest["events_retained"] > 0
    assert "metrics.json" in manifest["contents"]
    assert "spec.json" in manifest["contents"]
    assert "report.json" in manifest["contents"]
    events = (bundle / BUNDLE_EVENTS).read_text().splitlines()
    assert len(events) == manifest["events_retained"]
    spec_doc = json.loads((bundle / "spec.json").read_text())
    assert spec_doc["obs"]["flight_dir"] == str(tmp_path)
    report_doc = json.loads((bundle / "report.json").read_text())
    assert "checks" in report_doc or report_doc  # serialised oracle report
    # The audited metrics carry the same story the bundle tells.
    assert run.result.metrics["obs_sign_count"] > 0
    assert run.to_dict()["flight_bundle"] == run.flight_bundle


def test_healthy_audit_leaves_no_bundle(tmp_path):
    spec = small_spec(obs=ObsSpec(http_port=None, flight_dir=str(tmp_path)))
    run = audit_scenario(spec, scenario="obs_clean")
    assert run.report.ok
    assert run.flight_bundle is None
    assert not list(tmp_path.iterdir())


def test_observe_spec_snapshot():
    snapshot = observe_spec(small_spec(), scenario="obs_snap")
    assert snapshot["enabled"] is True
    names = {m["name"] for m in snapshot["metrics"]}
    assert "repro_fso_sign_ms" in names
    assert snapshot["summary"]["obs_sign_count"] > 0
