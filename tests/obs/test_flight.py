"""The flight recorder: bounded rings, trip detection, bundle dumps."""

import json

import pytest

from repro.obs.flight import BUNDLE_EVENTS, BUNDLE_MANIFEST, FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecord, TraceRecorder


def record(time, category="fso", event="tick", **details):
    return TraceRecord(
        time=time,
        category=category,
        source="member-0",
        event=event,
        details=tuple(sorted(details.items())),
    )


def test_rings_are_bounded_per_category():
    recorder = FlightRecorder(capacity=10)
    for i in range(100):
        recorder.observe(record(float(i), category="a"))
    for i in range(5):
        recorder.observe(record(float(i), category="b"))
    assert recorder.events_seen == 105
    assert recorder.categories() == {"a": 10, "b": 5}
    retained = recorder.recent("a")
    assert len(retained) == 10
    assert retained[0].time == 90.0  # oldest events evicted


def test_recent_merges_time_ordered():
    recorder = FlightRecorder(capacity=8)
    recorder.observe(record(3.0, category="a"))
    recorder.observe(record(1.0, category="b"))
    recorder.observe(record(2.0, category="a"))
    assert [r.time for r in recorder.recent()] == [1.0, 2.0, 3.0]


def test_capacity_validated():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_fail_signal_trips():
    recorder = FlightRecorder()
    assert not recorder.tripped
    recorder.observe(record(5.0, event="send"))
    assert not recorder.tripped
    recorder.observe(record(9.0, event="fail-signal", reason="compare-timeout"))
    assert recorder.tripped
    assert recorder.trips == [
        {
            "time": 9.0,
            "category": "fso",
            "source": "member-0",
            "reason": "compare-timeout",
        }
    ]


def test_attach_listens_even_without_storage():
    trace = TraceRecorder()
    trace.store = False  # audit mode: listeners live, nothing stored
    recorder = FlightRecorder(capacity=4).attach(trace)
    trace.record(1.0, "fso", "m0", "fail-signal", reason="x")
    assert len(trace) == 0
    assert recorder.tripped


def test_dump_writes_complete_bundle(tmp_path):
    recorder = FlightRecorder(capacity=4)
    for i in range(6):
        recorder.observe(record(float(i)))
    recorder.observe(record(7.0, event="fail-signal", reason="boom"))
    registry = MetricsRegistry()
    registry.counter("c").inc(2.0)
    bundle = recorder.dump(
        tmp_path,
        scenario="unit",
        spec={"system": "fs-newtop"},
        registry=registry,
        report={"ok": False},
    )
    assert bundle.parent == tmp_path
    manifest = json.loads((bundle / BUNDLE_MANIFEST).read_text())
    assert manifest["scenario"] == "unit"
    assert manifest["events_seen"] == 7
    assert manifest["events_retained"] == 4  # ring kept only the newest
    assert manifest["trips"][0]["reason"] == "boom"
    assert sorted(manifest["contents"]) == [
        BUNDLE_EVENTS,
        BUNDLE_MANIFEST,
        "metrics.json",
        "report.json",
        "spec.json",
    ]
    events = [
        json.loads(line)
        for line in (bundle / BUNDLE_EVENTS).read_text().splitlines()
    ]
    assert len(events) == 4
    assert events[-1]["event"] == "fail-signal"
    metrics = json.loads((bundle / "metrics.json").read_text())
    assert metrics["metrics"][0]["value"] == 2.0
    assert json.loads((bundle / "spec.json").read_text()) == {"system": "fs-newtop"}
    assert json.loads((bundle / "report.json").read_text()) == {"ok": False}


def test_dump_uniquifies_directories(tmp_path):
    recorder = FlightRecorder()
    recorder.observe(record(1.0))
    first = recorder.dump(tmp_path, scenario="same")
    second = recorder.dump(tmp_path, scenario="same")
    assert first != second
    assert first.exists() and second.exists()
