"""Tests for the metrics core: instruments, histograms, the registry.

The headline property: a log-bucketed histogram's recorded percentile
is always within one bucket width of the exact nearest-rank percentile
of the raw sample (hypothesis-tested below), which is the accuracy
claim :mod:`repro.obs.metrics` makes for the p50/p99/p99.9 summaries.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _noop,
    merge_histograms,
)


def exact_nearest_rank(values, q):
    """The reference percentile: rank = ceil(q*n), 1-indexed."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


# ----------------------------------------------------------------------
# histogram accuracy
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_percentile_within_one_bucket_width(values, q):
    histogram = Histogram("h", "", ())
    for value in values:
        histogram.observe(value)
    exact = exact_nearest_rank(values, q)
    recorded = histogram.percentile(q)
    # The rank-holding sample and the recorded value share a bucket, so
    # the error is bounded by that bucket's width (never negative: the
    # recorded value is the bucket's upper bound clamped to the max).
    width = histogram.bucket_width(histogram.bucket_of(exact))
    assert recorded >= exact - 1e-9
    assert recorded - exact <= width + 1e-9


def test_percentile_pinned():
    histogram = Histogram("h", "", ())
    for value in (1.0, 2.0, 3.0, 4.0, 100.0):
        histogram.observe(value)
    assert histogram.percentile(0.0) <= 1.0 + histogram.bucket_width(
        histogram.bucket_of(1.0)
    )
    assert histogram.percentile(1.0) == 100.0  # clamped to the max
    assert histogram.count == 5
    assert histogram.total == 110.0
    assert histogram.min_value == 1.0


def test_percentile_empty_and_bad_q():
    histogram = Histogram("h", "", ())
    assert histogram.percentile(0.99) == 0.0
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_overflow_bucket_returns_max():
    histogram = Histogram("h", "", ())
    histogram.observe(1e9)  # beyond the last finite bound
    assert histogram.bucket_of(1e9) == len(BUCKET_BOUNDS)
    assert histogram.percentile(0.99) == 1e9
    assert math.isinf(histogram.bucket_width(len(BUCKET_BOUNDS)))


def test_cumulative_buckets_trimmed():
    empty = Histogram("h", "", ())
    assert empty.cumulative_buckets() == [(math.inf, 0)]
    small = Histogram("h", "", ())
    small.observe(0.5)
    buckets = small.cumulative_buckets()
    assert buckets[-1] == (math.inf, 1)
    # Trimmed to the bucket holding the max, not all ~70 bounds.
    assert len(buckets) < 40
    assert buckets[-2][1] == 1


def test_merge_histograms():
    a = Histogram("h", "", ())
    b = Histogram("h", "", ())
    for value in (1.0, 2.0):
        a.observe(value)
    b.observe(1000.0)
    merged = merge_histograms([a, b])
    assert merged.count == 3
    assert merged.total == 1003.0
    assert merged.min_value == 1.0
    assert merged.max_value == 1000.0
    assert merged.percentile(1.0) == 1000.0
    with pytest.raises(ValueError):
        merge_histograms([])


# ----------------------------------------------------------------------
# the disabled no-op idiom
# ----------------------------------------------------------------------
def test_disabled_registry_instruments_are_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c")
    gauge = registry.gauge("g")
    histogram = registry.histogram("h")
    # The hot method is swapped on the instance, TraceRecorder-style.
    assert counter.__dict__["inc"] is _noop
    assert gauge.__dict__["set"] is _noop
    assert histogram.__dict__["observe"] is _noop
    counter.inc()
    gauge.set(5.0)
    histogram.observe(3.0)
    assert counter.value == 0.0
    assert gauge.value == 0.0
    assert histogram.count == 0


def test_reenabling_restores_recording():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c")
    registry.enabled = True
    assert "inc" not in counter.__dict__
    counter.inc(2.0)
    assert counter.value == 2.0
    registry.enabled = False
    counter.inc(10.0)
    assert counter.value == 2.0


def test_toggle_applies_to_later_instruments():
    registry = MetricsRegistry(enabled=True)
    registry.enabled = False
    late = registry.counter("late")
    late.inc()
    assert late.value == 0.0


# ----------------------------------------------------------------------
# the registry directory
# ----------------------------------------------------------------------
def test_registry_dedupes_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.histogram("repro_stage_ms", scheme="hmac")
    b = registry.histogram("repro_stage_ms", scheme="hmac")
    other = registry.histogram("repro_stage_ms", scheme="rsa")
    assert a is b
    assert a is not other
    assert isinstance(a, Histogram)


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("metric")
    with pytest.raises(TypeError):
        registry.gauge("metric")


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c", "a counter").inc(3.0)
    registry.histogram("h", "a histogram", scheme="hmac").observe(2.0)
    snapshot = registry.snapshot()
    assert snapshot["enabled"] is True
    by_name = {m["name"]: m for m in snapshot["metrics"]}
    assert by_name["c"]["value"] == 3.0
    assert by_name["c"]["kind"] == "counter"
    assert by_name["h"]["count"] == 1
    assert by_name["h"]["labels"] == {"scheme": "hmac"}
    assert by_name["h"]["buckets"][-1][0] == "+Inf"


def test_families_group_by_name():
    registry = MetricsRegistry()
    registry.counter("adm", "outcomes", outcome="accepted")
    registry.counter("adm", "outcomes", outcome="rejected")
    registry.gauge("g")
    families = registry.families()
    assert [name for name, *_ in families] == ["adm", "g"]
    assert len(families[0][3]) == 2


def test_counter_and_gauge_values():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    gauge = registry.gauge("g")
    gauge.set(7)
    gauge.set(-1.5)
    assert gauge.value == -1.5
