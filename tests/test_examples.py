"""Every example script must run clean -- they are living documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{completed.stdout}"
        f"\n--- stderr ---\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
